//! The (simulated) §V-C lab deployment: self-calibrate from reference
//! tags, then compare our system against the SMURF and uniform
//! baselines on a robot trace with dead-reckoning drift — every system
//! driven through the same streaming pipeline.
//!
//! ```text
//! cargo run --release --example lab_deployment
//! ```

use rfid_repro::baselines::{Smurf, SmurfConfig, UniformBaseline};
use rfid_repro::prelude::*;
use rfid_repro::sim::lab::LabDeployment;
use rfid_repro::sim::SimTrace;
use rfid_repro::stream::pipeline::InferenceStage;
use rfid_repro::stream::Pipeline;

fn mean_xy_error(events: &[LocationEvent], truth: &rfid_repro::sim::GroundTruth) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for e in events {
        if let Some(t) = truth.object_at(e.tag, e.epoch) {
            sum += e.location.dist_xy(&t);
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Streams the trace through any inference stage and collects events.
fn run_stage<St: InferenceStage>(trace: &SimTrace, stage: St) -> Vec<LocationEvent> {
    let mut pipeline = Pipeline::new(trace.epoch_len, stage, Vec::new());
    pipeline.run_to_completion(&mut trace.stream());
    let (_, events, _) = pipeline.into_parts();
    events
}

fn main() {
    let lab = LabDeployment::standard();
    println!(
        "lab rig: {} tags in two rows, {} reference tags, robot scans at 0.1 ft/s\n",
        lab.objects.len(),
        lab.reference_tags.len()
    );

    // --- self-calibration (§III-C) --------------------------------
    // Learn the sensor model and noise parameters from a training
    // trace, using only the reference tags' known positions.
    let train = lab.generate(500, 1);
    let mut init = ModelParams::default_warehouse();
    init.sensor = SensorParams {
        a: [2.0, -0.2, -0.05],
        b: [-0.1, -0.5],
    };
    let em = calibrate(
        &train.epoch_batches(),
        &train.shelf_tags,
        &lab.prior(),
        init,
        &EmConfig::default(),
    );
    let learned = em.params;
    println!(
        "calibrated from {} training rows; learned sensor a = [{:.2}, {:.2}, {:.2}]",
        em.final_rows, learned.sensor.a[0], learned.sensor.a[1], learned.sensor.a[2]
    );

    // --- the comparison trace --------------------------------------
    let trace = lab.generate(500, 2);
    let read_range = LogisticSensorModel::new(learned.sensor).detection_range(0.2);
    let shelves = vec![lab.imagined_shelf(0, true), lab.imagined_shelf(1, true)];

    // our system
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 1000;
    let engine = InferenceEngine::new(
        JointModel::new(learned),
        lab.prior(),
        trace.shelf_tags.clone(),
        cfg,
    )
    .expect("valid configuration");
    let ours = run_stage(&trace, engine);

    // SMURF (augmented with location sampling, §V-C)
    let smurf_events = run_stage(
        &trace,
        Smurf::new(
            SmurfConfig::new(read_range, shelves.clone()),
            trace.shelf_tags.iter().map(|(t, _)| *t),
        ),
    );

    // uniform worst-case bound
    let uni_events = run_stage(
        &trace,
        UniformBaseline::new(
            read_range,
            shelves,
            trace.shelf_tags.iter().map(|(t, _)| *t),
            3,
        ),
    );

    // --- results ----------------------------------------------------
    let e_ours = mean_xy_error(&ours, &trace.truth);
    let e_smurf = mean_xy_error(&smurf_events, &trace.truth);
    let e_uni = mean_xy_error(&uni_events, &trace.truth);
    println!("\nmean XY error over the scan (small imagined shelf):");
    println!("  our system : {e_ours:.2} ft ({} events)", ours.len());
    println!(
        "  SMURF      : {e_smurf:.2} ft ({} events)",
        smurf_events.len()
    );
    println!("  uniform    : {e_uni:.2} ft ({} events)", uni_events.len());
    println!(
        "\nerror reduction vs SMURF: {:.0}%  (the paper reports 49% on its rig)",
        100.0 * (1.0 - e_ours / e_smurf)
    );
}
