//! Warehouse monitoring: the paper's §II-B motivation end to end, as
//! one streaming pipeline.
//!
//! The cleaned event stream fans out into the two CQL example queries,
//! running *inside* the pipeline as composed sinks:
//!
//! 1. the **location-update query** — report each object's new location
//!    when it changes (`Istream` over a row-1 partition);
//! 2. the **fire-code query** — alert when the summed weight of objects
//!    in any square foot of shelf exceeds 200 pounds within a 5-second
//!    window (`Rstream` of a windowed `Group By ... Having`).
//!
//! Neither query is answerable from the raw tag-id streams — that is
//! the point of the cleaning/transformation stage.
//!
//! ```text
//! cargo run --release --example warehouse_monitoring
//! ```

use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::pipeline::sinks::{FireCodeSink, LocationChangeSink};
use rfid_repro::stream::Pipeline;

fn main() {
    // Densely packed objects: several share each square foot of shelf.
    let sc = scenario::small_trace(16, 4, 99);

    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 600;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid configuration");

    // Every object weighs 120 lb here, so any square foot holding two
    // or more objects violates the 200 lb code.
    let weight_of = |_tag: TagId| 120.0;
    let sinks = (
        Vec::new(), // collector, for the summary line
        (
            LocationChangeSink::new(0.1),
            FireCodeSink::new(sc.trace.epoch_len, 5.0, weight_of, 200.0),
        ),
    );

    // source → synchronizer → engine → (collector | query 1 | query 2)
    let mut pipeline = Pipeline::new(sc.trace.epoch_len, engine, sinks);
    let stats = pipeline.run_to_completion(&mut sc.trace.stream());
    let (_, (events, (location_query, fire_query)), _) = pipeline.into_parts();
    println!(
        "cleaned event stream: {} events over {} epochs (synchronizer high-water {} epochs)\n",
        events.len(),
        stats.epochs,
        stats.sync_pending_high_water
    );

    // --- Query 1: Istream(E.tag_id, E.(x,y,z)) --------------------
    //     From EventStream E [Partition By tag_id Row 1]
    println!("location updates (movement threshold 0.1 ft):");
    for u in location_query.updates() {
        println!(
            "  {} moved to ({:.2}, {:.2})",
            u.tag, u.location.x, u.location.y
        );
    }

    // --- Query 2: fire-code violations ----------------------------
    //     Group By square-foot area Having sum(weight) > 200 lb
    println!("\nfire-code check (200 lb per square foot):");
    if fire_query.violations().is_empty() {
        println!("  no violations detected");
    }
    for (time, area, total) in fire_query.violations() {
        println!(
            "  VIOLATION at t={time:.0}s, square ({}, {}): {total:.0} lb on the shelf",
            area.x, area.y
        );
    }
    println!(
        "\n(fire-code query evaluated {} instants)",
        fire_query.query().emissions().len()
    );
}
