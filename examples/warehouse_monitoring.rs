//! Warehouse monitoring: the paper's §II-B motivation end to end.
//!
//! The cleaned event stream feeds the two CQL example queries:
//!
//! 1. the **location-update query** — report each object's new location
//!    when it changes;
//! 2. the **fire-code query** — alert when the summed weight of objects
//!    in any square foot of shelf exceeds 200 pounds within a 5-second
//!    window.
//!
//! Neither query is answerable from the raw tag-id streams — that is
//! the point of the cleaning/transformation stage.
//!
//! ```text
//! cargo run --release --example warehouse_monitoring
//! ```

use rfid_repro::core::engine::run_engine;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::queries::{FireCodeQuery, LocationChangeQuery};

fn main() {
    // Densely packed objects: several share each square foot of shelf.
    let sc = scenario::small_trace(16, 4, 99);

    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 600;
    let mut engine =
        InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
            .expect("valid configuration");
    let events = run_engine(&mut engine, &sc.trace.epoch_batches());
    println!("cleaned event stream: {} events\n", events.len());

    // --- Query 1: Istream(E.tag_id, E.(x,y,z)) --------------------
    //     From EventStream E [Partition By tag_id Row 1]
    let mut location_query = LocationChangeQuery::new(0.1);
    println!("location updates (movement threshold 0.1 ft):");
    for e in &events {
        if let Some((tag, loc)) = location_query.push(e) {
            println!("  {} moved to ({:.2}, {:.2})", tag, loc.x, loc.y);
        }
    }

    // --- Query 2: fire-code violations ----------------------------
    //     Group By square-foot area Having sum(weight) > 200 lb
    // Every object weighs 120 lb here, so any square foot holding two
    // or more objects violates the code.
    let weight_of = |_tag: TagId| 120.0;
    let mut fire_query = FireCodeQuery::new(5.0, weight_of, 200.0);
    println!("\nfire-code check (200 lb per square foot):");
    let mut any = false;
    for e in &events {
        let t = e.epoch.0 as f64;
        fire_query.push(t, e);
        for (area, total) in fire_query.evaluate(t) {
            any = true;
            println!(
                "  VIOLATION at square ({}, {}): {total:.0} lb on the shelf",
                area.x, area.y
            );
        }
    }
    if !any {
        println!("  no violations detected");
    }
    println!(
        "\n(fire-code query evaluated {} instants)",
        fire_query.emissions().len()
    );
}
