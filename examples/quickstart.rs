//! Quickstart: simulate a small warehouse scan, stream the raw streams
//! through the inference pipeline, and print the resulting location
//! events next to the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::Pipeline;

fn main() {
    // A 10-object aisle with 4 reference (shelf) tags, scanned once by
    // a simulated mobile reader at 0.1 ft/epoch. The trace contains the
    // two raw streams of the paper: noisy tag readings and noisy reader
    // location reports.
    let sc = scenario::small_trace(10, 4, 7);
    println!(
        "simulated trace: {} raw readings over {} epochs ({} objects, {} shelf tags)\n",
        sc.trace.num_readings(),
        sc.trace.truth.num_epochs(),
        sc.trace.object_tags.len(),
        sc.trace.shelf_tags.len(),
    );

    // The full engine: factored particle filter + spatial index +
    // belief compression, with the paper's defaults.
    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 1000;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid configuration");

    // Stream the raw items through source → synchronizer → engine →
    // sink; nothing is batched up front.
    let mut pipeline = Pipeline::new(sc.trace.epoch_len, engine, Vec::new());
    let stats = pipeline.run_to_completion(&mut sc.trace.stream());
    let (engine, events, _) = pipeline.into_parts();

    println!("cleaned location events (paper format: time, tag, (x, y, z), stats):");
    let mut total_err = 0.0;
    for e in &events {
        let truth = sc
            .trace
            .truth
            .object_at(e.tag, e.epoch)
            .expect("simulated object has ground truth");
        let err = e.location.dist_xy(&truth);
        total_err += err;
        let radius = e.stats.map(|s| s.confidence_radius_xy()).unwrap_or(0.0);
        println!(
            "  {} {}  est ({:5.2}, {:5.2})  truth ({:5.2}, {:5.2})  err {:.2} ft  ±{:.2}",
            e.epoch, e.tag, e.location.x, e.location.y, truth.x, truth.y, err, radius
        );
    }
    println!(
        "\nmean XY error: {:.2} ft over {} events",
        total_err / events.len() as f64,
        events.len()
    );
    println!("engine stats: {:?}", engine.stats());
    println!(
        "pipeline: {} epochs streamed, synchronizer buffer high-water {} epochs",
        stats.epochs, stats.sync_pending_high_water
    );
}
