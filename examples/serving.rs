//! Serving queries: the full serving stack end to end —
//!
//! ```text
//! pipeline ─► (StoreSink, hub.sink()) ─► EventStore + SubscriptionHub
//!                                            ▲
//!                          TCP server ◄──────┘◄─ pull + push clients
//! ```
//!
//! A warehouse scan streams through the inference engine into a shared
//! `EventStore` while a TCP query server answers clients over the
//! length-prefixed text protocol (v2: `HELLO` handshake + request
//! envelopes): where is object X now, what trail did it take, what did
//! the warehouse look like at epoch E, what changed since epoch S —
//! and, live, a subscribed client receives every location change as
//! the pipeline commits it.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::pipeline::sinks::StoreSink;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{
    serve_with, Frame, HubConfig, Query, QueryClient, QueryResponse, ServerConfig,
    SubscriptionFilter, SubscriptionHub, TelemetryCmd,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn print_rows(label: &str, resp: QueryResponse) {
    match resp {
        QueryResponse::Rows(rows) => {
            println!("{label}: {} row(s)", rows.len());
            for r in rows.iter().take(6) {
                println!(
                    "  {} @ epoch {:>4}  ({:6.2}, {:5.2}, {:4.2}) ft",
                    r.tag, r.epoch.0, r.location.x, r.location.y, r.location.z
                );
            }
            if rows.len() > 6 {
                println!("  … {} more", rows.len() - 6);
            }
        }
        QueryResponse::Error(e) => println!("{label}: ERR {e}"),
    }
}

fn main() {
    // a 24-object warehouse scan, cleaned by the full engine
    let sc = scenario::small_trace(24, 4, 2025);
    let model = JointModel::new(ModelParams::default_warehouse());
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 400;
    cfg.report_delay_epochs = 30;
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid configuration");

    // the shared store: the pipeline writes it, the server reads it.
    // 32-epoch segments; snapshots age a tag out 60 epochs after its
    // last event (the churn semantics — departed objects leave the
    // relation but keep their trail)
    let store = Arc::new(RwLock::new(EventStore::new(
        StoreConfig::default()
            .with_segment_epochs(32)
            .with_snapshot_staleness(60),
    )));
    let hub = SubscriptionHub::new(HubConfig::default());
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind query server");
    println!(
        "query server listening on {} (protocol v2)\n",
        server.addr()
    );

    // a push client subscribes *before* ingestion and watches the
    // stream live from its own thread
    let done = Arc::new(AtomicBool::new(false));
    let watcher = {
        let done = Arc::clone(&done);
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut client = QueryClient::connect(addr)
                .timeout(Duration::from_millis(200))
                .establish()
                .expect("connect subscriber");
            let sub = client
                .subscribe(&SubscriptionFilter::All)
                .expect("subscribe");
            let (mut frames, mut rows, mut shown) = (0u64, 0u64, 0);
            loop {
                match client.next_push() {
                    Ok(Frame::Push { epoch, rows: r, .. }) => {
                        frames += 1;
                        rows += r.len() as u64;
                        if shown < 3 {
                            shown += 1;
                            println!(
                                "PUSH @ epoch {:>4}: {} change(s), first {} -> ({:.2}, {:.2})",
                                epoch,
                                r.len(),
                                r[0].tag,
                                r[0].location.x,
                                r[0].location.y
                            );
                        }
                    }
                    Ok(Frame::Lagged { dropped, .. }) => {
                        println!("LAGGED: {dropped} change rows dropped");
                    }
                    Ok(other) => panic!("unexpected frame {other:?}"),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                    Err(e) => panic!("subscriber read failed: {e}"),
                }
            }
            client.unsubscribe(sub).expect("unsubscribe");
            (frames, rows)
        })
    };

    // ingest the scan through the streaming pipeline, fanning events
    // into the store AND the hub — in a deployment this thread runs
    // forever on the live reader streams
    let mut pipeline = Pipeline::new(
        sc.trace.epoch_len,
        engine,
        (StoreSink::new(Arc::clone(&store)), hub.sink()),
    );
    let stats = pipeline.run_to_completion(&mut sc.trace.stream());
    done.store(true, Ordering::SeqCst);
    {
        let s = store.read().unwrap();
        let st = s.stats();
        println!(
            "\ningested {} events over {} epochs into {} segment(s), {} tag(s)",
            stats.events, stats.epochs, st.segments, st.tags
        );
    }
    let (push_frames, push_rows) = watcher.join().expect("watcher thread");
    println!("subscriber saw {push_frames} PUSH frame(s) carrying {push_rows} change row(s)\n");

    // a pull client asks the five serving questions over real TCP
    let mut client = QueryClient::connect(server.addr())
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect");
    let last = store.read().unwrap().latest_epoch();

    print_rows(
        "CURRENT tag 3",
        client.query(&Query::CurrentLocation(TagId(3))).unwrap(),
    );
    print_rows(
        &format!("TRAIL tag 3, epochs 0..={last}"),
        client
            .query(&Query::Trail {
                tag: TagId(3),
                from: Epoch(0),
                to: Epoch(last),
            })
            .unwrap(),
    );
    print_rows(
        &format!("SNAPSHOT at epoch {}", last / 2),
        client.query(&Query::SnapshotAt(Epoch(last / 2))).unwrap(),
    );
    // the epoch-delta form: only what changed in the second quarter of
    // the scan — the incremental-refresh primitive behind dashboards
    print_rows(
        &format!("SNAPSHOT at {} SINCE {}", last / 2, last / 4),
        client
            .query(&Query::SnapshotDelta {
                at: Epoch(last / 2),
                since: Epoch(last / 4),
            })
            .unwrap(),
    );
    // query at the scan midpoint: with staleness 60 configured, a
    // single-scan trace has aged most tags out of the *final* epoch's
    // relation — historical containment is the interesting question
    print_rows(
        &format!("CONTAIN x in [0, 6], y in [-1, 3] at epoch {}", last / 2),
        client
            .query(&Query::Containment {
                x0: 0.0,
                y0: -1.0,
                x1: 6.0,
                y1: 3.0,
                epoch: Epoch(last / 2),
            })
            .unwrap(),
    );

    // scrape the process-wide observability registry over the same
    // connection — protocol v2's TELEMETRY verb, answered without the
    // store lock, so a monitoring poll can never stall a query. Every
    // layer that ran above shows up: engine_*, pipeline_*, store_*,
    // hub_*, and the server's own per-verb latency histograms.
    let metrics = client
        .telemetry(TelemetryCmd::Metrics)
        .expect("telemetry scrape");
    println!(
        "\nTELEMETRY METRICS ({} bytes; counters, gauges, histogram sums):",
        metrics.len()
    );
    for line in metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket{"))
    {
        println!("  {line}");
    }

    server.shutdown();
    println!("\nserver stopped.");
}
