//! A tour of the three scalability enhancements of §IV: run the same
//! warehouse trace through the basic filter, the factored filter, the
//! factored+indexed filter, and the full system, and watch the cost
//! per reading collapse while accuracy holds.
//!
//! ```text
//! cargo run --release --example scalability_tour
//! ```

use rfid_repro::core::engine::run_engine;
use rfid_repro::core::BasicParticleFilter;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use std::time::Instant;

fn main() {
    let num_objects = 200;
    let sc = scenario::scalability_trace(num_objects, 4242);
    let batches = sc.trace.epoch_batches();
    let readings: usize = batches.iter().map(|b| b.readings.len()).sum();
    println!(
        "warehouse: {num_objects} objects, {} epochs, {readings} raw readings\n",
        batches.len()
    );

    let score = |events: &[LocationEvent]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for e in events {
            if let Some(t) = sc.trace.truth.object_at(e.tag, e.epoch) {
                sum += e.location.dist_xy(&t);
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };

    println!(
        "{:<34} {:>9} {:>12} {:>10}",
        "variant", "error ft", "ms/reading", "mem MB"
    );

    // --- basic (unfactorized) filter: small joint-particle budget ---
    // (at 200 objects a *fair* budget would be astronomically large;
    // this is exactly the paper's point)
    {
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut f = BasicParticleFilter::new(
            model,
            sc.layout.clone(),
            sc.trace.shelf_tags.clone(),
            FilterConfig::factored_default(),
            20_000,
        )
        .expect("valid configuration");
        let start = Instant::now();
        let mut events = Vec::new();
        for b in &batches {
            events.extend(f.process_batch(b));
        }
        events.extend(f.finalize(batches.last().unwrap().epoch));
        let ms = start.elapsed().as_secs_f64() * 1e3 / readings as f64;
        println!(
            "{:<34} {:>9.2} {:>12.3} {:>10}",
            "Unfactorized (20k joint particles)",
            score(&events),
            ms,
            "-"
        );
    }

    // --- the three engine variants ----------------------------------
    let variants: [(&str, FilterConfig); 3] = [
        ("Factorized", FilterConfig::factored_default()),
        ("Factorized+Index", FilterConfig::indexed_default()),
        ("Factorized+Index+Compression", FilterConfig::full_default()),
    ];
    for (name, mut cfg) in variants {
        cfg.particles_per_object = 1000;
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let mut engine =
            InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
                .expect("valid configuration");
        let start = Instant::now();
        let events = run_engine(&mut engine, &batches);
        let ms = start.elapsed().as_secs_f64() * 1e3 / readings as f64;
        println!(
            "{:<34} {:>9.2} {:>12.3} {:>10.1}",
            name,
            score(&events),
            ms,
            engine.memory_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\n(see `cargo run -p rfid-bench --release --bin experiments -- fig5ij-scalability`");
    println!(" for the full Fig 5(i)/(j) sweep up to 20,000 objects)");
}
