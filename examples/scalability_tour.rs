//! A tour of the three scalability enhancements of §IV: stream the
//! same warehouse trace through the basic filter, the factored filter,
//! the factored+indexed filter, and the full system — all via the
//! streaming pipeline — and watch the cost per reading collapse while
//! accuracy holds.
//!
//! ```text
//! cargo run --release --example scalability_tour
//! ```

use rfid_repro::core::BasicParticleFilter;
use rfid_repro::prelude::*;
use rfid_repro::sim::scenario;
use rfid_repro::stream::Pipeline;
use std::time::Instant;

fn main() {
    let num_objects = 200;
    let sc = scenario::scalability_trace(num_objects, 4242);
    let readings = sc.trace.num_readings();
    println!(
        "warehouse: {num_objects} objects, {} epochs, {readings} raw readings\n",
        sc.trace.truth.num_epochs()
    );

    let score = |events: &[LocationEvent]| -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for e in events {
            if let Some(t) = sc.trace.truth.object_at(e.tag, e.epoch) {
                sum += e.location.dist_xy(&t);
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };

    println!(
        "{:<34} {:>9} {:>12} {:>10}",
        "variant", "error ft", "ms/reading", "mem MB"
    );

    // --- basic (unfactorized) filter: small joint-particle budget ---
    // (at 200 objects a *fair* budget would be astronomically large;
    // this is exactly the paper's point)
    {
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let filter = BasicParticleFilter::new(
            model,
            sc.layout.clone(),
            sc.trace.shelf_tags.clone(),
            FilterConfig::factored_default(),
            20_000,
        )
        .expect("valid configuration");
        let mut pipeline = Pipeline::new(sc.trace.epoch_len, filter, Vec::new());
        let start = Instant::now();
        let pstats = pipeline.run_to_completion(&mut sc.trace.stream());
        let ms = start.elapsed().as_secs_f64() * 1e3 / pstats.batch_readings as f64;
        let (_, events, _) = pipeline.into_parts();
        println!(
            "{:<34} {:>9.2} {:>12.3} {:>10}",
            "Unfactorized (20k joint particles)",
            score(&events),
            ms,
            "-"
        );
    }

    // --- the three engine variants ----------------------------------
    let variants: [(&str, FilterConfig); 3] = [
        ("Factorized", FilterConfig::factored_default()),
        ("Factorized+Index", FilterConfig::indexed_default()),
        ("Factorized+Index+Compression", FilterConfig::full_default()),
    ];
    for (name, mut cfg) in variants {
        cfg.particles_per_object = 1000;
        let model = JointModel::with_sensor(
            ConeSensor::paper_default(),
            ModelParams::default_warehouse(),
        );
        let engine =
            InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
                .expect("valid configuration");
        let mut pipeline = Pipeline::new(sc.trace.epoch_len, engine, Vec::new());
        let start = Instant::now();
        let pstats = pipeline.run_to_completion(&mut sc.trace.stream());
        let ms = start.elapsed().as_secs_f64() * 1e3 / pstats.batch_readings as f64;
        let (engine, events, _) = pipeline.into_parts();
        println!(
            "{:<34} {:>9.2} {:>12.3} {:>10.1}",
            name,
            score(&events),
            ms,
            engine.memory_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    println!("\n(see `cargo run -p rfid-bench --release --bin experiments -- fig5ij-scalability`");
    println!(" for the full Fig 5(i)/(j) sweep up to 20,000 objects)");
}
