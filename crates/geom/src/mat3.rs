//! 3x3 matrices with the factorizations Gaussian models need.
//!
//! Covariance matrices in this system are 3x3 symmetric positive
//! (semi-)definite; sampling needs a Cholesky factor and density
//! evaluation needs `Sigma^{-1}` and `log det Sigma`. A hand-rolled type
//! keeps the workspace dependency-free and the hot paths branch-light.

use crate::point::Vec3;

/// A row-major 3x3 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// Builds a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Self { m: [r0, r1, r2] }
    }

    /// The zero matrix.
    #[inline]
    pub const fn zero() -> Self {
        Self { m: [[0.0; 3]; 3] }
    }

    /// The identity matrix.
    #[inline]
    pub const fn identity() -> Self {
        Self::from_rows([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0])
    }

    /// Diagonal matrix with entries `d`.
    #[inline]
    pub const fn diag(d: [f64; 3]) -> Self {
        Self::from_rows([d[0], 0.0, 0.0], [0.0, d[1], 0.0], [0.0, 0.0, d[2]])
    }

    /// Uniform scaling `s * I`.
    #[inline]
    pub const fn scale(s: f64) -> Self {
        Self::diag([s, s, s])
    }

    /// Matrix-vector product.
    #[inline]
    pub fn mul_vec(&self, v: &Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Matrix-matrix product.
    pub fn mul(&self, o: &Mat3) -> Mat3 {
        let mut r = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for (k, ok) in o.m.iter().enumerate() {
                    s += self.m[i][k] * ok[j];
                }
                r.m[i][j] = s;
            }
        }
        r
    }

    /// Matrix sum.
    pub fn add(&self, o: &Mat3) -> Mat3 {
        let mut r = *self;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] += o.m[i][j];
            }
        }
        r
    }

    /// Scales every entry by `s`.
    pub fn scaled(&self, s: f64) -> Mat3 {
        let mut r = *self;
        for row in r.m.iter_mut() {
            for v in row.iter_mut() {
                *v *= s;
            }
        }
        r
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(
            [self.m[0][0], self.m[1][0], self.m[2][0]],
            [self.m[0][1], self.m[1][1], self.m[2][1]],
            [self.m[0][2], self.m[1][2], self.m[2][2]],
        )
    }

    /// Outer product `u v^T`.
    pub fn outer(u: &Vec3, v: &Vec3) -> Mat3 {
        Mat3::from_rows(
            [u.x * v.x, u.x * v.y, u.x * v.z],
            [u.y * v.x, u.y * v.y, u.y * v.z],
            [u.z * v.x, u.z * v.y, u.z * v.z],
        )
    }

    /// Determinant by cofactor expansion.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate; `None` when `|det|` is below `1e-15`.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < 1e-15 {
            return None;
        }
        let m = &self.m;
        let inv_d = 1.0 / d;
        Some(Mat3::from_rows(
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d,
            ],
        ))
    }

    /// Lower-triangular Cholesky factor `L` with `L L^T = self`.
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite. Callers holding near-singular covariances should
    /// regularize with [`Mat3::regularized`] first.
    #[allow(clippy::needless_range_loop)] // textbook index form
    pub fn cholesky(&self) -> Option<Mat3> {
        let a = &self.m;
        let mut l = [[0.0f64; 3]; 3];
        for i in 0..3 {
            for j in 0..=i {
                let mut s = a[i][j];
                for k in 0..j {
                    s -= l[i][k] * l[j][k];
                }
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    l[i][j] = s.sqrt();
                } else {
                    l[i][j] = s / l[j][j];
                }
            }
        }
        Some(Mat3 { m: l })
    }

    /// Adds `eps` to the diagonal — a standard ridge to keep empirically
    /// estimated covariances positive definite (needed by belief
    /// compression when particles have collapsed to a near-plane).
    #[inline]
    pub fn regularized(&self, eps: f64) -> Mat3 {
        let mut r = *self;
        r.m[0][0] += eps;
        r.m[1][1] += eps;
        r.m[2][2] += eps;
        r
    }

    /// True when the matrix is symmetric to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (self.m[0][1] - self.m[1][0]).abs() <= tol
            && (self.m[0][2] - self.m[2][0]).abs() <= tol
            && (self.m[1][2] - self.m[2][1]).abs() <= tol
    }

    /// Trace of the matrix.
    #[inline]
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Solves `self * x = b` for symmetric positive-definite `self`
    /// using the Cholesky factor (forward then backward substitution).
    pub fn solve_spd(&self, b: &Vec3) -> Option<Vec3> {
        let l = self.cholesky()?;
        // forward: L y = b
        let y0 = b.x / l.m[0][0];
        let y1 = (b.y - l.m[1][0] * y0) / l.m[1][1];
        let y2 = (b.z - l.m[2][0] * y0 - l.m[2][1] * y1) / l.m[2][2];
        // backward: L^T x = y
        let x2 = y2 / l.m[2][2];
        let x1 = (y1 - l.m[2][1] * x2) / l.m[1][1];
        let x0 = (y0 - l.m[1][0] * x1 - l.m[2][0] * x2) / l.m[0][0];
        Some(Vec3::new(x0, x1, x2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd_sample(a: f64, b: f64, c: f64, d: f64, e: f64, f: f64) -> Mat3 {
        // Build SPD as A^T A + I for a random A.
        let m = Mat3::from_rows([a, b, c], [d, e, f], [b, f, a + 1.0]);
        m.transpose().mul(&m).add(&Mat3::identity())
    }

    #[test]
    fn identity_is_its_own_inverse_and_factor() {
        let i = Mat3::identity();
        assert_eq!(i.inverse().unwrap(), i);
        assert_eq!(i.cholesky().unwrap(), i);
        assert!((i.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_identity() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::identity().mul_vec(&v), v);
    }

    #[test]
    fn diag_cholesky_is_sqrt() {
        let d = Mat3::diag([4.0, 9.0, 16.0]);
        let l = d.cholesky().unwrap();
        assert_eq!(l, Mat3::diag([2.0, 3.0, 4.0]));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Mat3::diag([1.0, -1.0, 1.0]);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 0.0, 1.0]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn solve_spd_matches_inverse() {
        let m = spd_sample(1.0, 0.2, -0.3, 0.1, 2.0, 0.4);
        let b = Vec3::new(1.0, -2.0, 0.5);
        let x = m.solve_spd(&b).unwrap();
        let r = m.mul_vec(&x);
        assert!((r - b).norm() < 1e-9);
    }

    #[test]
    fn outer_product_rank_one() {
        let u = Vec3::new(1.0, 2.0, 3.0);
        let v = Vec3::new(4.0, 5.0, 6.0);
        let o = Mat3::outer(&u, &v);
        assert!((o.det()).abs() < 1e-9); // rank 1 => singular
        assert!((o.m[1][2] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn regularized_adds_ridge() {
        let m = Mat3::zero().regularized(0.5);
        assert_eq!(m, Mat3::scale(0.5));
    }

    proptest! {
        #[test]
        fn prop_cholesky_reconstructs(
            a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64,
            d in -2.0..2.0f64, e in -2.0..2.0f64, f in -2.0..2.0f64) {
            let m = spd_sample(a, b, c, d, e, f);
            let l = m.cholesky().expect("SPD by construction");
            let r = l.mul(&l.transpose());
            for i in 0..3 {
                for j in 0..3 {
                    prop_assert!((r.m[i][j] - m.m[i][j]).abs() < 1e-6,
                        "mismatch at ({}, {}): {} vs {}", i, j, r.m[i][j], m.m[i][j]);
                }
            }
        }

        #[test]
        fn prop_inverse_roundtrip(
            a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64,
            d in -2.0..2.0f64, e in -2.0..2.0f64, f in -2.0..2.0f64) {
            let m = spd_sample(a, b, c, d, e, f);
            let inv = m.inverse().expect("SPD is invertible");
            let p = m.mul(&inv);
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((p.m[i][j] - expect).abs() < 1e-6);
                }
            }
        }

        #[test]
        fn prop_det_of_product(
            a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64,
            d in -2.0..2.0f64, e in -2.0..2.0f64, f in -2.0..2.0f64) {
            let m1 = spd_sample(a, b, c, d, e, f);
            let m2 = spd_sample(f, e, d, c, b, a);
            let lhs = m1.mul(&m2).det();
            let rhs = m1.det() * m2.det();
            prop_assert!((lhs - rhs).abs() / rhs.abs().max(1.0) < 1e-6);
        }

        #[test]
        fn prop_solve_spd_residual(
            a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64,
            bx in -5.0..5.0f64, by in -5.0..5.0f64, bz in -5.0..5.0f64) {
            let m = spd_sample(a, b, c, 0.3, 1.1, -0.7);
            let rhs = Vec3::new(bx, by, bz);
            let x = m.solve_spd(&rhs).unwrap();
            prop_assert!((m.mul_vec(&x) - rhs).norm() < 1e-6);
        }
    }
}
