//! Gaussian distributions in one and three dimensions.
//!
//! Three uses in the system, mirroring the paper:
//!
//! * reader **motion noise** `eps ~ N(0, Sigma_m)` (diagonal covariance),
//! * reader **location-sensing noise** `eta ~ N(mu_s, Sigma_s)`,
//! * **belief compression** (§IV-D): a stabilized particle cloud is
//!   collapsed into a full-covariance 3-D Gaussian, which requires the
//!   weighted empirical mean/covariance, sampling (decompression), exact
//!   log-density, and the KL divergence from the particle set.
//!
//! Sampling uses Box-Muller on top of any [`rand::Rng`], so the workspace
//! needs no `rand_distr` dependency.

use crate::mat3::Mat3;
use crate::point::{Point3, Vec3};
use rand::Rng;

const LN_2PI: f64 = 1.837_877_066_409_345_5; // ln(2*pi)

/// Draws one standard-normal sample via the Box-Muller transform.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A univariate Gaussian `N(mean, std^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian1 {
    pub mean: f64,
    pub std: f64,
}

impl Gaussian1 {
    /// Creates a univariate Gaussian; `std` must be non-negative.
    #[inline]
    pub fn new(mean: f64, std: f64) -> Self {
        debug_assert!(std >= 0.0, "negative std {std}");
        Self { mean, std }
    }

    /// Draws one sample.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }

    /// Natural log of the density at `x`. For `std == 0` this returns
    /// `+inf` at the mean and `-inf` elsewhere (a point mass).
    pub fn log_pdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            return if x == self.mean {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        let z = (x - self.mean) / self.std;
        -0.5 * z * z - self.std.ln() - 0.5 * LN_2PI
    }
}

/// A 3-D Gaussian with diagonal covariance — the reader motion and
/// location-sensing noise models of §III-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagGaussian3 {
    pub mean: Vec3,
    /// Per-axis standard deviations.
    pub std: Vec3,
}

impl DiagGaussian3 {
    /// Creates a diagonal Gaussian from a mean vector and per-axis stds.
    #[inline]
    pub fn new(mean: Vec3, std: Vec3) -> Self {
        debug_assert!(std.x >= 0.0 && std.y >= 0.0 && std.z >= 0.0);
        Self { mean, std }
    }

    /// Zero-mean isotropic noise with std `s` in x and y and 0 in z
    /// (the planar default of the paper's simulator).
    #[inline]
    pub fn planar(s: f64) -> Self {
        Self::new(Vec3::zero(), Vec3::new(s, s, 0.0))
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec3 {
        Vec3::new(
            self.mean.x + self.std.x * standard_normal(rng),
            self.mean.y + self.std.y * standard_normal(rng),
            self.mean.z + self.std.z * standard_normal(rng),
        )
    }

    /// Log density at `v`. Axes with zero std are treated as point
    /// masses: they contribute 0 when `v` matches the mean exactly and
    /// `-inf` otherwise, except that a *small tolerance* is applied so
    /// that planar models do not veto tiny z jitter. The tolerance is
    /// 1e-9 ft.
    pub fn log_pdf(&self, v: &Vec3) -> f64 {
        let mut lp = 0.0;
        for (x, m, s) in [
            (v.x, self.mean.x, self.std.x),
            (v.y, self.mean.y, self.std.y),
            (v.z, self.mean.z, self.std.z),
        ] {
            if s == 0.0 {
                if (x - m).abs() > 1e-9 {
                    return f64::NEG_INFINITY;
                }
                continue;
            }
            let z = (x - m) / s;
            lp += -0.5 * z * z - s.ln() - 0.5 * LN_2PI;
        }
        lp
    }

    /// The covariance as a full matrix.
    pub fn covariance(&self) -> Mat3 {
        Mat3::diag([
            self.std.x * self.std.x,
            self.std.y * self.std.y,
            self.std.z * self.std.z,
        ])
    }
}

/// A full-covariance 3-D Gaussian, used by belief compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian3 {
    pub mean: Point3,
    pub cov: Mat3,
    /// Cached Cholesky factor of `cov` (lower triangular).
    chol: Mat3,
    /// Cached inverse of `cov`.
    inv: Mat3,
    /// Cached `log det cov`.
    log_det: f64,
}

impl Gaussian3 {
    /// Builds a Gaussian from mean and covariance; the covariance is
    /// ridge-regularized until it admits a Cholesky factorization, so
    /// degenerate particle clouds (all mass on a line or plane) still
    /// compress to a usable distribution.
    pub fn new(mean: Point3, cov: Mat3) -> Self {
        let mut c = cov;
        let mut ridge = 0.0;
        let (chol, cov_final) = loop {
            if let Some(l) = c.cholesky() {
                break (l, c);
            }
            ridge = if ridge == 0.0 { 1e-9 } else { ridge * 10.0 };
            assert!(
                ridge < 1.0,
                "covariance cannot be regularized into PD: {cov:?}"
            );
            c = cov.regularized(ridge);
        };
        // Invert via the Cholesky factor: solving L L^T x = e_i is stable
        // even for the tiny ridge covariances produced by degenerate
        // particle clouds (where the raw determinant underflows the
        // adjugate path's threshold).
        let inv = {
            let solve = |b: Vec3| -> Vec3 {
                // forward: L y = b
                let l = &chol.m;
                let y0 = b.x / l[0][0];
                let y1 = (b.y - l[1][0] * y0) / l[1][1];
                let y2 = (b.z - l[2][0] * y0 - l[2][1] * y1) / l[2][2];
                // backward: L^T x = y
                let x2 = y2 / l[2][2];
                let x1 = (y1 - l[2][1] * x2) / l[1][1];
                let x0 = (y0 - l[1][0] * x1 - l[2][0] * x2) / l[0][0];
                Vec3::new(x0, x1, x2)
            };
            let c0 = solve(Vec3::new(1.0, 0.0, 0.0));
            let c1 = solve(Vec3::new(0.0, 1.0, 0.0));
            let c2 = solve(Vec3::new(0.0, 0.0, 1.0));
            Mat3::from_rows([c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z])
        };
        let log_det = 2.0 * (chol.m[0][0].ln() + chol.m[1][1].ln() + chol.m[2][2].ln());
        Self {
            mean,
            cov: cov_final,
            chol,
            inv,
            log_det,
        }
    }

    /// Isotropic Gaussian with variance `var` on each axis.
    pub fn isotropic(mean: Point3, var: f64) -> Self {
        Self::new(mean, Mat3::scale(var))
    }

    /// Weighted maximum-likelihood fit (the KL-optimal Gaussian of
    /// §IV-D): sample mean and empirical covariance of a weighted point
    /// set. Weights need not be normalized. Returns `None` when the
    /// total weight is not strictly positive.
    pub fn fit_weighted(points: &[(f64, Point3)]) -> Option<Self> {
        let wsum: f64 = points.iter().map(|(w, _)| *w).sum();
        if wsum <= 0.0 || !wsum.is_finite() {
            return None;
        }
        let mut mean = Vec3::zero();
        for (w, p) in points {
            mean += p.to_vec() * (*w / wsum);
        }
        let mut cov = Mat3::zero();
        for (w, p) in points {
            let d = p.to_vec() - mean;
            cov = cov.add(&Mat3::outer(&d, &d).scaled(*w / wsum));
        }
        Some(Self::new(mean.to_point(), cov))
    }

    /// Draws one sample: `mean + L z` with `z ~ N(0, I)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point3 {
        let z = Vec3::new(
            standard_normal(rng),
            standard_normal(rng),
            standard_normal(rng),
        );
        self.mean + self.chol.mul_vec(&z)
    }

    /// Log density at `p`.
    pub fn log_pdf(&self, p: &Point3) -> f64 {
        let d = *p - self.mean;
        let q = d.dot(&self.inv.mul_vec(&d));
        -0.5 * (q + self.log_det + 3.0 * LN_2PI)
    }

    /// Mahalanobis distance squared from the mean.
    pub fn mahalanobis_sq(&self, p: &Point3) -> f64 {
        let d = *p - self.mean;
        d.dot(&self.inv.mul_vec(&d))
    }

    /// KL divergence `KL(p_hat || self)` from a weighted empirical
    /// distribution (a particle set) to this Gaussian, up to the
    /// entropy term of `p_hat` (which is a constant for the selection
    /// problem in §IV-D): the *cross-entropy* `-E_{p_hat}[log q]`.
    ///
    /// Belief compression ranks objects by this quantity evaluated at
    /// their own fitted Gaussian, which measures how much is lost by
    /// compressing — small values mean the cloud is already
    /// Gaussian-shaped and tight.
    pub fn cross_entropy(&self, points: &[(f64, Point3)]) -> f64 {
        let wsum: f64 = points.iter().map(|(w, _)| *w).sum();
        if wsum <= 0.0 {
            return f64::INFINITY;
        }
        let mut s = 0.0;
        for (w, p) in points {
            s -= (*w / wsum) * self.log_pdf(p);
        }
        s
    }

    /// Largest diagonal variance — a cheap spread measure used to decide
    /// whether a belief has "stabilized in a small region".
    pub fn max_axis_var(&self) -> f64 {
        self.cov.m[0][0].max(self.cov.m[1][1]).max(self.cov.m[2][2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gaussian1_log_pdf_peak_at_mean() {
        let g = Gaussian1::new(2.0, 0.5);
        assert!(g.log_pdf(2.0) > g.log_pdf(2.4));
        assert!(g.log_pdf(2.0) > g.log_pdf(1.6));
        // density integrates to one => at the mean, pdf = 1/(std*sqrt(2pi))
        let expect = -(0.5f64.ln()) - 0.5 * LN_2PI;
        assert!((g.log_pdf(2.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn gaussian1_point_mass() {
        let g = Gaussian1::new(1.0, 0.0);
        assert_eq!(g.log_pdf(1.0), f64::INFINITY);
        assert_eq!(g.log_pdf(1.1), f64::NEG_INFINITY);
    }

    #[test]
    fn diag_gaussian_sample_moments() {
        let mut r = rng();
        let g = DiagGaussian3::new(Vec3::new(1.0, -2.0, 0.0), Vec3::new(0.5, 2.0, 0.0));
        let n = 20_000;
        let mut mean = Vec3::zero();
        for _ in 0..n {
            mean += g.sample(&mut r);
        }
        mean = mean / n as f64;
        assert!((mean.x - 1.0).abs() < 0.02);
        assert!((mean.y + 2.0).abs() < 0.06);
        assert_eq!(mean.z, 0.0); // zero std on z: exactly the mean
    }

    #[test]
    fn diag_planar_rejects_z_offsets() {
        let g = DiagGaussian3::planar(0.1);
        assert!(g.log_pdf(&Vec3::new(0.0, 0.0, 0.5)).is_infinite());
        assert!(g.log_pdf(&Vec3::new(0.05, -0.05, 0.0)).is_finite());
    }

    #[test]
    fn gaussian3_log_pdf_matches_diag() {
        // Full-covariance with a diagonal matrix must agree with the
        // product of univariate densities.
        let g3 = Gaussian3::new(Point3::new(1.0, 2.0, 3.0), Mat3::diag([0.25, 1.0, 4.0]));
        let gx = Gaussian1::new(1.0, 0.5);
        let gy = Gaussian1::new(2.0, 1.0);
        let gz = Gaussian1::new(3.0, 2.0);
        let p = Point3::new(1.3, 1.5, 4.0);
        let expect = gx.log_pdf(p.x) + gy.log_pdf(p.y) + gz.log_pdf(p.z);
        assert!((g3.log_pdf(&p) - expect).abs() < 1e-9);
    }

    #[test]
    fn gaussian3_sampling_respects_covariance() {
        let mut r = rng();
        let cov = Mat3::from_rows([1.0, 0.8, 0.0], [0.8, 1.0, 0.0], [0.0, 0.0, 0.01]);
        let g = Gaussian3::new(Point3::origin(), cov);
        let n = 30_000;
        let mut sxy = 0.0;
        let mut sx = 0.0;
        let mut sy = 0.0;
        let samples: Vec<Point3> = (0..n).map(|_| g.sample(&mut r)).collect();
        for p in &samples {
            sx += p.x;
            sy += p.y;
        }
        let mx = sx / n as f64;
        let my = sy / n as f64;
        for p in &samples {
            sxy += (p.x - mx) * (p.y - my);
        }
        let cov_xy = sxy / n as f64;
        assert!((cov_xy - 0.8).abs() < 0.05, "cov_xy {cov_xy}");
    }

    #[test]
    fn fit_weighted_recovers_mean_and_cov() {
        let pts = vec![
            (1.0, Point3::new(-1.0, 0.0, 0.0)),
            (1.0, Point3::new(1.0, 0.0, 0.0)),
            (1.0, Point3::new(0.0, -1.0, 0.0)),
            (1.0, Point3::new(0.0, 1.0, 0.0)),
        ];
        let g = Gaussian3::fit_weighted(&pts).unwrap();
        assert!(g.mean.dist(&Point3::origin()) < 1e-9);
        assert!((g.cov.m[0][0] - 0.5).abs() < 1e-9);
        assert!((g.cov.m[1][1] - 0.5).abs() < 1e-9);
        assert!(g.cov.m[0][1].abs() < 1e-9);
    }

    #[test]
    fn fit_weighted_degenerate_cloud_is_regularized() {
        // All particles identical: covariance is exactly zero, must be
        // ridge-regularized instead of panicking.
        let pts = vec![(1.0, Point3::new(2.0, 2.0, 0.0)); 10];
        let g = Gaussian3::fit_weighted(&pts).unwrap();
        assert!(g.mean.dist(&Point3::new(2.0, 2.0, 0.0)) < 1e-9);
        assert!(g.cov.m[0][0] > 0.0);
    }

    #[test]
    fn fit_weighted_zero_weight_is_none() {
        let pts = vec![(0.0, Point3::origin())];
        assert!(Gaussian3::fit_weighted(&pts).is_none());
        assert!(Gaussian3::fit_weighted(&[]).is_none());
    }

    #[test]
    fn cross_entropy_smaller_for_tighter_cloud() {
        let tight: Vec<(f64, Point3)> = (0..100)
            .map(|i| (1.0, Point3::new((i % 10) as f64 * 0.001, 0.0, 0.0)))
            .collect();
        let wide: Vec<(f64, Point3)> = (0..100)
            .map(|i| (1.0, Point3::new((i % 10) as f64 * 1.0, 0.0, 0.0)))
            .collect();
        let gt = Gaussian3::fit_weighted(&tight).unwrap();
        let gw = Gaussian3::fit_weighted(&wide).unwrap();
        assert!(gt.cross_entropy(&tight) < gw.cross_entropy(&wide));
    }

    #[test]
    fn mahalanobis_of_mean_is_zero() {
        let g = Gaussian3::isotropic(Point3::new(1.0, 2.0, 3.0), 2.0);
        assert!(g.mahalanobis_sq(&g.mean) < 1e-12);
        assert!(g.mahalanobis_sq(&Point3::origin()) > 0.0);
    }

    #[test]
    fn decompression_roundtrip_preserves_moments() {
        // compress a cloud, sample from the Gaussian, refit: moments match.
        let mut r = rng();
        let src = Gaussian3::new(
            Point3::new(5.0, -3.0, 1.0),
            Mat3::from_rows([0.5, 0.1, 0.0], [0.1, 0.3, 0.0], [0.0, 0.0, 0.05]),
        );
        let cloud: Vec<(f64, Point3)> = (0..5000).map(|_| (1.0, src.sample(&mut r))).collect();
        let fit = Gaussian3::fit_weighted(&cloud).unwrap();
        assert!(fit.mean.dist(&src.mean) < 0.05);
        assert!((fit.cov.m[0][0] - 0.5).abs() < 0.05);
        assert!((fit.cov.m[0][1] - 0.1).abs() < 0.03);
    }
}
