//! Points and displacement vectors in 3-D space.
//!
//! The paper measures everything in feet; `z` is carried everywhere but the
//! warehouse simulator pins tags to a common height, so most distances are
//! effectively planar. [`Point3::dist_xy`] exists because the paper reports
//! inference error "in the XY plane".

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in 3-D space, in feet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// A displacement between two [`Point3`]s, in feet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The origin `(0, 0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Euclidean distance to `other` in 3-D.
    #[inline]
    pub fn dist(&self, other: &Point3) -> f64 {
        (*self - *other).norm()
    }

    /// Euclidean distance to `other` projected onto the XY plane.
    ///
    /// This is the error metric of the paper's evaluation ("Inference
    /// Error in XY Plane (ft)").
    #[inline]
    pub fn dist_xy(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance to `other`; avoids the square root on
    /// hot paths such as particle weighting.
    #[inline]
    pub fn dist_sq(&self, other: &Point3) -> f64 {
        (*self - *other).norm_sq()
    }

    /// Component-wise linear interpolation: `self` when `t == 0`, `other`
    /// when `t == 1`.
    #[inline]
    pub fn lerp(&self, other: &Point3, t: f64) -> Point3 {
        Point3::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )
    }

    /// Returns the displacement vector from the origin to this point.
    #[inline]
    pub fn to_vec(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Returns true if all coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Vec3 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(&self, other: &Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the unit vector in the same direction, or `None` for the
    /// zero vector (and anything shorter than `1e-12`).
    #[inline]
    pub fn normalized(&self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(*self / n)
        }
    }

    /// The planar (XY) norm of the vector.
    #[inline]
    pub fn norm_xy(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Converts the vector to a point (origin + self).
    #[inline]
    pub fn to_point(self) -> Point3 {
        Point3::new(self.x, self.y, self.z)
    }
}

impl Add<Vec3> for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign<Vec3> for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub<Vec3> for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign<Vec3> for Point3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Sub<Point3> for Point3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Point3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Add<Vec3> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign<Vec3> for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub<Vec3> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Weighted centroid of `(weight, point)` pairs.
///
/// Returns `None` when the total weight is not strictly positive. Used to
/// turn a weighted particle set into a location estimate (Eq. 4 in the
/// paper reduces to this for the posterior mean).
pub fn weighted_mean<I>(iter: I) -> Option<Point3>
where
    I: IntoIterator<Item = (f64, Point3)>,
{
    let mut wsum = 0.0;
    let mut acc = Vec3::zero();
    for (w, p) in iter {
        wsum += w;
        acc += p.to_vec() * w;
    }
    if wsum > 0.0 {
        Some((acc / wsum).to_point())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn point_sub_gives_displacement() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 6.0, 3.0);
        let d = b - a;
        assert_eq!(d, Vec3::new(3.0, 4.0, 0.0));
        assert!((d.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dist_xy_ignores_z() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 100.0);
        assert!((a.dist_xy(&b) - 5.0).abs() < 1e-12);
        assert!(a.dist(&b) > 100.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point3::new(1.0, 1.0, 1.0);
        let b = Point3::new(2.0, 3.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12);
        assert!((mid.y - 2.0).abs() < 1e-12);
        assert!((mid.z - 2.5).abs() < 1e-12);
    }

    #[test]
    fn cross_product_orthogonality() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(&b), Vec3::new(0.0, 0.0, 1.0));
        assert!((a.cross(&b).dot(&a)).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Vec3::zero().normalized().is_none());
        let v = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        let pts = vec![
            (1.0, Point3::new(0.0, 0.0, 0.0)),
            (1.0, Point3::new(2.0, 0.0, 0.0)),
        ];
        let m = weighted_mean(pts).unwrap();
        assert!((m.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_zero_weight_is_none() {
        let pts = vec![(0.0, Point3::new(1.0, 1.0, 1.0))];
        assert!(weighted_mean(pts).is_none());
        assert!(weighted_mean(std::iter::empty()).is_none());
    }

    #[test]
    fn weighted_mean_respects_weights() {
        let pts = vec![
            (3.0, Point3::new(0.0, 0.0, 0.0)),
            (1.0, Point3::new(4.0, 0.0, 0.0)),
        ];
        let m = weighted_mean(pts).unwrap();
        assert!((m.x - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_dist_symmetry(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                              bx in -100.0..100.0f64, by in -100.0..100.0f64) {
            let a = Point3::new(ax, ay, 0.0);
            let b = Point3::new(bx, by, 0.0);
            prop_assert!((a.dist(&b) - b.dist(&a)).abs() < 1e-9);
            prop_assert!(a.dist(&b) >= 0.0);
        }

        #[test]
        fn prop_triangle_inequality(
            ax in -50.0..50.0f64, ay in -50.0..50.0f64, az in -50.0..50.0f64,
            bx in -50.0..50.0f64, by in -50.0..50.0f64, bz in -50.0..50.0f64,
            cx in -50.0..50.0f64, cy in -50.0..50.0f64, cz in -50.0..50.0f64) {
            let a = Point3::new(ax, ay, az);
            let b = Point3::new(bx, by, bz);
            let c = Point3::new(cx, cy, cz);
            prop_assert!(a.dist(&c) <= a.dist(&b) + b.dist(&c) + 1e-9);
        }

        #[test]
        fn prop_add_sub_roundtrip(
            px in -50.0..50.0f64, py in -50.0..50.0f64, pz in -50.0..50.0f64,
            vx in -50.0..50.0f64, vy in -50.0..50.0f64, vz in -50.0..50.0f64) {
            let p = Point3::new(px, py, pz);
            let v = Vec3::new(vx, vy, vz);
            let q = (p + v) - v;
            prop_assert!(p.dist(&q) < 1e-9);
        }

        #[test]
        fn prop_cross_orthogonal(
            ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
            bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(&b);
            prop_assert!(c.dot(&a).abs() < 1e-6);
            prop_assert!(c.dot(&b).abs() < 1e-6);
        }

        #[test]
        fn prop_weighted_mean_in_hull_1d(
            x1 in -10.0..10.0f64, x2 in -10.0..10.0f64,
            w1 in 0.001..10.0f64, w2 in 0.001..10.0f64) {
            let m = weighted_mean(vec![
                (w1, Point3::new(x1, 0.0, 0.0)),
                (w2, Point3::new(x2, 0.0, 0.0)),
            ]).unwrap();
            let lo = x1.min(x2) - 1e-9;
            let hi = x1.max(x2) + 1e-9;
            prop_assert!(m.x >= lo && m.x <= hi);
        }
    }
}
