//! Geometry and small linear-algebra substrate for the RFID inference stack.
//!
//! The paper's model lives in a low-dimensional continuous space: object
//! locations are `(x, y, z)` points, the reader pose adds a heading angle,
//! sensing regions are summarized by axis-aligned bounding boxes, and all
//! noise models are (at most) 3-dimensional Gaussians. Rather than pulling
//! in a general linear-algebra dependency, this crate implements exactly
//! the primitives the rest of the workspace needs:
//!
//! * [`Point3`] / [`Vec3`]: positions and displacements in feet.
//! * [`Pose`]: reader position plus heading angle `phi` in the XY plane.
//! * [`Aabb`]: axis-aligned bounding boxes (used by the spatial index).
//! * [`Mat3`]: symmetric-positive-definite friendly 3x3 matrices with
//!   Cholesky factorization, used for Gaussian covariances.
//! * [`Gaussian1`], [`Gaussian3`], [`DiagGaussian3`]: the noise models of
//!   the paper (reader motion, reader location sensing, compressed object
//!   beliefs) with exact log-density evaluation and sampling.
//! * [`angles`]: utilities for working with headings and bearings.
//!
//! Everything is `f64` and units are feet/radians/seconds to match the
//! paper's evaluation.

pub mod aabb;
pub mod angles;
pub mod gaussian;
pub mod mat3;
pub mod point;
pub mod pose;

pub use aabb::Aabb;
pub use gaussian::{standard_normal, DiagGaussian3, Gaussian1, Gaussian3};
pub use mat3::Mat3;
pub use point::{Point3, Vec3};
pub use pose::Pose;

/// Absolute tolerance used by approximate comparisons in tests and
/// numerically-guarded library code.
pub const EPS: f64 = 1e-9;

/// Returns true when `a` and `b` are within `tol` of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
