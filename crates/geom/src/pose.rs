//! Reader poses: a 3-D position plus a heading angle in the XY plane.
//!
//! The paper's reader state `R_t` is "a vector containing (x, y, z)
//! position and orientation"; the orientation that matters to the sensor
//! model is the planar heading `r_phi` (Eq. 1 uses `[cos r_phi, sin
//! r_phi]`), so a pose is a [`Point3`] plus one angle.

use crate::angles::{reader_tag_angle, wrap_pi};
use crate::point::{Point3, Vec3};

/// Reader pose: position in feet plus heading angle `phi` in radians.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Position of the reader antenna.
    pub pos: Point3,
    /// Heading angle in the XY plane, measured from the +x axis,
    /// normalized into `(-pi, pi]`.
    pub phi: f64,
}

impl Pose {
    /// Creates a pose, normalizing the heading into `(-pi, pi]`.
    #[inline]
    pub fn new(pos: Point3, phi: f64) -> Self {
        Self {
            pos,
            phi: wrap_pi(phi),
        }
    }

    /// A pose at the origin facing +x.
    #[inline]
    pub fn identity() -> Self {
        Self {
            pos: Point3::origin(),
            phi: 0.0,
        }
    }

    /// Distance from the reader to a tag (3-D, feet). The `d_ti` of Eq. 1.
    #[inline]
    pub fn dist_to(&self, tag: &Point3) -> f64 {
        self.pos.dist(tag)
    }

    /// Absolute angle between the reader heading and the direction to a
    /// tag, in `[0, pi]`. The `theta_ti` of Eq. 1.
    #[inline]
    pub fn angle_to(&self, tag: &Point3) -> f64 {
        reader_tag_angle(&self.pos, self.phi, tag)
    }

    /// Both `d_ti` and `theta_ti` in one call (the sensor model always
    /// needs the pair).
    #[inline]
    pub fn range_bearing(&self, tag: &Point3) -> (f64, f64) {
        (self.dist_to(tag), self.angle_to(tag))
    }

    /// [`range_bearing`](Self::range_bearing) with the heading's
    /// cosine/sine precomputed (hoisted out of per-particle loops);
    /// bit-identical to the plain form.
    #[inline]
    pub fn range_bearing_with(&self, cos_phi: f64, sin_phi: f64, tag: &Point3) -> (f64, f64) {
        (
            self.dist_to(tag),
            crate::angles::reader_tag_angle_trig(&self.pos, cos_phi, sin_phi, tag),
        )
    }

    /// Returns the pose translated by `v` (heading unchanged).
    #[inline]
    pub fn translated(&self, v: Vec3) -> Pose {
        Pose {
            pos: self.pos + v,
            phi: self.phi,
        }
    }

    /// Returns the pose with heading rotated by `dphi`.
    #[inline]
    pub fn rotated(&self, dphi: f64) -> Pose {
        Pose {
            pos: self.pos,
            phi: wrap_pi(self.phi + dphi),
        }
    }

    /// True when position and heading are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.pos.is_finite() && self.phi.is_finite()
    }
}

impl Default for Pose {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn pose_normalizes_heading() {
        let p = Pose::new(Point3::origin(), 3.0 * PI);
        assert!((p.phi - PI).abs() < 1e-12);
    }

    #[test]
    fn range_bearing_matches_parts() {
        let p = Pose::new(Point3::new(1.0, 1.0, 0.0), 0.5);
        let tag = Point3::new(4.0, 5.0, 0.0);
        let (d, th) = p.range_bearing(&tag);
        assert!((d - p.dist_to(&tag)).abs() < 1e-12);
        assert!((th - p.angle_to(&tag)).abs() < 1e-12);
    }

    #[test]
    fn translated_moves_position_only() {
        let p = Pose::new(Point3::origin(), 1.0);
        let q = p.translated(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(q.pos, Point3::new(1.0, 2.0, 3.0));
        assert_eq!(q.phi, p.phi);
    }

    #[test]
    fn rotated_wraps() {
        let p = Pose::new(Point3::origin(), PI - 0.1);
        let q = p.rotated(0.2);
        assert!((q.phi - (-PI + 0.1)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_heading_always_wrapped(phi in -100.0..100.0f64, dphi in -100.0..100.0f64) {
            let p = Pose::new(Point3::origin(), phi).rotated(dphi);
            prop_assert!(p.phi > -PI - 1e-12 && p.phi <= PI + 1e-12);
        }

        #[test]
        fn prop_angle_to_in_range(
            phi in -5.0..5.0f64,
            tx in -10.0..10.0f64, ty in -10.0..10.0f64) {
            let p = Pose::new(Point3::origin(), phi);
            let th = p.angle_to(&Point3::new(tx, ty, 0.0));
            prop_assert!((0.0..=PI + 1e-12).contains(&th));
        }
    }
}
