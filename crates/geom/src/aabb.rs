//! Axis-aligned bounding boxes.
//!
//! The spatial-indexing enhancement (§IV-C of the paper) approximates each
//! epoch's sensing region by its bounding box and inserts those boxes into
//! a simplified R*-tree. This module provides the box arithmetic the tree
//! needs: union, intersection tests, area/margin, and enlargement metrics.

use crate::point::Point3;

/// An axis-aligned box in 3-D, in feet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Point3,
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its corners; panics in debug builds if any
    /// max coordinate is below the corresponding min.
    #[inline]
    pub fn new(min: Point3, max: Point3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "degenerate AABB: min {min:?} max {max:?}"
        );
        Self { min, max }
    }

    /// A box containing a single point.
    #[inline]
    pub fn point(p: Point3) -> Self {
        Self { min: p, max: p }
    }

    /// A box centered on `c` extending `r` in every axis.
    #[inline]
    pub fn cube(c: Point3, r: f64) -> Self {
        debug_assert!(r >= 0.0);
        Self {
            min: Point3::new(c.x - r, c.y - r, c.z - r),
            max: Point3::new(c.x + r, c.y + r, c.z + r),
        }
    }

    /// The "empty" box: union identity. Contains nothing; unioning with
    /// any real box yields that box.
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True for the union identity produced by [`Aabb::empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point3::new(
                self.min.x.min(other.min.x),
                self.min.y.min(other.min.y),
                self.min.z.min(other.min.z),
            ),
            max: Point3::new(
                self.max.x.max(other.max.x),
                self.max.y.max(other.max.y),
                self.max.z.max(other.max.z),
            ),
        }
    }

    /// Grows the box (in place) to contain `p`.
    #[inline]
    pub fn extend(&mut self, p: Point3) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.min.z = self.min.z.min(p.z);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
        self.max.z = self.max.z.max(p.z);
    }

    /// True when the boxes overlap (closed intervals: touching counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// True when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: &Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True when `other` lies entirely inside this box.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        self.contains(&other.min) && self.contains(&other.max)
    }

    /// Volume of the box (`0` for empty or degenerate boxes).
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) * (self.max.y - self.min.y) * (self.max.z - self.min.z)
    }

    /// Area of the XY footprint (useful because the warehouse is
    /// effectively planar).
    #[inline]
    pub fn area_xy(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) * (self.max.y - self.min.y)
    }

    /// Sum of the edge lengths — the "margin" criterion used by the
    /// R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.max.x - self.min.x) + (self.max.y - self.min.y) + (self.max.z - self.min.z)
    }

    /// How much the volume grows when this box is enlarged to include
    /// `other` — the R*-tree `ChooseSubtree` criterion.
    #[inline]
    pub fn enlargement(&self, other: &Aabb) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        Point3::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
            (self.min.z + self.max.z) * 0.5,
        )
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    #[inline]
    pub fn intersection_volume(&self, other: &Aabb) -> f64 {
        let dx = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let dy = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        let dz = (self.max.z.min(other.max.z) - self.min.z.max(other.min.z)).max(0.0);
        dx * dy * dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn b(ax: f64, ay: f64, bx: f64, by: f64) -> Aabb {
        Aabb::new(Point3::new(ax, ay, 0.0), Point3::new(bx, by, 1.0))
    }

    #[test]
    fn union_contains_both() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let c = b(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&c);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&c));
    }

    #[test]
    fn empty_is_union_identity() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.volume(), 0.0);
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let c = b(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&c));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = b(0.0, 0.0, 1.0, 1.0);
        let c = b(1.5, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_volume(&c), 0.0);
    }

    #[test]
    fn cube_geometry() {
        let c = Aabb::cube(Point3::new(1.0, 1.0, 1.0), 0.5);
        assert!((c.volume() - 1.0).abs() < 1e-12);
        assert!((c.margin() - 3.0).abs() < 1e-12);
        assert_eq!(c.center(), Point3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn enlargement_zero_for_contained() {
        let a = b(0.0, 0.0, 10.0, 10.0);
        let c = b(1.0, 1.0, 2.0, 2.0);
        assert!(a.enlargement(&c).abs() < 1e-12);
        assert!(c.enlargement(&a) > 0.0);
    }

    #[test]
    fn extend_grows_to_point() {
        let mut a = Aabb::point(Point3::origin());
        a.extend(Point3::new(2.0, -1.0, 3.0));
        assert!(a.contains(&Point3::new(1.0, -0.5, 2.0)));
        assert!(!a.contains(&Point3::new(3.0, 0.0, 0.0)));
    }

    #[test]
    fn intersection_volume_of_overlap() {
        let a = b(0.0, 0.0, 2.0, 2.0);
        let c = b(1.0, 1.0, 3.0, 3.0);
        // overlap is 1x1 in XY and z in [0,1] => volume 1
        assert!((a.intersection_volume(&c) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_union_commutative(
            ax in -10.0..0.0f64, ay in -10.0..0.0f64,
            bx in 0.0..10.0f64, by in 0.0..10.0f64,
            cx in -10.0..0.0f64, cy in -10.0..0.0f64,
            dx in 0.0..10.0f64, dy in 0.0..10.0f64) {
            let a = b(ax, ay, bx, by);
            let c = b(cx, cy, dx, dy);
            prop_assert_eq!(a.union(&c), c.union(&a));
        }

        #[test]
        fn prop_union_volume_superadditive(
            ax in -10.0..0.0f64, ay in -10.0..0.0f64,
            bx in 0.0..10.0f64, by in 0.0..10.0f64,
            cx in -10.0..0.0f64, cy in -10.0..0.0f64,
            dx in 0.0..10.0f64, dy in 0.0..10.0f64) {
            let a = b(ax, ay, bx, by);
            let c = b(cx, cy, dx, dy);
            let u = a.union(&c);
            prop_assert!(u.volume() + 1e-9 >= a.volume());
            prop_assert!(u.volume() + 1e-9 >= c.volume());
        }

        #[test]
        fn prop_contains_center(
            ax in -10.0..0.0f64, ay in -10.0..0.0f64,
            bx in 0.0..10.0f64, by in 0.0..10.0f64) {
            let a = b(ax, ay, bx, by);
            prop_assert!(a.contains(&a.center()));
        }

        #[test]
        fn prop_intersection_symmetric(
            ax in -10.0..0.0f64, bx in 0.0..10.0f64,
            cx in -10.0..10.0f64, w in 0.1..5.0f64) {
            let a = b(ax, -1.0, bx, 1.0);
            let c = b(cx, -1.0, cx + w, 1.0);
            prop_assert_eq!(a.intersects(&c), c.intersects(&a));
            prop_assert!((a.intersection_volume(&c) - c.intersection_volume(&a)).abs() < 1e-9);
        }
    }
}
