//! Angle utilities for reader headings and tag bearings.
//!
//! The sensor model of the paper (Eq. 1) depends on the angle `theta`
//! between the reader's facing direction and the direction toward the tag;
//! this module provides the canonical computation plus wrapping helpers.

use crate::point::{Point3, Vec3};

/// Normalizes an angle into `(-pi, pi]`.
#[inline]
pub fn wrap_pi(a: f64) -> f64 {
    let mut a = a % (2.0 * std::f64::consts::PI);
    if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    } else if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    }
    a
}

/// Smallest absolute difference between two angles, in `[0, pi]`.
#[inline]
pub fn angular_diff(a: f64, b: f64) -> f64 {
    wrap_pi(a - b).abs()
}

/// The bearing (angle in the XY plane, measured from the +x axis) of the
/// displacement from `from` to `to`.
#[inline]
pub fn bearing_xy(from: &Point3, to: &Point3) -> f64 {
    (to.y - from.y).atan2(to.x - from.x)
}

/// The absolute angle, in `[0, pi]`, between a heading `phi` (radians,
/// XY plane) at `reader` and the direction toward `tag`.
///
/// This is the `theta_ti` of the paper: with `delta = O_ti - r_t`,
/// `cos(theta) = delta . [cos phi, sin phi] / |delta|` (the projection is
/// planar; the z component contributes to distance but not to bearing,
/// matching the paper's 2-component heading vector).
#[inline]
pub fn reader_tag_angle(reader: &Point3, phi: f64, tag: &Point3) -> f64 {
    reader_tag_angle_trig(reader, phi.cos(), phi.sin(), tag)
}

/// [`reader_tag_angle`] with the heading's cosine and sine already
/// computed — the pair is loop-invariant per reader particle, so hot
/// loops hoist it once per pose instead of paying `sin`/`cos` per
/// object particle. Identical arithmetic (and therefore identical
/// bits) to the plain form.
#[inline]
pub fn reader_tag_angle_trig(reader: &Point3, cos_phi: f64, sin_phi: f64, tag: &Point3) -> f64 {
    let delta = *tag - *reader;
    let d = delta.norm();
    if d < 1e-12 {
        return 0.0; // tag coincides with reader; treat as head-on
    }
    let cos_theta = (delta.x * cos_phi + delta.y * sin_phi) / d;
    cos_theta.clamp(-1.0, 1.0).acos()
}

/// Unit heading vector in the XY plane for angle `phi`.
#[inline]
pub fn heading_vec(phi: f64) -> Vec3 {
    Vec3::new(phi.cos(), phi.sin(), 0.0)
}

/// Converts degrees to radians.
#[inline]
pub fn deg(d: f64) -> f64 {
    d.to_radians()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_pi_range() {
        assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_pi(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_pi(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn angular_diff_is_shortest() {
        assert!((angular_diff(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
        assert!((angular_diff(PI / 2.0, -PI / 2.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn head_on_tag_has_zero_angle() {
        let r = Point3::origin();
        let tag = Point3::new(5.0, 0.0, 0.0);
        assert!(reader_tag_angle(&r, 0.0, &tag).abs() < 1e-12);
    }

    #[test]
    fn perpendicular_tag_has_right_angle() {
        let r = Point3::origin();
        let tag = Point3::new(0.0, 5.0, 0.0);
        assert!((reader_tag_angle(&r, 0.0, &tag) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn behind_tag_has_pi_angle() {
        let r = Point3::origin();
        let tag = Point3::new(-3.0, 0.0, 0.0);
        assert!((reader_tag_angle(&r, 0.0, &tag) - PI).abs() < 1e-12);
    }

    #[test]
    fn coincident_tag_is_head_on() {
        let r = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(reader_tag_angle(&r, 1.0, &r), 0.0);
    }

    #[test]
    fn elevated_tag_angle_uses_3d_distance() {
        // A tag straight ahead but above the reader: planar projection
        // shrinks cos(theta), so the angle is nonzero.
        let r = Point3::origin();
        let tag = Point3::new(1.0, 0.0, 1.0);
        let theta = reader_tag_angle(&r, 0.0, &tag);
        assert!((theta - PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn bearing_quadrants() {
        let o = Point3::origin();
        assert!((bearing_xy(&o, &Point3::new(1.0, 1.0, 0.0)) - PI / 4.0).abs() < 1e-12);
        assert!((bearing_xy(&o, &Point3::new(-1.0, 0.0, 0.0)) - PI).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_wrap_pi_in_range(a in -100.0..100.0f64) {
            let w = wrap_pi(a);
            prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }

        #[test]
        fn prop_wrap_pi_preserves_angle(a in -100.0..100.0f64) {
            let w = wrap_pi(a);
            // sin/cos must agree with the original angle
            prop_assert!((w.sin() - a.sin()).abs() < 1e-9);
            prop_assert!((w.cos() - a.cos()).abs() < 1e-9);
        }

        #[test]
        fn prop_reader_tag_angle_range(
            rx in -10.0..10.0f64, ry in -10.0..10.0f64,
            phi in -10.0..10.0f64,
            tx in -10.0..10.0f64, ty in -10.0..10.0f64, tz in -10.0..10.0f64) {
            let theta = reader_tag_angle(&Point3::new(rx, ry, 0.0), phi,
                                         &Point3::new(tx, ty, tz));
            prop_assert!((0.0..=PI + 1e-12).contains(&theta));
        }

        #[test]
        fn prop_angle_invariant_under_rotation(rot in -3.0..3.0f64, bearing in -3.0..3.0f64) {
            // Rotating both the heading and the tag by the same angle
            // leaves theta unchanged.
            let r = Point3::origin();
            let tag = Point3::new(4.0 * bearing.cos(), 4.0 * bearing.sin(), 0.0);
            let theta1 = reader_tag_angle(&r, 0.0, &tag);
            let tag2 = Point3::new(4.0 * (bearing + rot).cos(), 4.0 * (bearing + rot).sin(), 0.0);
            let theta2 = reader_tag_angle(&r, rot, &tag2);
            prop_assert!((theta1 - theta2).abs() < 1e-9);
        }
    }
}
