//! Learnable parameters of the data-generation model.
//!
//! §III-C lists them: the sensor coefficients `{a_c} ∪ {b_c}`, the
//! average reader velocity `Δ`, its variance `Σ_m`, and the mean `µ_s`
//! and variance `Σ_s` of the reader location sensing noise. The EM
//! calibration in `rfid-learn` estimates exactly this struct.

use rfid_geom::Vec3;

/// Coefficients of the logistic sensor model (Eq. 1):
///
/// `p(read | d, θ) = σ(a0 + a1·d + a2·d² + b1·θ + b2·θ²)`
///
/// where `σ` is the sigmoid. `a1, a2, b1, b2` are expected to be
/// negative (read rate decays with distance and angle) and `a0` positive
/// (near-field read rate close to one), but nothing enforces the sign —
/// the data decides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorParams {
    /// Distance coefficients `[a0, a1, a2]` (constant, linear, quadratic).
    pub a: [f64; 3],
    /// Angle coefficients `[b1, b2]` (linear, quadratic).
    pub b: [f64; 2],
}

impl SensorParams {
    /// A generic mid-range reader: ~4 ft forward range with a roughly
    /// conical fall-off (read rate drops past ~30° off boresight).
    /// Used as an EM starting point and by examples.
    pub fn default_cone_like() -> Self {
        Self {
            a: [6.0, -0.5, -0.35],
            b: [-1.0, -12.0],
        }
    }

    /// The linear predictor `u(d, θ)` before the sigmoid.
    #[inline]
    pub fn linear_predictor(&self, d: f64, theta: f64) -> f64 {
        self.a[0]
            + self.a[1] * d
            + self.a[2] * d * d
            + self.b[0] * theta
            + self.b[1] * theta * theta
    }

    /// The five coefficients as a flat array `[a0, a1, a2, b1, b2]` —
    /// the parameter vector the logistic-regression learner optimizes.
    #[inline]
    pub fn as_flat(&self) -> [f64; 5] {
        [self.a[0], self.a[1], self.a[2], self.b[0], self.b[1]]
    }

    /// Rebuilds from the flat layout of [`SensorParams::as_flat`].
    #[inline]
    pub fn from_flat(w: [f64; 5]) -> Self {
        Self {
            a: [w[0], w[1], w[2]],
            b: [w[3], w[4]],
        }
    }

    /// The feature vector `[1, d, d², θ, θ²]` paired with the flat
    /// coefficient layout.
    #[inline]
    pub fn features(d: f64, theta: f64) -> [f64; 5] {
        [1.0, d, d * d, theta, theta * theta]
    }
}

/// Reader motion parameters: `R_t = R_{t-1} + Δ + ε`, `ε ~ N(0, Σ_m)`
/// with diagonal `Σ_m` (the paper's choice). Heading evolves as a
/// random walk with standard deviation `heading_std` per epoch (zero for
/// a reader that never turns between scans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionParams {
    /// Average velocity per epoch, in feet.
    pub delta: Vec3,
    /// Per-axis standard deviation of the motion noise, in feet.
    pub sigma: Vec3,
    /// Std of the per-epoch heading random walk, in radians.
    pub heading_std: f64,
}

impl MotionParams {
    /// The paper's simulator default: 0.1 ft/epoch down the y axis with
    /// σ = .01 in x and y.
    pub fn default_warehouse() -> Self {
        Self {
            delta: Vec3::new(0.0, 0.1, 0.0),
            sigma: Vec3::new(0.01, 0.01, 0.0),
            heading_std: 0.0,
        }
    }
}

/// Reader location sensing parameters: `R̂_t = R_t + η`,
/// `η ~ N(µ_s, Σ_s)` with diagonal `Σ_s`. A nonzero `mu` models
/// systematic dead-reckoning drift (the robot in §V-C drifted up to a
/// foot). Heading reports get independent zero-mean noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingParams {
    /// Systematic bias of the reported location, in feet.
    pub mu: Vec3,
    /// Per-axis standard deviation of the report noise, in feet.
    pub sigma: Vec3,
    /// Std of the heading report noise, in radians.
    pub heading_std: f64,
}

impl SensingParams {
    /// The paper's simulator default: unbiased with σ = .01 in x and y.
    pub fn default_warehouse() -> Self {
        Self {
            mu: Vec3::zero(),
            sigma: Vec3::new(0.01, 0.01, 0.0),
            heading_std: 0.0,
        }
    }
}

/// Object dynamics: move with probability `alpha` per epoch, to a
/// uniform location over the shelf space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectParams {
    /// Per-epoch probability that an object relocates.
    pub alpha: f64,
}

impl ObjectParams {
    /// Warehouse objects essentially never move on their own; the
    /// default matches "stationary but can occasionally change".
    pub fn default_warehouse() -> Self {
        Self { alpha: 1e-4 }
    }
}

/// Every learnable parameter of the model, bundled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    pub sensor: SensorParams,
    pub motion: MotionParams,
    pub sensing: SensingParams,
    pub object: ObjectParams,
}

impl ModelParams {
    /// Paper-default warehouse parameterization.
    pub fn default_warehouse() -> Self {
        Self {
            sensor: SensorParams::default_cone_like(),
            motion: MotionParams::default_warehouse(),
            sensing: SensingParams::default_warehouse(),
            object: ObjectParams::default_warehouse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip() {
        let p = SensorParams {
            a: [1.0, -2.0, -0.3],
            b: [-0.7, -1.5],
        };
        assert_eq!(SensorParams::from_flat(p.as_flat()), p);
    }

    #[test]
    fn linear_predictor_matches_features_dot_flat() {
        let p = SensorParams::default_cone_like();
        let (d, th) = (2.5, 0.3);
        let f = SensorParams::features(d, th);
        let w = p.as_flat();
        let dot: f64 = f.iter().zip(w.iter()).map(|(x, y)| x * y).sum();
        assert!((p.linear_predictor(d, th) - dot).abs() < 1e-12);
    }

    #[test]
    fn defaults_have_expected_signs() {
        let p = SensorParams::default_cone_like();
        assert!(p.a[0] > 0.0);
        assert!(p.a[1] < 0.0 && p.a[2] < 0.0);
        assert!(p.b[0] < 0.0 && p.b[1] < 0.0);
        let m = MotionParams::default_warehouse();
        assert!(m.delta.y > 0.0);
        let o = ObjectParams::default_warehouse();
        assert!(o.alpha > 0.0 && o.alpha < 0.01);
    }
}
