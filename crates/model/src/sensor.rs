//! RFID sensor models: the learnable logistic model of Eq. 1 plus the
//! ground-truth generative shapes the simulator uses (cone, spherical).
//!
//! All models implement [`ReadRateModel`]: the probability of a
//! successful read given the reader pose and the tag location. The
//! logistic model is the one the system *infers with*; the cone and
//! spherical models are what the *world does* in the simulator and the
//! simulated lab deployment (Fig. 5(a) and 5(d)).

use crate::params::SensorParams;
use rfid_geom::{Point3, Pose};

/// Numerically-stable sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `ln(sigmoid(x))`, stable for large negative `x`.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

/// Anything that yields a read probability for a (reader pose, tag) pair.
// `Send + Sync` supertraits: sensor models are immutable model data
// shared by reference across the engine's worker threads.
pub trait ReadRateModel: Send + Sync {
    /// Probability of reading a tag at distance `d` (feet) and bearing
    /// angle `theta` (radians, `[0, π]`) from the reader.
    fn p_read_dt(&self, d: f64, theta: f64) -> f64;

    /// Probability of reading a tag at `tag` from pose `reader`.
    fn p_read(&self, reader: &Pose, tag: &Point3) -> f64 {
        let (d, th) = reader.range_bearing(tag);
        self.p_read_dt(d, th)
    }

    /// Log likelihood of a binary reading outcome at distance `d` and
    /// bearing `theta` — the `(d, θ)`-space core every pose-based
    /// likelihood reduces to, and the function the quantized
    /// [`table::LikelihoodTable`](crate::table::LikelihoodTable)
    /// memoizes. Default goes through `p_read_dt` (exact zeros/ones
    /// produce `-inf`, which is correct for hard-edged ground-truth
    /// models: a particle inconsistent with the observation is
    /// impossible); implementations with an analytic form override for
    /// numerical stability.
    fn log_likelihood_dt(&self, d: f64, theta: f64, read: bool) -> f64 {
        let p = self.p_read_dt(d, theta);
        if read {
            p.ln()
        } else {
            (1.0 - p).ln()
        }
    }

    /// Log likelihood of a binary reading outcome for a (reader pose,
    /// tag) pair: `range_bearing` then
    /// [`log_likelihood_dt`](Self::log_likelihood_dt).
    fn log_likelihood(&self, reader: &Pose, tag: &Point3, read: bool) -> f64 {
        self.log_likelihood_pose(&reader.pos, reader.phi.cos(), reader.phi.sin(), tag, read)
    }

    /// [`log_likelihood`](Self::log_likelihood) with the reader
    /// heading's cosine/sine precomputed. The pair is loop-invariant
    /// per reader particle, so the particle-filter weight pass hoists
    /// it out of the per-object-particle loop instead of paying
    /// `sin`/`cos` on every evaluation. The default reproduces the
    /// exact `range_bearing` arithmetic bit for bit; hard-edged models
    /// whose likelihood is piecewise constant in the bearing override
    /// it to skip the `acos` altogether.
    fn log_likelihood_pose(
        &self,
        pos: &Point3,
        cos_phi: f64,
        sin_phi: f64,
        tag: &Point3,
        read: bool,
    ) -> f64 {
        let d = pos.dist(tag);
        let th = rfid_geom::angles::reader_tag_angle_trig(pos, cos_phi, sin_phi, tag);
        self.log_likelihood_dt(d, th, read)
    }

    /// An overestimate of the detection range: the largest distance (at
    /// the most favorable angle) at which the read probability still
    /// exceeds `floor`. Used to size sensing-region bounding boxes and
    /// the particle-initialization cone.
    fn detection_range(&self, floor: f64) -> f64 {
        // Scan outward; read rates in this domain are monotone "enough"
        // in distance for a coarse scan + refinement to be reliable.
        let mut last_hit = 0.0f64;
        let mut d = 0.0f64;
        while d <= 60.0 {
            if self.p_read_dt(d, 0.0) >= floor {
                last_hit = d;
            }
            d += 0.25;
        }
        // Refine the boundary to ~0.01 ft.
        let mut lo = last_hit;
        let mut hi = last_hit + 0.25;
        for _ in 0..6 {
            let mid = 0.5 * (lo + hi);
            if self.p_read_dt(mid, 0.0) >= floor {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo.max(0.25)
    }
}

/// The flexible parametric sensor model of Eq. 1: logistic regression on
/// `[1, d, d², θ, θ²]`. The same model (and the same coefficients) is
/// used for object tags and shelf tags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticSensorModel {
    pub params: SensorParams,
}

impl LogisticSensorModel {
    /// Wraps a coefficient set.
    pub fn new(params: SensorParams) -> Self {
        Self { params }
    }

    /// Log probability of a read at `(d, θ)`.
    #[inline]
    pub fn log_p_read_dt(&self, d: f64, theta: f64) -> f64 {
        log_sigmoid(self.params.linear_predictor(d, theta))
    }

    /// Log probability of a miss at `(d, θ)`.
    #[inline]
    pub fn log_p_miss_dt(&self, d: f64, theta: f64) -> f64 {
        log_sigmoid(-self.params.linear_predictor(d, theta))
    }

    /// Likelihood (not log) of a binary reading outcome.
    #[inline]
    pub fn likelihood(&self, reader: &Pose, tag: &Point3, read: bool) -> f64 {
        self.log_likelihood(reader, tag, read).exp()
    }
}

impl ReadRateModel for LogisticSensorModel {
    #[inline]
    fn p_read_dt(&self, d: f64, theta: f64) -> f64 {
        sigmoid(self.params.linear_predictor(d, theta))
    }

    /// Stable override: works directly in log space, so extreme
    /// predictor values never round to exact 0/1 first. The pose-based
    /// `log_likelihood` default routes through this, keeping both
    /// entry points on the same arithmetic.
    #[inline]
    fn log_likelihood_dt(&self, d: f64, theta: f64, read: bool) -> f64 {
        if read {
            self.log_p_read_dt(d, theta)
        } else {
            self.log_p_miss_dt(d, theta)
        }
    }
}

/// The cone-shaped ground-truth model of the paper's simulator
/// (Fig. 5(a)): a major detection range (a cone of `major_half_angle`)
/// with uniform read rate `rr_major`, plus a minor range extending
/// `minor_extra_angle` beyond it where the rate decays linearly from
/// `rr_major` to zero. Beyond `max_range`, or behind the reader, the
/// rate is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeSensor {
    /// Read rate inside the major detection range (paper default 100%).
    rr_major: f64,
    /// Half-angle of the major cone, radians (paper: 15° half = 30° full).
    major_half_angle: f64,
    /// Additional angle of the minor range, radians (paper: 15°).
    minor_extra_angle: f64,
    /// Maximum detection distance, feet.
    max_range: f64,
    // Fast-path constants derived once in `new`: the cone test runs in
    // cosine space (no `acos`) and the piecewise-constant regions
    // return precomputed log likelihoods (no `ln`).
    cos_major: f64,
    /// `cos(major + minor)`, or `-2.0` when the outer angle reaches π
    /// (no "outside" region exists — every bearing is within the cone).
    cos_outer: f64,
    ln_read_major: f64,
    ln_miss_major: f64,
}

impl ConeSensor {
    /// Builds a cone sensor, precomputing the cosine-space thresholds
    /// and constant-region log likelihoods the hot path uses.
    pub fn new(
        rr_major: f64,
        major_half_angle: f64,
        minor_extra_angle: f64,
        max_range: f64,
    ) -> Self {
        let outer = major_half_angle + minor_extra_angle;
        Self {
            rr_major,
            major_half_angle,
            minor_extra_angle,
            max_range,
            cos_major: major_half_angle.cos(),
            cos_outer: if outer < std::f64::consts::PI {
                outer.cos()
            } else {
                -2.0
            },
            ln_read_major: rr_major.ln(),
            ln_miss_major: (1.0 - rr_major).ln(),
        }
    }

    /// The paper's simulator defaults: 30° major cone (15° half-angle),
    /// 15° additional minor range, RR_major = 100%, 4 ft range.
    pub fn paper_default() -> Self {
        Self::new(1.0, 15f64.to_radians(), 15f64.to_radians(), 4.0)
    }

    /// Same shape with a different major-range read rate (the Fig. 5(f)
    /// sweep varies RR_major from 100% down to 50%).
    pub fn with_rr_major(rr: f64) -> Self {
        Self::new(rr, 15f64.to_radians(), 15f64.to_radians(), 4.0)
    }

    /// Read rate inside the major detection range.
    pub fn rr_major(&self) -> f64 {
        self.rr_major
    }

    /// Maximum detection distance, feet.
    pub fn max_range(&self) -> f64 {
        self.max_range
    }
}

impl ReadRateModel for ConeSensor {
    fn p_read_dt(&self, d: f64, theta: f64) -> f64 {
        if d > self.max_range {
            return 0.0;
        }
        if theta <= self.major_half_angle {
            self.rr_major
        } else if theta <= self.major_half_angle + self.minor_extra_angle {
            // linear decay from rr_major to 0 across the minor range
            let f = (theta - self.major_half_angle) / self.minor_extra_angle;
            self.rr_major * (1.0 - f)
        } else {
            0.0
        }
    }

    /// Hot-path override: classifies the bearing in cosine space so the
    /// common regions (inside the major cone, fully outside) cost no
    /// `acos` and no `ln` — their log likelihoods are constants. Only
    /// the minor band, and a vanishing margin strip around the two
    /// boundaries, fall back to the exact `acos` path.
    ///
    /// Bit-exactness: for `θ` strictly inside a region, `cos θ`
    /// compared against the cached `cos(boundary)` decides identically
    /// to `acos(cos θ)` compared against the boundary angle — the two
    /// can only disagree within a few ulps of the boundary, and
    /// `MARGIN` (1e-9 in cosine space, ~10⁶× the true rounding window)
    /// routes that strip to the fallback, which computes the identical
    /// `acos`-based answer. The constants are the same `ln` the generic
    /// path would take of the same piecewise-constant probability.
    fn log_likelihood_pose(
        &self,
        pos: &Point3,
        cos_phi: f64,
        sin_phi: f64,
        tag: &Point3,
        read: bool,
    ) -> f64 {
        const MARGIN: f64 = 1e-9;
        let delta = *tag - *pos;
        let d = delta.norm();
        if d > self.max_range {
            // p = 0: ln(0) = -inf on a read, ln(1 - 0) = 0 on a miss
            return if read { f64::NEG_INFINITY } else { 0.0 };
        }
        // `d` is NaN-free here only if the inputs are; a NaN falls
        // through every comparison below into the exact fallback,
        // matching the generic path bit for bit.
        let c = if d < 1e-12 {
            1.0 // head-on by convention (θ = 0)
        } else {
            ((delta.x * cos_phi + delta.y * sin_phi) / d).clamp(-1.0, 1.0)
        };
        if c >= self.cos_major + MARGIN {
            return if read {
                self.ln_read_major
            } else {
                self.ln_miss_major
            };
        }
        if c <= self.cos_outer - MARGIN {
            return if read { f64::NEG_INFINITY } else { 0.0 };
        }
        // minor band or boundary strip: exact path
        self.log_likelihood_dt(d, c.acos(), read)
    }
}

/// The spherical ground-truth model matching the paper's lab antenna
/// (Fig. 5(d)): "read area is spherical with a wide minor range, whose
/// read rate is inversely related to an object's angle from the center
/// of the antenna". Read rate peaks at `rr_peak` head-on and decays
/// with angle (cosine-shaped) and with distance; `timeout_scale`
/// captures the reader-timeout setting of §V-C (larger timeout → higher
/// read rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphericalSensor {
    /// Peak read rate head-on at zero distance.
    pub rr_peak: f64,
    /// Maximum detection distance, feet.
    pub max_range: f64,
    /// Fraction of the peak rate still available at 90° off boresight.
    pub side_fraction: f64,
}

impl SphericalSensor {
    /// Lab antenna profile for a given reader timeout in milliseconds
    /// (the §V-C sweep used 250/500/750 ms). Longer timeouts give tags
    /// more chances to respond, raising the read rate.
    pub fn for_timeout_ms(timeout_ms: u32) -> Self {
        // Map 250..750 ms onto peak read rates ~0.70..0.92; the exact
        // values are a substitution for the ThingMagic hardware (see
        // DESIGN.md §5), chosen so that longer timeouts read more.
        let t = (timeout_ms as f64 / 1000.0).clamp(0.1, 1.0);
        Self {
            rr_peak: (0.55 + 0.5 * t).min(0.95),
            max_range: 3.0,
            side_fraction: 0.35,
        }
    }
}

impl ReadRateModel for SphericalSensor {
    fn p_read_dt(&self, d: f64, theta: f64) -> f64 {
        if d > self.max_range {
            return 0.0;
        }
        // distance roll-off: quadratic to zero at max_range
        let dr = 1.0 - (d / self.max_range) * (d / self.max_range);
        // angular roll-off: 1 at boresight, side_fraction at 90°, and a
        // hard cutoff shortly behind the boresight plane — a bistatic
        // antenna has no usable back lobe
        let c = theta.cos(); // 1 .. -1
        let ar = if c >= 0.0 {
            self.side_fraction + (1.0 - self.side_fraction) * c
        } else {
            self.side_fraction * (1.0 + 5.0 * c).max(0.0)
        };
        (self.rr_peak * dr * ar).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rfid_geom::Point3;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(30.0) > 0.999999);
        assert!(sigmoid(-30.0) < 1e-6);
        // stability at extremes
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn log_sigmoid_consistency() {
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            assert!((log_sigmoid(x) - sigmoid(x).ln()).abs() < 1e-10, "x={x}");
        }
        // no -inf for very negative arguments until truly underflowing
        assert!(log_sigmoid(-700.0).is_finite());
    }

    #[test]
    fn logistic_read_plus_miss_is_one() {
        let m = LogisticSensorModel::new(SensorParams::default_cone_like());
        for d in [0.0, 1.0, 3.0, 10.0] {
            for th in [0.0, 0.5, 1.5, 3.0] {
                let pr = m.p_read_dt(d, th);
                let pm = (m.log_p_miss_dt(d, th)).exp();
                assert!((pr + pm - 1.0).abs() < 1e-9, "d={d} th={th}");
            }
        }
    }

    #[test]
    fn logistic_decays_with_distance_and_angle() {
        let m = LogisticSensorModel::new(SensorParams::default_cone_like());
        assert!(m.p_read_dt(0.5, 0.0) > m.p_read_dt(3.0, 0.0));
        assert!(m.p_read_dt(3.0, 0.0) > m.p_read_dt(8.0, 0.0));
        assert!(m.p_read_dt(1.0, 0.1) > m.p_read_dt(1.0, 1.2));
    }

    #[test]
    fn logistic_pose_variant_matches_dt() {
        let m = LogisticSensorModel::new(SensorParams::default_cone_like());
        let pose = Pose::new(Point3::new(1.0, 2.0, 0.0), 0.7);
        let tag = Point3::new(3.0, 3.5, 0.0);
        let (d, th) = pose.range_bearing(&tag);
        assert!((m.p_read(&pose, &tag) - m.p_read_dt(d, th)).abs() < 1e-12);
        assert!((m.log_likelihood(&pose, &tag, true) - m.log_p_read_dt(d, th)).abs() < 1e-12);
    }

    #[test]
    fn cone_major_minor_zones() {
        let c = ConeSensor::paper_default();
        // inside major cone: full rate
        assert_eq!(c.p_read_dt(2.0, 10f64.to_radians()), 1.0);
        // middle of minor range: half rate
        let mid = 22.5f64.to_radians();
        assert!((c.p_read_dt(2.0, mid) - 0.5).abs() < 1e-9);
        // outside both: zero
        assert_eq!(c.p_read_dt(2.0, 40f64.to_radians()), 0.0);
        // beyond range: zero even head-on
        assert_eq!(c.p_read_dt(5.0, 0.0), 0.0);
    }

    #[test]
    fn cone_rr_major_scales_uniformly() {
        let c = ConeSensor::with_rr_major(0.6);
        assert!((c.p_read_dt(1.0, 0.0) - 0.6).abs() < 1e-12);
        let mid = 22.5f64.to_radians();
        assert!((c.p_read_dt(1.0, mid) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn spherical_reads_sideways_and_slightly_behind() {
        let s = SphericalSensor::for_timeout_ms(500);
        assert!(s.p_read_dt(1.0, 0.0) > s.p_read_dt(1.0, 1.2));
        // still nonzero at 90 degrees — the "wide minor range"
        assert!(s.p_read_dt(1.0, std::f64::consts::FRAC_PI_2) > 0.0);
        // fully behind: essentially zero
        assert!(s.p_read_dt(1.0, std::f64::consts::PI) < 1e-9);
    }

    #[test]
    fn spherical_timeout_orders_read_rates() {
        let lo = SphericalSensor::for_timeout_ms(250);
        let hi = SphericalSensor::for_timeout_ms(750);
        assert!(hi.p_read_dt(1.0, 0.3) > lo.p_read_dt(1.0, 0.3));
    }

    #[test]
    fn detection_range_logistic_reasonable() {
        let m = LogisticSensorModel::new(SensorParams::default_cone_like());
        let r = m.detection_range(0.01);
        assert!(r > 1.0 && r < 20.0, "range {r}");
        // tighter floor gives shorter range
        assert!(m.detection_range(0.5) < r);
    }

    #[test]
    fn detection_range_cone_is_max_range() {
        let c = ConeSensor::paper_default();
        let r = c.detection_range(0.01);
        assert!((r - 4.0).abs() < 0.3, "range {r}");
    }

    proptest! {
        #[test]
        fn prop_probabilities_in_unit_interval(
            d in 0.0..30.0f64, th in 0.0..std::f64::consts::PI) {
            let lm = LogisticSensorModel::new(SensorParams::default_cone_like());
            let cm = ConeSensor::paper_default();
            let sm = SphericalSensor::for_timeout_ms(500);
            for p in [lm.p_read_dt(d, th), cm.p_read_dt(d, th), sm.p_read_dt(d, th)] {
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }

        #[test]
        fn prop_logistic_monotone_decreasing_in_distance(
            d in 0.0..20.0f64, dd in 0.01..5.0f64, th in 0.0..1.5f64) {
            let lm = LogisticSensorModel::new(SensorParams::default_cone_like());
            prop_assert!(lm.p_read_dt(d, th) >= lm.p_read_dt(d + dd, th) - 1e-12);
        }

        #[test]
        fn prop_log_likelihood_finite_in_range(
            d in 0.0..50.0f64, th in 0.0..std::f64::consts::PI, read in any::<bool>()) {
            let lm = LogisticSensorModel::new(SensorParams::default_cone_like());
            let pose = Pose::identity();
            let tag = Point3::new(d * th.cos(), d * th.sin(), 0.0);
            let ll = lm.log_likelihood(&pose, &tag, read);
            prop_assert!(ll <= 0.0);
            prop_assert!(ll.is_finite() || !read, "read log-lik may underflow only far out");
        }

        /// The cone's cosine-space fast path must equal the generic
        /// `range_bearing` → `log_likelihood_dt` route *bit for bit* —
        /// including near the region boundaries (the sweep crosses
        /// both) and behind the reader.
        #[test]
        fn prop_cone_fast_path_is_bit_exact(
            x in -8.0..8.0f64, y in -8.0..8.0f64, z in -2.0..2.0f64,
            phi in -3.2..3.2f64, rr in 0.5..1.0f64, read in any::<bool>()) {
            let c = ConeSensor::with_rr_major(if rr > 0.95 { 1.0 } else { rr });
            let pose = Pose::new(Point3::new(0.3, -0.2, 0.1), phi);
            let tag = Point3::new(x, y, z);
            // the generic route the default trait method takes
            let (d, th) = pose.range_bearing(&tag);
            let generic = c.log_likelihood_dt(d, th, read);
            let fast = c.log_likelihood(&pose, &tag, read);
            prop_assert_eq!(generic.to_bits(), fast.to_bits(),
                "d={} th={} generic={} fast={}", d, th, generic, fast);
        }
    }
}
