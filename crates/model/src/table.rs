//! Quantized likelihood table: amortizing `exp()` across particles.
//!
//! Every sensor in this crate depends on the reader pose and tag
//! location only through the pair `(d, θ)` produced by
//! `Pose::range_bearing` — distance in feet and bearing in `[0, π]`.
//! [`LikelihoodTable`] exploits that: it tabulates
//! [`ReadRateModel::log_likelihood_dt`] over a uniform `(d, θ)` grid,
//! once, so the hot weight loop replaces two transcendental calls
//! (`exp` inside the sigmoid, `ln`/`ln_1p` on the way out) with a pair
//! of index computations and a load.
//!
//! The table is deliberately **not** keyed by reader or epoch: `(d, θ)`
//! already abstracts the reader pose away, so a single immutable table
//! serves every reader, every object, and every epoch — build it once
//! when inference starts and share it by reference across worker
//! threads (it is `Send + Sync` plain data).
//!
//! Accuracy: each cell stores the *exact* log-likelihood at the cell
//! center, so the lookup error is bounded by the model's Lipschitz
//! constants times half a cell: `|err| ≤ (L_d·d_step + L_θ·θ_step)/2`.
//! For the logistic model (Eq. 1) the log-sigmoid has derivative
//! magnitude < 1 in its argument, so `L_d ≤ |a1| + 2|a2|·d_max` and
//! `L_θ ≤ |b1| + 2|b2|·π` — a property the proptest below sweeps.
//! Hard-edged ground-truth models (cone, sphere) are *not* good table
//! candidates: the discontinuity at the cone boundary makes the
//! mid-cell value wrong by `±∞` for particles in the boundary cell,
//! which is why the engine leaves the table off by default and enables
//! it only for smooth (logistic) sensors.
//!
//! Distances at or beyond `d_max` fall outside the grid; [`lookup`]
//! (see [`LikelihoodTable::lookup`]) returns `None` there and the
//! caller falls back to the exact model. Choosing
//! `d_max ≥ detection_range` makes the fallback rare (far particles of
//! a *miss* observation, whose weight is ~0 anyway).

use crate::sensor::ReadRateModel;
use std::f64::consts::PI;

/// Immutable log-likelihood grid over `(distance, bearing)`, one value
/// per outcome (`read` / `miss`). Built once; lookups are pure.
#[derive(Debug, Clone)]
pub struct LikelihoodTable {
    d_max: f64,
    d_step: f64,
    theta_step: f64,
    inv_d_step: f64,
    inv_theta_step: f64,
    nd: usize,
    ntheta: usize,
    /// Row-major `[d_bin][theta_bin]`, outcome `read = true`.
    log_read: Vec<f64>,
    /// Row-major `[d_bin][theta_bin]`, outcome `read = false`.
    log_miss: Vec<f64>,
}

impl LikelihoodTable {
    /// Tabulates `model.log_likelihood_dt` over `d ∈ [0, d_max)` with
    /// bin width `d_step` and `θ ∈ [0, π]` with bin width `theta_step`.
    /// Cell values are the exact log-likelihood at the cell center.
    ///
    /// Panics if `d_max`, `d_step`, or `theta_step` is not positive and
    /// finite — validated config should make that unreachable.
    pub fn build<M: ReadRateModel + ?Sized>(
        model: &M,
        d_max: f64,
        d_step: f64,
        theta_step: f64,
    ) -> Self {
        assert!(
            d_max > 0.0 && d_max.is_finite(),
            "likelihood table d_max must be positive"
        );
        assert!(
            d_step > 0.0 && d_step.is_finite(),
            "likelihood table d_step must be positive"
        );
        assert!(
            theta_step > 0.0 && theta_step.is_finite(),
            "likelihood table theta_step must be positive"
        );
        let nd = ((d_max / d_step).ceil() as usize).max(1);
        let ntheta = ((PI / theta_step).ceil() as usize).max(1);
        let mut log_read = Vec::with_capacity(nd * ntheta);
        let mut log_miss = Vec::with_capacity(nd * ntheta);
        for di in 0..nd {
            let d = (di as f64 + 0.5) * d_step;
            for ti in 0..ntheta {
                // cap the last cell's center inside the valid bearing
                // domain [0, π]
                let th = ((ti as f64 + 0.5) * theta_step).min(PI);
                log_read.push(model.log_likelihood_dt(d, th, true));
                log_miss.push(model.log_likelihood_dt(d, th, false));
            }
        }
        Self {
            d_max,
            d_step,
            theta_step,
            inv_d_step: 1.0 / d_step,
            inv_theta_step: 1.0 / theta_step,
            nd,
            ntheta,
            log_read,
            log_miss,
        }
    }

    /// Quantized log-likelihood of outcome `read` at `(d, theta)`, or
    /// `None` when `d` falls outside the grid (caller evaluates the
    /// exact model there). `theta` is clamped into `[0, π]` the same
    /// way `range_bearing` guarantees it.
    #[inline]
    pub fn lookup(&self, d: f64, theta: f64, read: bool) -> Option<f64> {
        // negated comparison also routes NaN distances to the exact path
        if !(d >= 0.0 && d < self.d_max) {
            return None;
        }
        let di = ((d * self.inv_d_step) as usize).min(self.nd - 1);
        let ti = ((theta.max(0.0) * self.inv_theta_step) as usize).min(self.ntheta - 1);
        let idx = di * self.ntheta + ti;
        let cell = if read {
            self.log_read[idx]
        } else {
            self.log_miss[idx]
        };
        Some(cell)
    }

    /// Largest tabulated distance: lookups at `d ≥ d_max` return `None`.
    #[inline]
    pub fn d_max(&self) -> f64 {
        self.d_max
    }

    /// Distance bin width, feet.
    #[inline]
    pub fn d_step(&self) -> f64 {
        self.d_step
    }

    /// Bearing bin width, radians.
    #[inline]
    pub fn theta_step(&self) -> f64 {
        self.theta_step
    }

    /// Grid shape `(distance_bins, bearing_bins)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nd, self.ntheta)
    }

    /// Approximate heap footprint of the grid, in bytes.
    pub fn approx_bytes(&self) -> usize {
        (self.log_read.capacity() + self.log_miss.capacity()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SensorParams;
    use crate::sensor::LogisticSensorModel;
    use proptest::prelude::*;

    fn logistic() -> LogisticSensorModel {
        LogisticSensorModel::new(SensorParams::default_cone_like())
    }

    #[test]
    fn cell_centers_are_exact() {
        let m = logistic();
        let t = LikelihoodTable::build(&m, 8.0, 0.05, 0.02);
        for &(di, ti) in &[(0usize, 0usize), (20, 22), (159, 156)] {
            // centers computed exactly as the builder computes them
            let d = (di as f64 + 0.5) * 0.05;
            let th = ((ti as f64 + 0.5) * 0.02).min(PI);
            for read in [true, false] {
                let got = t.lookup(d, th, read).expect("in range");
                let exact = m.log_likelihood_dt(d, th, read);
                assert_eq!(
                    got.to_bits(),
                    exact.to_bits(),
                    "cell center must be the exact value (d={d}, th={th}, read={read})"
                );
            }
        }
    }

    #[test]
    fn out_of_range_distances_fall_back() {
        let t = LikelihoodTable::build(&logistic(), 8.0, 0.05, 0.02);
        assert!(t.lookup(8.0, 0.1, true).is_none());
        assert!(t.lookup(123.0, 0.1, false).is_none());
        assert!(t.lookup(f64::NAN, 0.1, true).is_none());
        assert!(t.lookup(7.999, 0.1, true).is_some());
        assert!(t.lookup(0.0, 0.0, true).is_some());
    }

    #[test]
    fn bearing_domain_edges_stay_in_grid() {
        let t = LikelihoodTable::build(&logistic(), 8.0, 0.05, 0.02);
        // θ = π lands exactly on the top edge; θ slightly past π (float
        // slop out of range_bearing) must clamp, not panic
        assert!(t.lookup(1.0, PI, true).is_some());
        assert!(t.lookup(1.0, PI + 1e-12, false).is_some());
        assert!(t.lookup(1.0, -1e-15, true).is_some());
    }

    proptest! {
        /// Sweeps bin widths and query points: the lookup error against
        /// the exact `exp()` path stays within the Lipschitz half-cell
        /// bound `(L_d·d_step + L_θ·θ_step)/2` documented above.
        #[test]
        fn quantization_error_is_bounded(
            d_step_i in 0usize..4,
            theta_step_i in 0usize..3,
            d in 0.0f64..8.0,
            theta in 0.0f64..PI,
            read in any::<bool>(),
        ) {
            let d_step = [0.01f64, 0.05, 0.1, 0.25][d_step_i];
            let theta_step = [0.005f64, 0.02, 0.1][theta_step_i];
            let m = logistic();
            let d_max = 8.0;
            let t = LikelihoodTable::build(&m, d_max, d_step, theta_step);
            let got = t.lookup(d, theta, read).expect("d < d_max");
            let exact = m.log_likelihood_dt(d, theta, read);
            // |d log σ / dx| < 1, so the (d, θ) Lipschitz constants are
            // those of the linear predictor u(d, θ)
            let p = SensorParams::default_cone_like();
            let l_d = p.a[1].abs() + 2.0 * p.a[2].abs() * d_max;
            let l_th = p.b[0].abs() + 2.0 * p.b[1].abs() * PI;
            let bound = 0.5 * (l_d * d_step + l_th * theta_step);
            prop_assert!(
                (got - exact).abs() <= bound * (1.0 + 1e-9) + 1e-12,
                "lookup {got} vs exact {exact}: err {} > bound {bound} \
                 (d={d}, θ={theta}, read={read}, steps=({d_step},{theta_step}))",
                (got - exact).abs()
            );
        }
    }
}
