//! The reader location sensing model of §III-A.
//!
//! Reported reader locations are noisy: `R̂_t = R_t + η` with
//! `η ~ N(µ_s, Σ_s)`. A nonzero mean captures systematic dead-reckoning
//! drift (wheel slippage, sideways inertia); the covariance captures
//! per-report jitter. "A more complex noise model is not necessary here,
//! because errors in the reader location can be corrected by information
//! from the static shelf tags."

use crate::params::SensingParams;
use rand::Rng;
use rfid_geom::{standard_normal, DiagGaussian3, Gaussian1, Pose};

/// Samples and scores reader-location observations.
#[derive(Debug, Clone, Copy)]
pub struct LocationSensingModel {
    params: SensingParams,
    noise: DiagGaussian3,
}

impl LocationSensingModel {
    /// Builds the model from its parameters.
    pub fn new(params: SensingParams) -> Self {
        Self {
            params,
            noise: DiagGaussian3::new(params.mu, params.sigma),
        }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &SensingParams {
        &self.params
    }

    /// Generates a noisy report `R̂_t` of the true pose.
    pub fn observe<R: Rng + ?Sized>(&self, truth: &Pose, rng: &mut R) -> Pose {
        let eta = self.noise.sample(rng);
        let dphi = if self.params.heading_std > 0.0 {
            self.params.heading_std * standard_normal(rng)
        } else {
            0.0
        };
        Pose::new(truth.pos + eta, truth.phi + dphi)
    }

    /// Log likelihood `log p(observed | truth)` — the reader-particle
    /// weight term `p(R̂_t | R_t)` of Eq. 5.
    ///
    /// Axes with zero sensing std contribute nothing (the report is
    /// taken at face value on those axes) rather than vetoing the
    /// particle: a point-mass observation model on an axis the motion
    /// model also pins would make every particle impossible. This
    /// matches how the paper's planar experiments ignore z.
    pub fn log_likelihood(&self, truth: &Pose, observed: &Pose) -> f64 {
        let d = observed.pos - truth.pos;
        let mut lp = 0.0;
        for (x, mu, s) in [
            (d.x, self.params.mu.x, self.params.sigma.x),
            (d.y, self.params.mu.y, self.params.sigma.y),
            (d.z, self.params.mu.z, self.params.sigma.z),
        ] {
            if s > 0.0 {
                lp += Gaussian1::new(mu, s).log_pdf(x);
            }
        }
        if self.params.heading_std > 0.0 {
            let dphi = rfid_geom::angles::wrap_pi(observed.phi - truth.phi);
            lp += Gaussian1::new(0.0, self.params.heading_std).log_pdf(dphi);
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::{Point3, Vec3};

    fn drifting() -> LocationSensingModel {
        LocationSensingModel::new(SensingParams {
            mu: Vec3::new(0.0, 0.5, 0.0), // systematic drift along y
            sigma: Vec3::new(0.05, 0.2, 0.0),
            heading_std: 0.0,
        })
    }

    #[test]
    fn observation_carries_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = drifting();
        let truth = Pose::identity();
        let n = 5000;
        let mut mean_y = 0.0;
        for _ in 0..n {
            mean_y += m.observe(&truth, &mut rng).pos.y;
        }
        mean_y /= n as f64;
        assert!((mean_y - 0.5).abs() < 0.02, "mean_y {mean_y}");
    }

    #[test]
    fn likelihood_peaks_at_bias_offset() {
        let m = drifting();
        let truth = Pose::identity();
        let at_bias = Pose::new(Point3::new(0.0, 0.5, 0.0), 0.0);
        let at_truth = Pose::new(Point3::origin(), 0.0);
        assert!(m.log_likelihood(&truth, &at_bias) > m.log_likelihood(&truth, &at_truth));
    }

    #[test]
    fn zero_sigma_axis_is_ignored_not_vetoed() {
        let m = drifting(); // sigma.z = 0
        let truth = Pose::identity();
        let shifted_z = Pose::new(Point3::new(0.0, 0.5, 3.0), 0.0);
        assert!(m.log_likelihood(&truth, &shifted_z).is_finite());
    }

    #[test]
    fn heading_noise_scored_when_enabled() {
        let m = LocationSensingModel::new(SensingParams {
            mu: Vec3::zero(),
            sigma: Vec3::new(0.1, 0.1, 0.0),
            heading_std: 0.05,
        });
        let truth = Pose::identity();
        let slight = Pose::new(Point3::origin(), 0.02);
        let large = Pose::new(Point3::origin(), 0.5);
        assert!(m.log_likelihood(&truth, &slight) > m.log_likelihood(&truth, &large));
    }

    #[test]
    fn symmetric_in_truth_and_observation_shift() {
        // p(obs | truth) depends only on obs - truth for this model.
        let m = drifting();
        let a = m.log_likelihood(
            &Pose::identity(),
            &Pose::new(Point3::new(0.1, 0.6, 0.0), 0.0),
        );
        let b = m.log_likelihood(
            &Pose::new(Point3::new(5.0, 5.0, 0.0), 0.0),
            &Pose::new(Point3::new(5.1, 5.6, 0.0), 0.0),
        );
        assert!((a - b).abs() < 1e-9);
    }
}
