//! The probabilistic data-generation model of §III.
//!
//! The world is a dynamic Bayesian network over hidden reader poses
//! `R_t`, hidden object locations `O_{t,i}`, observed (noisy) reader
//! location reports `R̂_t`, and binary tag readings `Ô_{t,i}` /
//! `Ŝ_{t,i}`. The joint factorizes as Eq. 2 of the paper:
//!
//! ```text
//! p(R, R̂, O, Ô | S) = p(R_1, O_1) Π_t p(R_t | R_{t-1}) p(R̂_t | R_t)
//!     × Π_{i∈O} p(O_{t,i} | O_{t-1,i}) p(Ô_{t,i} | R_t, O_{t,i})
//!     × Π_{i∈S} p(Ŝ_{t,i} | R_t, S_i)
//! ```
//!
//! The four components are:
//!
//! * [`sensor`] — the parametric RFID **sensor model** `p(Ô | d, θ)`
//!   (Eq. 1): logistic regression in distance and angle, the same model
//!   for object tags and shelf tags. Ground-truth generative sensor
//!   shapes used by the simulator (cone, spherical) also live here so
//!   learned models can be compared against them.
//! * [`motion`] — the **reader motion model**
//!   `R_t = R_{t-1} + Δ + ε`, `ε ~ N(0, Σ_m)`.
//! * [`sensing`] — the **reader location sensing model**
//!   `R̂_t = R_t + η`, `η ~ N(µ_s, Σ_s)` (dead-reckoning drift).
//! * [`object`] — the **object location model**: stationary objects that
//!   move with probability `α` per epoch to a uniform location over the
//!   shelf space (the [`object::LocationPrior`] abstraction).
//!
//! [`params::ModelParams`] aggregates every learnable parameter;
//! [`dbn::JointModel`] bundles the components and exposes the local
//! conditional log-densities the particle filter weights with.

pub mod dbn;
pub mod motion;
pub mod object;
pub mod params;
pub mod sensing;
pub mod sensor;
pub mod table;

pub use dbn::JointModel;
pub use motion::MotionModel;
pub use object::{LocationPrior, ObjectLocationModel};
pub use params::{ModelParams, SensorParams};
pub use sensing::LocationSensingModel;
pub use sensor::{ConeSensor, LogisticSensorModel, ReadRateModel, SphericalSensor};
pub use table::LikelihoodTable;
