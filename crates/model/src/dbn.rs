//! The joint dynamic Bayesian network (Eq. 2) assembled from its four
//! component models.
//!
//! [`JointModel`] is the object the inference engine and the EM learner
//! both consume: it exposes exactly the local conditional densities that
//! appear in the factorization, so the particle-filter weight update
//! (Eq. 5) and the EM expected log-likelihood are written against one
//! definition of the model.

use crate::motion::MotionModel;
use crate::object::ObjectLocationModel;
use crate::params::ModelParams;
use crate::sensing::LocationSensingModel;
use crate::sensor::{LogisticSensorModel, ReadRateModel};
use rfid_geom::{Point3, Pose};

/// The full generative model `p(R, R̂, O, Ô | S)` of Eq. 2.
///
/// Generic over the sensor model so that inference can run either with
/// the learnable logistic sensor (the system's normal mode) or with a
/// ground-truth sensor shape (the "True Sensor Model" curves of
/// Fig. 5(e)).
#[derive(Debug, Clone, Copy)]
pub struct JointModel<S = LogisticSensorModel> {
    pub sensor: S,
    pub motion: MotionModel,
    pub sensing: LocationSensingModel,
    pub object: ObjectLocationModel,
    params: ModelParams,
}

impl JointModel<LogisticSensorModel> {
    /// Assembles the joint model from a parameter bundle.
    pub fn new(params: ModelParams) -> Self {
        Self {
            sensor: LogisticSensorModel::new(params.sensor),
            motion: MotionModel::new(params.motion),
            sensing: LocationSensingModel::new(params.sensing),
            object: ObjectLocationModel::new(params.object),
            params,
        }
    }
}

impl<S: ReadRateModel> JointModel<S> {
    /// Assembles a joint model around an arbitrary sensor shape (e.g.
    /// the simulator's true cone). The `params.sensor` field is kept
    /// for bookkeeping but the supplied `sensor` is what inference
    /// weights with.
    pub fn with_sensor(sensor: S, params: ModelParams) -> Self {
        Self {
            sensor,
            motion: MotionModel::new(params.motion),
            sensing: LocationSensingModel::new(params.sensing),
            object: ObjectLocationModel::new(params.object),
            params,
        }
    }

    /// The parameter bundle this model was built from.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Reader-particle incremental log weight (the `w_rt` term of
    /// Eq. 5): location-report likelihood plus the shelf-tag reading
    /// likelihoods. `shelf_obs` pairs each *known* shelf-tag location
    /// with whether it was read this epoch.
    pub fn reader_log_weight<'a, I>(
        &self,
        hypothesis: &Pose,
        reported: Option<&Pose>,
        shelf_obs: I,
    ) -> f64
    where
        I: IntoIterator<Item = (&'a Point3, bool)>,
    {
        let mut lw = match reported {
            Some(r) => self.sensing.log_likelihood(hypothesis, r),
            None => 0.0,
        };
        for (loc, read) in shelf_obs {
            lw += self.sensor.log_likelihood(hypothesis, loc, read);
        }
        lw
    }

    /// Object-particle incremental log weight (the `w_ti` term of
    /// Eq. 5): the sensor likelihood of the observed reading outcome
    /// given the hypothesized reader pose and object location.
    #[inline]
    pub fn object_log_weight(&self, reader: &Pose, object: &Point3, read: bool) -> f64 {
        self.sensor.log_likelihood(reader, object, read)
    }

    /// [`object_log_weight`](Self::object_log_weight) with the reader
    /// heading's cosine/sine hoisted (see
    /// [`ReadRateModel::log_likelihood_pose`]); bit-identical.
    #[inline]
    pub fn object_log_weight_pose(
        &self,
        pos: &Point3,
        cos_phi: f64,
        sin_phi: f64,
        object: &Point3,
        read: bool,
    ) -> f64 {
        self.sensor
            .log_likelihood_pose(pos, cos_phi, sin_phi, object, read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelParams;
    use rfid_geom::Point3;

    fn model() -> JointModel {
        JointModel::new(ModelParams::default_warehouse())
    }

    #[test]
    fn reader_weight_prefers_consistent_pose() {
        let m = model();
        let truth = Pose::new(Point3::new(0.0, 5.0, 0.0), 0.0);
        let report = truth; // unbiased sensing, honest report
        let good = truth;
        let bad = Pose::new(Point3::new(0.0, 8.0, 0.0), 0.0);
        let w_good = m.reader_log_weight(&good, Some(&report), std::iter::empty());
        let w_bad = m.reader_log_weight(&bad, Some(&report), std::iter::empty());
        assert!(w_good > w_bad);
    }

    #[test]
    fn shelf_tag_evidence_disambiguates_pose() {
        // Fig. 2(c): a reader-pose sample near an observed shelf tag
        // gets more weight than one far from it, even with no location
        // report at all.
        let m = model();
        let shelf = Point3::new(1.0, 5.0, 0.0);
        let near = Pose::new(Point3::new(0.0, 5.0, 0.0), 0.0);
        let far = Pose::new(Point3::new(0.0, 25.0, 0.0), 0.0);
        let w_near = m.reader_log_weight(&near, None, [(&shelf, true)]);
        let w_far = m.reader_log_weight(&far, None, [(&shelf, true)]);
        assert!(w_near > w_far);
    }

    #[test]
    fn missed_shelf_tag_penalizes_close_pose() {
        // Conversely, claiming to be right next to a shelf tag that was
        // NOT read costs weight relative to being far from it.
        let m = model();
        let shelf = Point3::new(1.0, 5.0, 0.0);
        let near = Pose::new(Point3::new(0.0, 5.0, 0.0), 0.0);
        let far = Pose::new(Point3::new(0.0, 25.0, 0.0), 0.0);
        let w_near = m.reader_log_weight(&near, None, [(&shelf, false)]);
        let w_far = m.reader_log_weight(&far, None, [(&shelf, false)]);
        assert!(w_far > w_near);
    }

    #[test]
    fn object_weight_prefers_in_range_location_on_read() {
        let m = model();
        let reader = Pose::identity();
        let close = Point3::new(1.0, 0.0, 0.0);
        let far = Point3::new(20.0, 0.0, 0.0);
        assert!(
            m.object_log_weight(&reader, &close, true) > m.object_log_weight(&reader, &far, true)
        );
        // and the reverse for a miss
        assert!(
            m.object_log_weight(&reader, &far, false) > m.object_log_weight(&reader, &close, false)
        );
    }

    #[test]
    fn weights_compose_additively() {
        // The reader weight with a location report and two shelf tags
        // equals the sum of the individual terms (Eq. 5 factorization).
        let m = model();
        let h = Pose::new(Point3::new(0.0, 5.0, 0.0), 0.0);
        let rep = Pose::new(Point3::new(0.01, 5.01, 0.0), 0.0);
        let s1 = Point3::new(1.0, 5.0, 0.0);
        let s2 = Point3::new(1.0, 6.0, 0.0);
        let total = m.reader_log_weight(&h, Some(&rep), [(&s1, true), (&s2, false)]);
        let parts = m.sensing.log_likelihood(&h, &rep)
            + m.sensor.log_likelihood(&h, &s1, true)
            + m.sensor.log_likelihood(&h, &s2, false);
        assert!((total - parts).abs() < 1e-12);
    }
}
