//! The reader motion model of §III-A.
//!
//! "The new location is the old location plus a noisy version of the
//! average velocity": `R_t = R_{t-1} + Δ + ε`, with `ε ~ N(0, Σ_m)`
//! diagonal. The heading is a random walk with per-epoch std
//! `heading_std` (zero for readers that move in a straight line within
//! a scan). The particle filter uses this model as its proposal
//! distribution for reader particles.

use crate::params::MotionParams;
use rand::Rng;
use rfid_geom::{standard_normal, DiagGaussian3, Gaussian1, Pose};

/// Samples and scores reader-pose transitions.
#[derive(Debug, Clone, Copy)]
pub struct MotionModel {
    params: MotionParams,
    noise: DiagGaussian3,
}

impl MotionModel {
    /// Builds the model from its parameters.
    pub fn new(params: MotionParams) -> Self {
        Self {
            params,
            noise: DiagGaussian3::new(params.delta, params.sigma),
        }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &MotionParams {
        &self.params
    }

    /// Samples `R_t` given `R_{t-1}`.
    pub fn sample_next<R: Rng + ?Sized>(&self, prev: &Pose, rng: &mut R) -> Pose {
        let step = self.noise.sample(rng);
        let dphi = if self.params.heading_std > 0.0 {
            self.params.heading_std * standard_normal(rng)
        } else {
            0.0
        };
        Pose::new(prev.pos + step, prev.phi + dphi)
    }

    /// Log density `log p(next | prev)`.
    ///
    /// Axes with zero motion std are point masses (see
    /// [`DiagGaussian3::log_pdf`]); a zero `heading_std` likewise pins
    /// the heading.
    pub fn log_pdf(&self, prev: &Pose, next: &Pose) -> f64 {
        let dp = next.pos - prev.pos;
        let mut lp = self.noise.log_pdf(&dp);
        let dphi = rfid_geom::angles::wrap_pi(next.phi - prev.phi);
        if self.params.heading_std > 0.0 {
            lp += Gaussian1::new(0.0, self.params.heading_std).log_pdf(dphi);
        } else if dphi.abs() > 1e-9 {
            return f64::NEG_INFINITY;
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::{Point3, Vec3};

    fn model() -> MotionModel {
        MotionModel::new(MotionParams {
            delta: Vec3::new(0.0, 0.1, 0.0),
            sigma: Vec3::new(0.01, 0.01, 0.0),
            heading_std: 0.0,
        })
    }

    #[test]
    fn samples_drift_along_delta() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = model();
        let start = Pose::identity();
        let mut pose = start;
        let steps = 1000;
        for _ in 0..steps {
            pose = m.sample_next(&pose, &mut rng);
        }
        // expected displacement = steps * delta
        assert!((pose.pos.y - 100.0 * 0.1 * (steps / 100) as f64).abs() < 2.0);
        assert!(pose.pos.x.abs() < 2.0);
        assert_eq!(pose.pos.z, 0.0); // zero std in z
        assert_eq!(pose.phi, 0.0); // zero heading_std
    }

    #[test]
    fn log_pdf_peaks_at_expected_step() {
        let m = model();
        let prev = Pose::identity();
        let expected = Pose::new(Point3::new(0.0, 0.1, 0.0), 0.0);
        let off = Pose::new(Point3::new(0.0, 0.2, 0.0), 0.0);
        assert!(m.log_pdf(&prev, &expected) > m.log_pdf(&prev, &off));
    }

    #[test]
    fn heading_change_impossible_with_zero_std() {
        let m = model();
        let prev = Pose::identity();
        let turned = Pose::new(Point3::new(0.0, 0.1, 0.0), 0.3);
        assert_eq!(m.log_pdf(&prev, &turned), f64::NEG_INFINITY);
    }

    #[test]
    fn heading_walk_scored_when_enabled() {
        let m = MotionModel::new(MotionParams {
            delta: Vec3::zero(),
            sigma: Vec3::new(0.1, 0.1, 0.0),
            heading_std: 0.1,
        });
        let prev = Pose::identity();
        let small_turn = Pose::new(Point3::origin(), 0.05);
        let big_turn = Pose::new(Point3::origin(), 0.5);
        assert!(m.log_pdf(&prev, &small_turn) > m.log_pdf(&prev, &big_turn));
        assert!(m.log_pdf(&prev, &big_turn).is_finite());
    }

    #[test]
    fn sample_log_pdf_agreement() {
        // Samples from the model should score finitely under it.
        let mut rng = StdRng::seed_from_u64(2);
        let m = model();
        let prev = Pose::identity();
        for _ in 0..100 {
            let next = m.sample_next(&prev, &mut rng);
            assert!(m.log_pdf(&prev, &next).is_finite());
        }
    }
}
