//! The object location model of §III-A.
//!
//! Warehouse objects are stationary but occasionally relocate: with
//! probability `α` per epoch an object moves, and "the new location is
//! distributed uniformly across all shelves". The model deliberately
//! carries no information about *where* the object went — the particle
//! filter recovers the new location from subsequent readings.
//!
//! The "uniform across all shelves" distribution depends on the shelf
//! geometry, which lives in the simulator crate; the [`LocationPrior`]
//! trait decouples the two.

use crate::params::ObjectParams;
use rand::Rng;
use rfid_geom::{Aabb, Point3};

/// A distribution over legal object locations (in practice: uniform over
/// the union of shelf surfaces). Implemented by the warehouse layout.
// `Send + Sync` supertraits: priors are immutable model data shared by
// reference across the engine's worker threads (`rfid_core::exec`).
pub trait LocationPrior: Send + Sync {
    /// Draws a location uniformly over the legal space.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point3;

    /// Density of the uniform prior at `p` (0 outside the legal space).
    fn pdf(&self, p: &Point3) -> f64;

    /// True when `p` is a legal object location.
    fn contains(&self, p: &Point3) -> bool {
        self.pdf(p) > 0.0
    }

    /// Bounding box of the legal space.
    fn bounds(&self) -> Aabb;
}

/// A trivially simple prior: uniform over one box. Useful for tests and
/// as the "imagined shelf" of the lab evaluation (§V-C restricts
/// location sampling to a small or large imagined shelf area).
#[derive(Debug, Clone, Copy)]
pub struct BoxPrior {
    bbox: Aabb,
}

impl BoxPrior {
    /// Uniform prior over `bbox`.
    pub fn new(bbox: Aabb) -> Self {
        Self { bbox }
    }
}

impl LocationPrior for BoxPrior {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point3 {
        let b = &self.bbox;
        Point3::new(
            if b.max.x > b.min.x {
                rng.gen_range(b.min.x..=b.max.x)
            } else {
                b.min.x
            },
            if b.max.y > b.min.y {
                rng.gen_range(b.min.y..=b.max.y)
            } else {
                b.min.y
            },
            if b.max.z > b.min.z {
                rng.gen_range(b.min.z..=b.max.z)
            } else {
                b.min.z
            },
        )
    }

    fn pdf(&self, p: &Point3) -> f64 {
        if !self.bbox.contains(p) {
            return 0.0;
        }
        let area = self.bbox.area_xy().max(1e-12);
        let dz = self.bbox.max.z - self.bbox.min.z;
        if dz > 0.0 {
            1.0 / (area * dz)
        } else {
            1.0 / area
        }
    }

    fn bounds(&self) -> Aabb {
        self.bbox
    }
}

/// Uniform prior over a union of boxes (e.g. the two shelf rows of the
/// lab deployment): sampling picks a box with probability proportional
/// to its XY area, then a uniform point inside it.
#[derive(Debug, Clone)]
pub struct MultiBoxPrior {
    boxes: Vec<Aabb>,
    total_area: f64,
}

impl MultiBoxPrior {
    /// Builds the prior; panics on an empty box list.
    pub fn new(boxes: Vec<Aabb>) -> Self {
        assert!(!boxes.is_empty(), "MultiBoxPrior needs at least one box");
        let total_area = boxes.iter().map(|b| b.area_xy().max(1e-12)).sum();
        Self { boxes, total_area }
    }

    /// The component boxes.
    pub fn boxes(&self) -> &[Aabb] {
        &self.boxes
    }
}

impl LocationPrior for MultiBoxPrior {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point3 {
        let mut pick = rng.gen_range(0.0..self.total_area);
        for b in &self.boxes {
            let a = b.area_xy().max(1e-12);
            if pick <= a {
                return BoxPrior::new(*b).sample(rng);
            }
            pick -= a;
        }
        BoxPrior::new(*self.boxes.last().expect("non-empty")).sample(rng)
    }

    fn pdf(&self, p: &Point3) -> f64 {
        for b in &self.boxes {
            if b.contains(p) {
                return 1.0 / self.total_area;
            }
        }
        0.0
    }

    fn bounds(&self) -> Aabb {
        let mut out = Aabb::empty();
        for b in &self.boxes {
            out = out.union(b);
        }
        out
    }
}

/// Samples and scores object-location transitions
/// `p(O_{t,i} | O_{t-1,i})`.
#[derive(Debug, Clone, Copy)]
pub struct ObjectLocationModel {
    params: ObjectParams,
}

impl ObjectLocationModel {
    /// Builds the model from its parameters.
    pub fn new(params: ObjectParams) -> Self {
        Self { params }
    }

    /// The per-epoch relocation probability `α`.
    pub fn alpha(&self) -> f64 {
        self.params.alpha
    }

    /// Samples `O_t` given `O_{t-1}`: stays put with probability
    /// `1 - α`, otherwise relocates uniformly under `prior`.
    pub fn sample_next<P: LocationPrior + ?Sized, R: Rng + ?Sized>(
        &self,
        prev: &Point3,
        prior: &P,
        rng: &mut R,
    ) -> Point3 {
        if rng.gen::<f64>() < self.params.alpha {
            prior.sample(rng)
        } else {
            *prev
        }
    }

    /// Density of the transition kernel. The kernel is a mixture of a
    /// point mass at `prev` (weight `1-α`) and the uniform prior
    /// (weight `α`); for the mixture's continuous part the density is
    /// `α * prior.pdf(next)`, and staying exactly in place has
    /// probability mass `1 - α` (returned when `next == prev` within
    /// 1e-12 ft).
    pub fn transition_density<P: LocationPrior + ?Sized>(
        &self,
        prev: &Point3,
        next: &Point3,
        prior: &P,
    ) -> f64 {
        if prev.dist(next) < 1e-12 {
            (1.0 - self.params.alpha) + self.params.alpha * prior.pdf(next)
        } else {
            self.params.alpha * prior.pdf(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.0, 4.0, 0.0),
        ))
    }

    #[test]
    fn box_prior_samples_inside() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = prior();
        for _ in 0..1000 {
            let s = p.sample(&mut rng);
            assert!(p.contains(&s), "sample outside: {s:?}");
            assert_eq!(s.z, 0.0);
        }
    }

    #[test]
    fn box_prior_pdf_uniform() {
        let p = prior();
        let inside = Point3::new(5.0, 2.0, 0.0);
        let outside = Point3::new(-1.0, 2.0, 0.0);
        assert!((p.pdf(&inside) - 1.0 / 40.0).abs() < 1e-12);
        assert_eq!(p.pdf(&outside), 0.0);
    }

    #[test]
    fn stationary_object_mostly_stays() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = ObjectLocationModel::new(ObjectParams { alpha: 0.01 });
        let p = prior();
        let start = Point3::new(5.0, 2.0, 0.0);
        let n = 10_000;
        let moved = (0..n)
            .filter(|_| m.sample_next(&start, &p, &mut rng).dist(&start) > 1e-12)
            .count();
        let frac = moved as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.005, "moved fraction {frac}");
    }

    #[test]
    fn alpha_one_always_relocates_uniformly() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = ObjectLocationModel::new(ObjectParams { alpha: 1.0 });
        let p = prior();
        let start = Point3::new(5.0, 2.0, 0.0);
        let mut mean_x = 0.0;
        let n = 5000;
        for _ in 0..n {
            mean_x += m.sample_next(&start, &p, &mut rng).x;
        }
        mean_x /= n as f64;
        assert!((mean_x - 5.0).abs() < 0.2, "mean_x {mean_x}");
    }

    #[test]
    fn multibox_samples_cover_both_boxes() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 10.0, 0.0));
        let b = Aabb::new(Point3::new(-2.0, 0.0, 0.0), Point3::new(-1.0, 10.0, 0.0));
        let p = MultiBoxPrior::new(vec![a, b]);
        let mut left = 0;
        let mut right = 0;
        for _ in 0..2000 {
            let s = p.sample(&mut rng);
            assert!(p.contains(&s), "off-prior sample {s:?}");
            if s.x > 0.0 {
                right += 1;
            } else {
                left += 1;
            }
        }
        // equal-area boxes: roughly half each
        assert!(left > 800 && right > 800, "left {left} right {right}");
    }

    #[test]
    fn multibox_pdf_uniform_and_zero_outside() {
        let a = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::new(2.0, 10.0, 0.0));
        let b = Aabb::new(Point3::new(-2.0, 0.0, 0.0), Point3::new(-1.0, 10.0, 0.0));
        let p = MultiBoxPrior::new(vec![a, b]);
        let inside_a = Point3::new(1.5, 5.0, 0.0);
        let inside_b = Point3::new(-1.5, 5.0, 0.0);
        let outside = Point3::new(0.0, 5.0, 0.0);
        assert!((p.pdf(&inside_a) - 1.0 / 20.0).abs() < 1e-12);
        assert_eq!(p.pdf(&inside_a), p.pdf(&inside_b));
        assert_eq!(p.pdf(&outside), 0.0);
        assert!(p.bounds().contains(&outside)); // bounds is the hull
    }

    #[test]
    fn transition_density_mixture() {
        let m = ObjectLocationModel::new(ObjectParams { alpha: 0.2 });
        let p = prior();
        let here = Point3::new(5.0, 2.0, 0.0);
        let there = Point3::new(1.0, 1.0, 0.0);
        let stay = m.transition_density(&here, &here, &p);
        let go = m.transition_density(&here, &there, &p);
        assert!((stay - (0.8 + 0.2 / 40.0)).abs() < 1e-12);
        assert!((go - 0.2 / 40.0).abs() < 1e-12);
        // moving outside the legal space is impossible
        assert_eq!(
            m.transition_density(&here, &Point3::new(-5.0, 0.0, 0.0), &p),
            0.0
        );
    }
}
