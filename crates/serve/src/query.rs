//! The query API and its wire form.
//!
//! Four query kinds cover the paper's serving questions — where is
//! object X now, what trail did it take, what was the full picture at
//! epoch E, and what is inside this shelf region:
//!
//! * [`Query::CurrentLocation`] — latest known location of one tag;
//! * [`Query::Trail`] — a tag's retained events over an epoch range;
//! * [`Query::SnapshotAt`] — the latest-location relation as known
//!   when an epoch completed;
//! * [`Query::Containment`] — the snapshot filtered to an XY region.
//!
//! ## Wire grammar
//!
//! The TCP protocol is length-prefixed text: every frame is a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 (no
//! serde is available offline, and text keeps the protocol inspectable
//! with three lines of any language). Requests are a single line:
//!
//! ```text
//! request     = current | trail | snapshot | contain
//! current     = "CURRENT"  SP tag
//! trail       = "TRAIL"    SP tag SP from-epoch SP to-epoch
//! snapshot    = "SNAPSHOT" SP epoch
//! contain     = "CONTAIN"  SP x0 SP y0 SP x1 SP y1 SP epoch
//! tag, epoch  = u64 decimal
//! x0..y1      = f64 decimal (Rust round-trip formatting)
//! ```
//!
//! Responses are `"OK" SP row-count` followed by one
//! `tag SP epoch SP x SP y SP z` line per row, or `"ERR" SP message`.
//! Floats are formatted with Rust's shortest round-trip `Display`, so
//! a parsed response reproduces the server's `f64`s **bit-for-bit** —
//! the bit-identical-to-sinks contract survives the wire.

use crate::store::{EventStore, LocationRow, StoreError};
use rfid_geom::Point3;
use rfid_stream::{Epoch, TagId};

/// One query against the event store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Latest known location of a tag (0 or 1 row).
    CurrentLocation(TagId),
    /// A tag's retained events with event epoch in `[from, to]`.
    Trail { tag: TagId, from: Epoch, to: Epoch },
    /// The latest-location relation as known when `epoch` completed.
    SnapshotAt(Epoch),
    /// Snapshot rows inside the XY region `[x0, x1] × [y0, y1]`.
    Containment {
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        epoch: Epoch,
    },
}

impl Query {
    /// The request line (without the length prefix).
    pub fn encode(&self) -> String {
        match self {
            Query::CurrentLocation(tag) => format!("CURRENT {}", tag.0),
            Query::Trail { tag, from, to } => format!("TRAIL {} {} {}", tag.0, from.0, to.0),
            Query::SnapshotAt(epoch) => format!("SNAPSHOT {}", epoch.0),
            Query::Containment {
                x0,
                y0,
                x1,
                y1,
                epoch,
            } => format!("CONTAIN {x0} {y0} {x1} {y1} {}", epoch.0),
        }
    }

    /// Parses a request line.
    pub fn parse(line: &str) -> Result<Query, String> {
        let mut parts = line.split_ascii_whitespace();
        let op = parts.next().ok_or_else(|| "empty request".to_string())?;
        let mut u64s = |n: usize| -> Result<Vec<u64>, String> {
            (0..n)
                .map(|i| {
                    parts
                        .next()
                        .ok_or_else(|| format!("{op}: missing argument {}", i + 1))?
                        .parse::<u64>()
                        .map_err(|e| format!("{op}: bad integer: {e}"))
                })
                .collect()
        };
        let q = match op {
            "CURRENT" => Query::CurrentLocation(TagId(u64s(1)?[0])),
            "TRAIL" => {
                let v = u64s(3)?;
                Query::Trail {
                    tag: TagId(v[0]),
                    from: Epoch(v[1]),
                    to: Epoch(v[2]),
                }
            }
            "SNAPSHOT" => Query::SnapshotAt(Epoch(u64s(1)?[0])),
            "CONTAIN" => {
                let mut f64s = |name: &str| -> Result<f64, String> {
                    parts
                        .next()
                        .ok_or_else(|| format!("CONTAIN: missing {name}"))?
                        .parse::<f64>()
                        .map_err(|e| format!("CONTAIN: bad float {name}: {e}"))
                };
                let (x0, y0, x1, y1) = (f64s("x0")?, f64s("y0")?, f64s("x1")?, f64s("y1")?);
                let epoch = parts
                    .next()
                    .ok_or_else(|| "CONTAIN: missing epoch".to_string())?
                    .parse::<u64>()
                    .map_err(|e| format!("CONTAIN: bad epoch: {e}"))?;
                Query::Containment {
                    x0,
                    y0,
                    x1,
                    y1,
                    epoch: Epoch(epoch),
                }
            }
            other => return Err(format!("unknown request {other:?}")),
        };
        if parts.next().is_some() {
            return Err(format!("{op}: trailing arguments"));
        }
        Ok(q)
    }
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Matched rows (possibly empty), sorted as the store answers
    /// them: snapshot/containment by tag, trail in arrival order.
    Rows(Vec<LocationRow>),
    /// The query could not be answered.
    Error(String),
}

impl QueryResponse {
    /// The response payload (without the length prefix).
    pub fn encode(&self) -> String {
        match self {
            QueryResponse::Rows(rows) => {
                let mut s = format!("OK {}", rows.len());
                for r in rows {
                    s.push('\n');
                    // `{}` on f64 is the shortest string that parses
                    // back to the same bits — exact over the wire
                    s.push_str(&format!(
                        "{} {} {} {} {}",
                        r.tag.0, r.epoch.0, r.location.x, r.location.y, r.location.z
                    ));
                }
                s
            }
            QueryResponse::Error(msg) => format!("ERR {}", msg.replace('\n', " ")),
        }
    }

    /// Parses a response payload.
    pub fn parse(payload: &str) -> Result<QueryResponse, String> {
        let mut lines = payload.lines();
        let head = lines.next().ok_or_else(|| "empty response".to_string())?;
        if let Some(msg) = head.strip_prefix("ERR ") {
            return Ok(QueryResponse::Error(msg.to_string()));
        }
        let n: usize = head
            .strip_prefix("OK ")
            .ok_or_else(|| format!("bad response head {head:?}"))?
            .parse()
            .map_err(|e| format!("bad row count: {e}"))?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| "truncated response".to_string())?;
            let mut p = line.split_ascii_whitespace();
            let mut next = || p.next().ok_or_else(|| format!("short row {line:?}"));
            let tag: u64 = next()?.parse().map_err(|e| format!("bad tag: {e}"))?;
            let epoch: u64 = next()?.parse().map_err(|e| format!("bad epoch: {e}"))?;
            let x: f64 = next()?.parse().map_err(|e| format!("bad x: {e}"))?;
            let y: f64 = next()?.parse().map_err(|e| format!("bad y: {e}"))?;
            let z: f64 = next()?.parse().map_err(|e| format!("bad z: {e}"))?;
            rows.push(LocationRow {
                tag: TagId(tag),
                epoch: Epoch(epoch),
                location: Point3::new(x, y, z),
            });
        }
        if lines.next().is_some() {
            return Err("trailing response lines".to_string());
        }
        Ok(QueryResponse::Rows(rows))
    }
}

/// Answers a query against a store — the single evaluation path shared
/// by the TCP server and in-process callers.
pub fn answer(store: &EventStore, query: &Query) -> QueryResponse {
    let result = match *query {
        Query::CurrentLocation(tag) => Ok(store.current_location(tag).into_iter().collect()),
        Query::Trail { tag, from, to } => Ok(store
            .trail(tag, from, to)
            .into_iter()
            .map(|s| LocationRow {
                tag: s.event.tag,
                epoch: s.event.epoch,
                location: s.event.location,
            })
            .collect()),
        Query::SnapshotAt(epoch) => store.snapshot_at(epoch),
        Query::Containment {
            x0,
            y0,
            x1,
            y1,
            epoch,
        } => store.containment_at(x0, y0, x1, y1, epoch),
    };
    match result {
        Ok(rows) => QueryResponse::Rows(rows),
        Err(e @ StoreError::BeyondRetention { .. }) => QueryResponse::Error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_stream::LocationEvent;

    #[test]
    fn queries_round_trip_the_wire_text() {
        let queries = [
            Query::CurrentLocation(TagId(7)),
            Query::Trail {
                tag: TagId(3),
                from: Epoch(10),
                to: Epoch(99),
            },
            Query::SnapshotAt(Epoch(42)),
            Query::Containment {
                x0: -1.5,
                y0: 0.25,
                x1: 3.0,
                y1: 4.125,
                epoch: Epoch(17),
            },
        ];
        for q in queries {
            assert_eq!(Query::parse(&q.encode()), Ok(q));
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "FROB 1",
            "CURRENT",
            "CURRENT x",
            "CURRENT 1 2",
            "TRAIL 1 2",
            "SNAPSHOT -3",
            "CONTAIN 0 0 1 1",
            "CONTAIN 0 0 1 one 5",
        ] {
            assert!(Query::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn responses_round_trip_floats_bit_for_bit() {
        // awkward floats: shortest-repr Display must reproduce bits
        let rows = vec![
            LocationRow {
                tag: TagId(1),
                epoch: Epoch(3),
                location: Point3::new(0.1 + 0.2, -1.0 / 3.0, f64::MIN_POSITIVE),
            },
            LocationRow {
                tag: TagId(2),
                epoch: Epoch(4),
                location: Point3::new(1e300, -0.0, 2.0_f64.powi(-40)),
            },
        ];
        let resp = QueryResponse::Rows(rows.clone());
        let parsed = QueryResponse::parse(&resp.encode()).unwrap();
        let QueryResponse::Rows(got) = parsed else {
            panic!("expected rows");
        };
        for (a, b) in rows.iter().zip(&got) {
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
            assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
            assert_eq!(a.location.z.to_bits(), b.location.z.to_bits());
        }
        let err = QueryResponse::Error("beyond retention".into());
        assert_eq!(QueryResponse::parse(&err.encode()).unwrap(), err);
    }

    #[test]
    fn answer_evaluates_each_kind() {
        let mut store = EventStore::new(crate::store::StoreConfig::default());
        store.push(&LocationEvent::new(
            Epoch(0),
            TagId(1),
            Point3::new(1.0, 2.0, 0.0),
        ));
        store.complete_epoch(Epoch(0));
        let rows = |q: &Query| match answer(&store, q) {
            QueryResponse::Rows(r) => r,
            QueryResponse::Error(e) => panic!("unexpected error: {e}"),
        };
        assert_eq!(rows(&Query::CurrentLocation(TagId(1))).len(), 1);
        assert_eq!(rows(&Query::CurrentLocation(TagId(9))).len(), 0);
        assert_eq!(rows(&Query::SnapshotAt(Epoch(0))).len(), 1);
        assert_eq!(
            rows(&Query::Trail {
                tag: TagId(1),
                from: Epoch(0),
                to: Epoch(5),
            })
            .len(),
            1
        );
        assert_eq!(
            rows(&Query::Containment {
                x0: 0.0,
                y0: 0.0,
                x1: 2.0,
                y1: 3.0,
                epoch: Epoch(0),
            })
            .len(),
            1
        );
    }
}
