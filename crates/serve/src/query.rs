//! The query API and its versioned wire form.
//!
//! Five pull-query kinds cover the paper's serving questions — where is
//! object X now, what trail did it take, what was the full picture at
//! epoch E (optionally only what *changed* since an earlier epoch), and
//! what is inside this shelf region — plus a push kind:
//!
//! * [`Query::CurrentLocation`] — latest known location of one tag;
//! * [`Query::Trail`] — a tag's retained events over an epoch range;
//! * [`Query::SnapshotAt`] — the latest-location relation as known
//!   when an epoch completed;
//! * [`Query::SnapshotDelta`] — the same relation restricted to rows
//!   whose backing event *arrived* after an earlier epoch (the cheap
//!   way for a dashboard to refresh: full snapshot once, deltas after);
//! * [`Query::Containment`] — the snapshot filtered to an XY region;
//! * [`RequestKind::Subscribe`] — server push: location *changes*
//!   streamed as they commit, filtered by region, tag set, or none.
//!
//! ## Wire grammar
//!
//! The TCP protocol is length-prefixed text: every frame is a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 (no
//! serde is available offline, and text keeps the protocol inspectable
//! with three lines of any language). The framing is the stable
//! surface shared by both protocol versions.
//!
//! **Version 1** (legacy, still served): each request frame is a bare
//! query line, answered by exactly one response frame:
//!
//! ```text
//! request-v1  = query
//! query       = current | trail | snapshot | contain
//! current     = "CURRENT"  SP tag
//! trail       = "TRAIL"    SP tag SP from-epoch SP to-epoch
//! snapshot    = "SNAPSHOT" SP epoch ["SINCE" SP since-epoch]
//! contain     = "CONTAIN"  SP x0 SP y0 SP x1 SP y1 SP epoch
//! response-v1 = "OK" SP row-count *(LF row) | "ERR" SP code SP message
//! row         = tag SP epoch SP x SP y SP z
//! tag, epoch  = u64 decimal
//! x0..y1      = f64 decimal (Rust round-trip formatting)
//! ```
//!
//! **Version 2** (the envelope): a connection upgrades by sending
//! `HELLO <version>` as a frame; the server answers `HELLO <negotiated>`
//! (its highest common version) and from then on every request carries
//! a client-chosen **request id**, every response echoes it, and
//! server-push frames for subscriptions interleave with responses on
//! the same connection — the id is what keeps them apart:
//!
//! ```text
//! hello       = "HELLO" SP version
//! request-v2  = id SP (query | subscribe | unsubscribe | telemetry)
//! subscribe   = "SUBSCRIBE" SP filter
//! filter      = "ALL" | "REGION" SP x0 SP y0 SP x1 SP y1
//!             | "TAGS" 1*(SP tag)
//! unsubscribe = "UNSUBSCRIBE" SP subscription-id
//! telemetry   = "TELEMETRY" ["METRICS" / "TRACE"]
//! frame-v2    = "HELLO" SP version
//!             | "OK"     SP id SP row-count *(LF row)
//!             | "ERR"    SP id SP code SP message
//!             | "PUSH"   SP sub-id SP arrival-epoch SP row-count *(LF row)
//!             | "LAGGED" SP sub-id SP dropped-row-count
//!             | "TELEMETRY" SP id SP byte-count LF body
//! ```
//!
//! `TELEMETRY` (v2 only) scrapes the process-wide observability
//! surface: `METRICS` (the default) returns the metrics registry in
//! text exposition, `TRACE` the slow-epoch/slow-query ring. Both are
//! answered without touching the store lock.
//!
//! A subscription's id is the id of the `SUBSCRIBE` request that
//! created it (`OK id 0` acknowledges it). `PUSH` frames carry the
//! arrival epoch whose completion committed the delta; their rows are
//! location *changes* ([`LocationChangeSink`] semantics — one row per
//! tag whose location moved). A subscriber that falls behind gets its
//! oldest pending frames dropped (bounded queues, never unbounded
//! buffering) and exactly one `LAGGED` frame per overflow run counting
//! the dropped rows.
//!
//! ## Error codes
//!
//! `ERR` frames carry a machine-readable [`ErrorCode`] token that
//! round-trips the wire, mapping [`StoreError`] variants one-to-one
//! (plus request-level codes). For compatibility, decoders accept
//! legacy codeless `ERR <message>` frames as [`ErrorCode::Unknown`].
//!
//! Floats are formatted with Rust's shortest round-trip `Display`, so
//! a parsed response reproduces the server's `f64`s **bit-for-bit** —
//! the bit-identical-to-sinks contract survives the wire.
//!
//! [`LocationChangeSink`]: rfid_stream::pipeline::sinks::LocationChangeSink

use crate::store::{EventStore, LocationRow, StoreError};
use rfid_geom::Point3;
use rfid_stream::pipeline::sinks::LocationUpdate;
use rfid_stream::{Epoch, TagId};

/// The newest protocol version this crate speaks.
pub const PROTOCOL_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// typed wire errors
// ---------------------------------------------------------------------

/// Machine-readable error codes; the token after `ERR` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse (missing/trailing/bad arguments).
    BadRequest,
    /// The request verb is not part of the protocol.
    UnknownVerb,
    /// The operation needs a protocol version this connection does not
    /// speak (e.g. `SUBSCRIBE` before a `HELLO` upgrade).
    UnsupportedVersion,
    /// [`StoreError::BeyondRetention`]: the epoch precedes the
    /// retention horizon.
    BeyondRetention,
    /// `UNSUBSCRIBE` named a subscription this connection does not own.
    UnknownSubscription,
    /// The server is at its connection limit
    /// ([`crate::server::ServerConfig::max_connections`]); retry later
    /// or against another replica.
    Overloaded,
    /// A legacy or unrecognized code (decode side only: v1 peers sent
    /// `ERR <message>` with no code at all).
    Unknown,
}

impl ErrorCode {
    /// The wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "BAD_REQUEST",
            ErrorCode::UnknownVerb => "UNKNOWN_VERB",
            ErrorCode::UnsupportedVersion => "UNSUPPORTED_VERSION",
            ErrorCode::BeyondRetention => "BEYOND_RETENTION",
            ErrorCode::UnknownSubscription => "UNKNOWN_SUBSCRIPTION",
            ErrorCode::Overloaded => "OVERLOADED",
            ErrorCode::Unknown => "UNKNOWN",
        }
    }

    /// Parses a wire token.
    pub fn from_token(token: &str) -> Option<ErrorCode> {
        Some(match token {
            "BAD_REQUEST" => ErrorCode::BadRequest,
            "UNKNOWN_VERB" => ErrorCode::UnknownVerb,
            "UNSUPPORTED_VERSION" => ErrorCode::UnsupportedVersion,
            "BEYOND_RETENTION" => ErrorCode::BeyondRetention,
            "UNKNOWN_SUBSCRIPTION" => ErrorCode::UnknownSubscription,
            "OVERLOADED" => ErrorCode::Overloaded,
            "UNKNOWN" => ErrorCode::Unknown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed wire error: a round-tripping code plus a human message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub code: ErrorCode,
    pub message: String,
}

impl WireError {
    /// An error with a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// A `BAD_REQUEST` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// Encodes the text after `"ERR "` (and after the id in v2).
    pub fn encode(&self) -> String {
        format!("{} {}", self.code, self.message.replace('\n', " "))
    }

    /// Decodes the text after `"ERR "`. A leading known code token is
    /// split off; anything else (legacy codeless errors) becomes the
    /// whole message under [`ErrorCode::Unknown`].
    pub fn decode(text: &str) -> WireError {
        let mut parts = text.splitn(2, ' ');
        let head = parts.next().unwrap_or("");
        match ErrorCode::from_token(head) {
            Some(code) => WireError::new(code, parts.next().unwrap_or("").to_string()),
            None => WireError::new(ErrorCode::Unknown, text.to_string()),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<StoreError> for WireError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::BeyondRetention { .. } => {
                WireError::new(ErrorCode::BeyondRetention, e.to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------
// queries, subscriptions, request envelopes
// ---------------------------------------------------------------------

/// One pull query against the event store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Latest known location of a tag (0 or 1 row).
    CurrentLocation(TagId),
    /// A tag's retained events with event epoch in `[from, to]`.
    Trail { tag: TagId, from: Epoch, to: Epoch },
    /// The latest-location relation as known when `epoch` completed.
    SnapshotAt(Epoch),
    /// The rows of `SnapshotAt(at)` whose backing event **arrived**
    /// after `since` completed — an incremental refresh for a client
    /// that already holds the snapshot at `since`.
    SnapshotDelta { at: Epoch, since: Epoch },
    /// Snapshot rows inside the XY region `[x0, x1] × [y0, y1]`.
    Containment {
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        epoch: Epoch,
    },
}

/// What a subscription wants pushed: every location change, changes
/// inside a region, or changes of an explicit tag set.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionFilter {
    /// Every location change.
    All,
    /// Changes whose new XY location lies in `[x0, x1] × [y0, y1]`.
    Region { x0: f64, y0: f64, x1: f64, y1: f64 },
    /// Changes of these tags.
    Tags(Vec<TagId>),
}

impl SubscriptionFilter {
    /// Whether a fired location change matches this filter.
    pub fn matches(&self, update: &LocationUpdate) -> bool {
        match self {
            SubscriptionFilter::All => true,
            SubscriptionFilter::Region { x0, y0, x1, y1 } => {
                let p = &update.location;
                p.x >= *x0 && p.x <= *x1 && p.y >= *y0 && p.y <= *y1
            }
            SubscriptionFilter::Tags(tags) => tags.contains(&update.tag),
        }
    }

    /// The filter's wire text (after `"SUBSCRIBE "`).
    pub fn encode(&self) -> String {
        match self {
            SubscriptionFilter::All => "ALL".to_string(),
            SubscriptionFilter::Region { x0, y0, x1, y1 } => {
                format!("REGION {x0} {y0} {x1} {y1}")
            }
            SubscriptionFilter::Tags(tags) => {
                let mut s = String::from("TAGS");
                for t in tags {
                    s.push(' ');
                    s.push_str(&t.0.to_string());
                }
                s
            }
        }
    }
}

/// A v2 request: a client-chosen id plus what to do. Responses echo
/// the id, which is what lets pull responses and push frames share one
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen; echoed on the response (and on every `PUSH` of a
    /// subscription this request created).
    pub id: u64,
    pub kind: RequestKind,
}

/// The operations a v2 request can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// A pull query, answered with one `OK`/`ERR` frame.
    Query(Query),
    /// Registers a push subscription under this request's id.
    Subscribe(SubscriptionFilter),
    /// Cancels the subscription created by request `.0`.
    Unsubscribe(u64),
    /// An observability scrape, answered with one `TELEMETRY` frame.
    /// Served entirely from the process-wide registry/trace ring —
    /// never touches the store lock.
    Telemetry(TelemetryCmd),
}

/// What a `TELEMETRY` request scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryCmd {
    /// The metrics registry in text exposition (the default).
    Metrics,
    /// The slow-epoch/slow-query trace ring, newest last.
    Trace,
}

impl RequestKind {
    /// The wire verb, for per-verb latency accounting.
    pub fn verb(&self) -> &'static str {
        match self {
            RequestKind::Query(Query::CurrentLocation(_)) => "CURRENT",
            RequestKind::Query(Query::Trail { .. }) => "TRAIL",
            RequestKind::Query(Query::SnapshotAt(_) | Query::SnapshotDelta { .. }) => "SNAPSHOT",
            RequestKind::Query(Query::Containment { .. }) => "CONTAIN",
            RequestKind::Subscribe(_) => "SUBSCRIBE",
            RequestKind::Unsubscribe(_) => "UNSUBSCRIBE",
            RequestKind::Telemetry(_) => "TELEMETRY",
        }
    }
}

/// A whitespace-token cursor with typed argument accessors — the one
/// parsing path for every verb.
struct Args<'a> {
    op: &'a str,
    parts: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Args<'a> {
    fn u64(&mut self, name: &str) -> Result<u64, WireError> {
        let op = self.op;
        self.parts
            .next()
            .ok_or_else(|| WireError::bad_request(format!("{op}: missing {name}")))?
            .parse::<u64>()
            .map_err(|e| WireError::bad_request(format!("{op}: bad {name}: {e}")))
    }

    fn f64(&mut self, name: &str) -> Result<f64, WireError> {
        let op = self.op;
        self.parts
            .next()
            .ok_or_else(|| WireError::bad_request(format!("{op}: missing {name}")))?
            .parse::<f64>()
            .map_err(|e| WireError::bad_request(format!("{op}: bad {name}: {e}")))
    }

    fn end(mut self) -> Result<(), WireError> {
        match self.parts.next() {
            Some(_) => Err(WireError::bad_request(format!(
                "{}: trailing arguments",
                self.op
            ))),
            None => Ok(()),
        }
    }
}

impl Query {
    /// The request line (without envelope or length prefix).
    pub fn encode(&self) -> String {
        match self {
            Query::CurrentLocation(tag) => format!("CURRENT {}", tag.0),
            Query::Trail { tag, from, to } => format!("TRAIL {} {} {}", tag.0, from.0, to.0),
            Query::SnapshotAt(epoch) => format!("SNAPSHOT {}", epoch.0),
            Query::SnapshotDelta { at, since } => format!("SNAPSHOT {} SINCE {}", at.0, since.0),
            Query::Containment {
                x0,
                y0,
                x1,
                y1,
                epoch,
            } => format!("CONTAIN {x0} {y0} {x1} {y1} {}", epoch.0),
        }
    }

    /// Parses a bare query line (a v1 request, or the payload of a v2
    /// envelope after the id).
    pub fn parse(line: &str) -> Result<Query, WireError> {
        let mut parts = line.split_ascii_whitespace();
        let op = parts
            .next()
            .ok_or_else(|| WireError::bad_request("empty request"))?;
        let mut args = Args { op, parts };
        let q = match op {
            "CURRENT" => Query::CurrentLocation(TagId(args.u64("tag")?)),
            "TRAIL" => Query::Trail {
                tag: TagId(args.u64("tag")?),
                from: Epoch(args.u64("from-epoch")?),
                to: Epoch(args.u64("to-epoch")?),
            },
            "SNAPSHOT" => {
                let at = Epoch(args.u64("epoch")?);
                match args.parts.next() {
                    None => return Ok(Query::SnapshotAt(at)),
                    Some("SINCE") => Query::SnapshotDelta {
                        at,
                        since: Epoch(args.u64("since-epoch")?),
                    },
                    Some(other) => {
                        return Err(WireError::bad_request(format!(
                            "SNAPSHOT: expected SINCE, got {other:?}"
                        )))
                    }
                }
            }
            "CONTAIN" => Query::Containment {
                x0: args.f64("x0")?,
                y0: args.f64("y0")?,
                x1: args.f64("x1")?,
                y1: args.f64("y1")?,
                epoch: Epoch(args.u64("epoch")?),
            },
            other => {
                return Err(WireError::new(
                    ErrorCode::UnknownVerb,
                    format!("unknown request {other:?}"),
                ))
            }
        };
        args.end()?;
        Ok(q)
    }
}

impl RequestKind {
    /// The line after the id (a query, `SUBSCRIBE ...`, or
    /// `UNSUBSCRIBE ...`).
    pub fn encode(&self) -> String {
        match self {
            RequestKind::Query(q) => q.encode(),
            RequestKind::Subscribe(f) => format!("SUBSCRIBE {}", f.encode()),
            RequestKind::Unsubscribe(sub) => format!("UNSUBSCRIBE {sub}"),
            RequestKind::Telemetry(TelemetryCmd::Metrics) => "TELEMETRY METRICS".to_string(),
            RequestKind::Telemetry(TelemetryCmd::Trace) => "TELEMETRY TRACE".to_string(),
        }
    }

    /// Parses the line after the id.
    pub fn parse(line: &str) -> Result<RequestKind, WireError> {
        let mut parts = line.split_ascii_whitespace();
        let op = parts
            .next()
            .ok_or_else(|| WireError::bad_request("empty request"))?;
        match op {
            "SUBSCRIBE" => {
                let mut args = Args { op, parts };
                let filter = match args.parts.next() {
                    Some("ALL") => SubscriptionFilter::All,
                    Some("REGION") => SubscriptionFilter::Region {
                        x0: args.f64("x0")?,
                        y0: args.f64("y0")?,
                        x1: args.f64("x1")?,
                        y1: args.f64("y1")?,
                    },
                    Some("TAGS") => {
                        let mut tags = Vec::new();
                        for t in args.parts.by_ref() {
                            tags.push(TagId(t.parse::<u64>().map_err(|e| {
                                WireError::bad_request(format!("SUBSCRIBE: bad tag: {e}"))
                            })?));
                        }
                        if tags.is_empty() {
                            return Err(WireError::bad_request("SUBSCRIBE TAGS: no tags"));
                        }
                        return Ok(RequestKind::Subscribe(SubscriptionFilter::Tags(tags)));
                    }
                    other => {
                        return Err(WireError::bad_request(format!(
                            "SUBSCRIBE: expected ALL/REGION/TAGS, got {other:?}"
                        )))
                    }
                };
                args.end()?;
                Ok(RequestKind::Subscribe(filter))
            }
            "UNSUBSCRIBE" => {
                let mut args = Args { op, parts };
                let sub = args.u64("subscription-id")?;
                args.end()?;
                Ok(RequestKind::Unsubscribe(sub))
            }
            "TELEMETRY" => {
                let mut args = Args { op, parts };
                let cmd = match args.parts.next() {
                    None | Some("METRICS") => TelemetryCmd::Metrics,
                    Some("TRACE") => TelemetryCmd::Trace,
                    Some(other) => {
                        return Err(WireError::bad_request(format!(
                            "TELEMETRY: expected METRICS or TRACE, got {other:?}"
                        )))
                    }
                };
                args.end()?;
                Ok(RequestKind::Telemetry(cmd))
            }
            _ => Query::parse(line).map(RequestKind::Query),
        }
    }
}

impl Request {
    /// The v2 request line: `id SP kind`.
    pub fn encode(&self) -> String {
        format!("{} {}", self.id, self.kind.encode())
    }

    /// Parses a v2 request line. On failure, the error carries the
    /// request id when one could be read (0 otherwise) so the server
    /// can still address its `ERR` frame.
    pub fn parse(line: &str) -> Result<Request, (u64, WireError)> {
        let trimmed = line.trim_start();
        let (head, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
        let id = head
            .parse::<u64>()
            .map_err(|_| (0, WireError::bad_request("request must start with an id")))?;
        let kind = RequestKind::parse(rest).map_err(|e| (id, e))?;
        Ok(Request { id, kind })
    }
}

// ---------------------------------------------------------------------
// row codec (shared by v1 responses and v2 frames)
// ---------------------------------------------------------------------

/// Appends one `tag SP epoch SP x SP y SP z` row line. `{}` on f64 is
/// the shortest string that parses back to the same bits — exact over
/// the wire.
pub(crate) fn encode_row(s: &mut String, row: &LocationRow) {
    s.push('\n');
    s.push_str(&format!(
        "{} {} {} {} {}",
        row.tag.0, row.epoch.0, row.location.x, row.location.y, row.location.z
    ));
}

fn decode_rows<'a>(
    mut lines: impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<Vec<LocationRow>, WireError> {
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let line = lines
            .next()
            .ok_or_else(|| WireError::bad_request("truncated response"))?;
        let mut p = line.split_ascii_whitespace();
        let mut next = |name: &str| {
            p.next()
                .ok_or_else(|| WireError::bad_request(format!("row missing {name}: {line:?}")))
        };
        let tag: u64 = next("tag")?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad tag: {e}")))?;
        let epoch: u64 = next("epoch")?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad epoch: {e}")))?;
        let x: f64 = next("x")?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad x: {e}")))?;
        let y: f64 = next("y")?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad y: {e}")))?;
        let z: f64 = next("z")?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad z: {e}")))?;
        rows.push(LocationRow {
            tag: TagId(tag),
            epoch: Epoch(epoch),
            location: Point3::new(x, y, z),
        });
    }
    if lines.next().is_some() {
        return Err(WireError::bad_request("trailing response lines"));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// v1 responses
// ---------------------------------------------------------------------

/// The answer to a [`Query`] — the v1 response form, and the payload
/// the v2 `OK`/`ERR` frames wrap with an id.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Matched rows (possibly empty), sorted as the store answers
    /// them: snapshot/containment by tag, trail in arrival order.
    Rows(Vec<LocationRow>),
    /// The query could not be answered.
    Error(WireError),
}

impl QueryResponse {
    /// The rows, or `None` for an error response.
    pub fn rows(&self) -> Option<&[LocationRow]> {
        match self {
            QueryResponse::Rows(rows) => Some(rows),
            QueryResponse::Error(_) => None,
        }
    }

    /// The rows, or the typed error.
    pub fn into_rows(self) -> Result<Vec<LocationRow>, WireError> {
        match self {
            QueryResponse::Rows(rows) => Ok(rows),
            QueryResponse::Error(e) => Err(e),
        }
    }

    /// The typed error, or `None` for a row response.
    pub fn error(&self) -> Option<&WireError> {
        match self {
            QueryResponse::Rows(_) => None,
            QueryResponse::Error(e) => Some(e),
        }
    }

    /// The response payload (v1: no id; without the length prefix).
    pub fn encode(&self) -> String {
        match self {
            QueryResponse::Rows(rows) => {
                let mut s = format!("OK {}", rows.len());
                for r in rows {
                    encode_row(&mut s, r);
                }
                s
            }
            QueryResponse::Error(e) => format!("ERR {}", e.encode()),
        }
    }

    /// Parses a v1 response payload. Legacy `ERR <message>` frames
    /// (no code token) decode as [`ErrorCode::Unknown`].
    pub fn parse(payload: &str) -> Result<QueryResponse, WireError> {
        let mut lines = payload.lines();
        let head = lines
            .next()
            .ok_or_else(|| WireError::bad_request("empty response"))?;
        if let Some(rest) = head.strip_prefix("ERR ") {
            return Ok(QueryResponse::Error(WireError::decode(rest)));
        }
        let n: usize = head
            .strip_prefix("OK ")
            .ok_or_else(|| WireError::bad_request(format!("bad response head {head:?}")))?
            .parse()
            .map_err(|e| WireError::bad_request(format!("bad row count: {e}")))?;
        Ok(QueryResponse::Rows(decode_rows(lines, n)?))
    }
}

// ---------------------------------------------------------------------
// v2 frames
// ---------------------------------------------------------------------

/// One server→client frame of the v2 protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake reply: the negotiated protocol version.
    Hello { version: u32 },
    /// Response to request `id`.
    Ok { id: u64, rows: Vec<LocationRow> },
    /// Typed failure of request `id` (`id` 0 when the envelope itself
    /// did not parse).
    Err { id: u64, error: WireError },
    /// A committed delta for subscription `id`: the location changes
    /// delivered by the completion of arrival `epoch`.
    Push {
        id: u64,
        epoch: u64,
        rows: Vec<LocationRow>,
    },
    /// Subscription `id` overflowed its queue; `dropped` rows were
    /// discarded since its last delivered frame.
    Lagged { id: u64, dropped: u64 },
    /// Response to a `TELEMETRY` request: a free-form text body (the
    /// registry exposition or the trace ring).
    Telemetry { id: u64, body: String },
}

impl Frame {
    /// The frame payload (without the length prefix).
    pub fn encode(&self) -> String {
        match self {
            Frame::Hello { version } => format!("HELLO {version}"),
            Frame::Ok { id, rows } => {
                let mut s = format!("OK {id} {}", rows.len());
                for r in rows {
                    encode_row(&mut s, r);
                }
                s
            }
            Frame::Err { id, error } => format!("ERR {id} {}", error.encode()),
            Frame::Push { id, epoch, rows } => {
                let mut s = format!("PUSH {id} {epoch} {}", rows.len());
                for r in rows {
                    encode_row(&mut s, r);
                }
                s
            }
            Frame::Lagged { id, dropped } => format!("LAGGED {id} {dropped}"),
            // the byte count makes the body length explicit, so a
            // decoder can reject a frame truncated mid-body
            Frame::Telemetry { id, body } => format!("TELEMETRY {id} {}\n{body}", body.len()),
        }
    }

    /// Parses a v2 server frame.
    pub fn parse(payload: &str) -> Result<Frame, WireError> {
        let mut lines = payload.lines();
        let head = lines
            .next()
            .ok_or_else(|| WireError::bad_request("empty frame"))?;
        let mut parts = head.split_ascii_whitespace();
        let verb = parts
            .next()
            .ok_or_else(|| WireError::bad_request("blank frame head"))?;
        let mut u64_arg = |name: &str| -> Result<u64, WireError> {
            parts
                .next()
                .ok_or_else(|| WireError::bad_request(format!("{verb}: missing {name}")))?
                .parse::<u64>()
                .map_err(|e| WireError::bad_request(format!("{verb}: bad {name}: {e}")))
        };
        match verb {
            "HELLO" => Ok(Frame::Hello {
                version: u64_arg("version")? as u32,
            }),
            "OK" => {
                let id = u64_arg("id")?;
                let n = u64_arg("row-count")? as usize;
                Ok(Frame::Ok {
                    id,
                    rows: decode_rows(lines, n)?,
                })
            }
            "ERR" => {
                let id = u64_arg("id")?;
                let rest = head
                    .splitn(3, ' ')
                    .nth(2)
                    .ok_or_else(|| WireError::bad_request("ERR: missing error"))?;
                Ok(Frame::Err {
                    id,
                    error: WireError::decode(rest),
                })
            }
            "PUSH" => {
                let id = u64_arg("id")?;
                let epoch = u64_arg("arrival-epoch")?;
                let n = u64_arg("row-count")? as usize;
                Ok(Frame::Push {
                    id,
                    epoch,
                    rows: decode_rows(lines, n)?,
                })
            }
            "LAGGED" => Ok(Frame::Lagged {
                id: u64_arg("id")?,
                dropped: u64_arg("dropped")?,
            }),
            "TELEMETRY" => {
                let id = u64_arg("id")?;
                let len = u64_arg("byte-count")? as usize;
                let body = payload.split_once('\n').map(|(_, b)| b).unwrap_or_default();
                if body.len() != len {
                    return Err(WireError::bad_request(format!(
                        "TELEMETRY: body is {} bytes, header says {len}",
                        body.len()
                    )));
                }
                Ok(Frame::Telemetry {
                    id,
                    body: body.to_string(),
                })
            }
            other => Err(WireError::bad_request(format!(
                "unknown frame verb {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------

/// Answers a pull query against a store — the single evaluation path
/// shared by the TCP server (both protocol versions) and in-process
/// callers.
pub fn answer(store: &EventStore, query: &Query) -> QueryResponse {
    let result = match *query {
        Query::CurrentLocation(tag) => Ok(store.current_location(tag).into_iter().collect()),
        Query::Trail { tag, from, to } => store.trail(tag, from, to).map(|events| {
            events
                .into_iter()
                .map(|s| LocationRow {
                    tag: s.event.tag,
                    epoch: s.event.epoch,
                    location: s.event.location,
                })
                .collect()
        }),
        Query::SnapshotAt(epoch) => store.snapshot_at(epoch),
        Query::SnapshotDelta { at, since } => store.snapshot_delta(at, since),
        Query::Containment {
            x0,
            y0,
            x1,
            y1,
            epoch,
        } => store.containment_at(x0, y0, x1, y1, epoch),
    };
    match result {
        Ok(rows) => QueryResponse::Rows(rows),
        Err(e) => QueryResponse::Error(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_stream::LocationEvent;

    #[test]
    fn queries_round_trip_the_wire_text() {
        let queries = [
            Query::CurrentLocation(TagId(7)),
            Query::Trail {
                tag: TagId(3),
                from: Epoch(10),
                to: Epoch(99),
            },
            Query::SnapshotAt(Epoch(42)),
            Query::SnapshotDelta {
                at: Epoch(42),
                since: Epoch(17),
            },
            Query::Containment {
                x0: -1.5,
                y0: 0.25,
                x1: 3.0,
                y1: 4.125,
                epoch: Epoch(17),
            },
        ];
        for q in queries {
            assert_eq!(Query::parse(&q.encode()), Ok(q));
        }
    }

    #[test]
    fn requests_round_trip_the_envelope() {
        let requests = [
            Request {
                id: 9,
                kind: RequestKind::Query(Query::CurrentLocation(TagId(1))),
            },
            Request {
                id: 0,
                kind: RequestKind::Subscribe(SubscriptionFilter::All),
            },
            Request {
                id: 3,
                kind: RequestKind::Subscribe(SubscriptionFilter::Region {
                    x0: -1.0,
                    y0: 0.5,
                    x1: 2.0,
                    y1: 3.5,
                }),
            },
            Request {
                id: 4,
                kind: RequestKind::Subscribe(SubscriptionFilter::Tags(vec![
                    TagId(1),
                    TagId(5),
                    TagId(9),
                ])),
            },
            Request {
                id: 5,
                kind: RequestKind::Unsubscribe(3),
            },
            Request {
                id: 6,
                kind: RequestKind::Telemetry(TelemetryCmd::Metrics),
            },
            Request {
                id: 7,
                kind: RequestKind::Telemetry(TelemetryCmd::Trace),
            },
        ];
        for r in requests {
            assert_eq!(Request::parse(&r.encode()), Ok(r));
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_codes() {
        for bad in [
            "",
            "CURRENT",
            "CURRENT x",
            "CURRENT 1 2",
            "TRAIL 1 2",
            "SNAPSHOT -3",
            "SNAPSHOT 5 UNTIL 9",
            "SNAPSHOT 5 SINCE",
            "CONTAIN 0 0 1 1",
            "CONTAIN 0 0 1 one 5",
        ] {
            let err = Query::parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad:?}");
        }
        assert_eq!(
            Query::parse("FROB 1").unwrap_err().code,
            ErrorCode::UnknownVerb
        );
        for bad in [
            "SUBSCRIBE",
            "SUBSCRIBE NONE",
            "SUBSCRIBE REGION 0 0 1",
            "SUBSCRIBE TAGS",
            "SUBSCRIBE TAGS x",
            "UNSUBSCRIBE",
            "UNSUBSCRIBE x",
            "TELEMETRY NOPE",
            "TELEMETRY METRICS EXTRA",
        ] {
            let err = RequestKind::parse(bad).expect_err(&format!("accepted {bad:?}"));
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad:?}");
        }
        // an envelope whose id is unreadable reports id 0
        assert_eq!(Request::parse("nope CURRENT 1").unwrap_err().0, 0);
        // a readable id survives a bad body
        let (id, err) = Request::parse("7 FROB 1").unwrap_err();
        assert_eq!((id, err.code), (7, ErrorCode::UnknownVerb));
    }

    #[test]
    fn responses_round_trip_floats_bit_for_bit() {
        // awkward floats: shortest-repr Display must reproduce bits
        let rows = vec![
            LocationRow {
                tag: TagId(1),
                epoch: Epoch(3),
                location: Point3::new(0.1 + 0.2, -1.0 / 3.0, f64::MIN_POSITIVE),
            },
            LocationRow {
                tag: TagId(2),
                epoch: Epoch(4),
                location: Point3::new(1e300, -0.0, 2.0_f64.powi(-40)),
            },
        ];
        let resp = QueryResponse::Rows(rows.clone());
        let parsed = QueryResponse::parse(&resp.encode()).unwrap();
        let QueryResponse::Rows(got) = parsed else {
            panic!("expected rows");
        };
        for (a, b) in rows.iter().zip(&got) {
            assert_eq!(a.tag, b.tag);
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
            assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
            assert_eq!(a.location.z.to_bits(), b.location.z.to_bits());
        }
        // and the same rows survive a v2 PUSH frame
        let push = Frame::Push {
            id: 6,
            epoch: 11,
            rows: rows.clone(),
        };
        let Frame::Push {
            id: 6,
            epoch: 11,
            rows: got,
        } = Frame::parse(&push.encode()).unwrap()
        else {
            panic!("expected the same push frame back");
        };
        assert_eq!(got[0].location.x.to_bits(), rows[0].location.x.to_bits());
    }

    #[test]
    fn error_codes_round_trip_and_legacy_errors_decode() {
        let err = QueryResponse::Error(WireError::new(
            ErrorCode::BeyondRetention,
            "epoch 3 is beyond the retention horizon (oldest exact snapshot: 8)",
        ));
        let encoded = err.encode();
        assert!(encoded.starts_with("ERR BEYOND_RETENTION "), "{encoded}");
        assert_eq!(QueryResponse::parse(&encoded).unwrap(), err);

        // v1 peers sent codeless messages: still accepted on decode
        let legacy = QueryResponse::parse("ERR something went wrong").unwrap();
        assert_eq!(
            legacy.error().map(|e| (e.code, e.message.as_str())),
            Some((ErrorCode::Unknown, "something went wrong"))
        );

        // StoreError maps one-to-one
        let mapped: WireError = StoreError::BeyondRetention {
            requested: 3,
            horizon: 8,
        }
        .into();
        assert_eq!(mapped.code, ErrorCode::BeyondRetention);
    }

    #[test]
    fn v2_frames_round_trip() {
        let frames = [
            Frame::Hello { version: 2 },
            Frame::Ok {
                id: 7,
                rows: vec![],
            },
            Frame::Err {
                id: 9,
                error: WireError::new(ErrorCode::UnknownVerb, "unknown request \"FROB\""),
            },
            Frame::Push {
                id: 1,
                epoch: 44,
                rows: vec![LocationRow {
                    tag: TagId(3),
                    epoch: Epoch(40),
                    location: Point3::new(1.5, -2.25, 0.0),
                }],
            },
            Frame::Lagged {
                id: 1,
                dropped: 321,
            },
            Frame::Telemetry {
                id: 8,
                body: String::new(),
            },
            Frame::Telemetry {
                id: 9,
                body: "engine_epochs_total 40\nengine_infer_us_sum 123\n".to_string(),
            },
        ];
        for f in frames {
            assert_eq!(Frame::parse(&f.encode()), Ok(f));
        }
        assert!(Frame::parse("WHAT 1 2").is_err());
        // a telemetry body truncated below its announced byte count
        assert!(Frame::parse("TELEMETRY 1 10\nshort").is_err());
    }

    #[test]
    fn answer_evaluates_each_kind() {
        let mut store = EventStore::new(crate::store::StoreConfig::default());
        store.push(&LocationEvent::new(
            Epoch(0),
            TagId(1),
            Point3::new(1.0, 2.0, 0.0),
        ));
        store.complete_epoch(Epoch(0));
        store.push(&LocationEvent::new(
            Epoch(1),
            TagId(2),
            Point3::new(4.0, 2.0, 0.0),
        ));
        store.complete_epoch(Epoch(1));
        let rows = |q: &Query| match answer(&store, q) {
            QueryResponse::Rows(r) => r,
            QueryResponse::Error(e) => panic!("unexpected error: {e}"),
        };
        assert_eq!(rows(&Query::CurrentLocation(TagId(1))).len(), 1);
        assert_eq!(rows(&Query::CurrentLocation(TagId(9))).len(), 0);
        assert_eq!(rows(&Query::SnapshotAt(Epoch(1))).len(), 2);
        // the delta since epoch 0 contains only tag 2's arrival
        let delta = rows(&Query::SnapshotDelta {
            at: Epoch(1),
            since: Epoch(0),
        });
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].tag, TagId(2));
        assert_eq!(
            rows(&Query::Trail {
                tag: TagId(1),
                from: Epoch(0),
                to: Epoch(5),
            })
            .len(),
            1
        );
        assert_eq!(
            rows(&Query::Containment {
                x0: 0.0,
                y0: 0.0,
                x1: 2.0,
                y1: 3.0,
                epoch: Epoch(0),
            })
            .len(),
            1
        );
    }
}
