//! Poison-tolerant lock acquisition.
//!
//! The server's shared state sits behind `RwLock`/`Mutex`. A panic in
//! one connection handler while a guard is held poisons the lock; the
//! old `.expect(...)` acquisitions then turned *every* subsequent
//! handler's acquisition into a panic, cascading one bad request into
//! all worker threads dying. Recovery is sound here because every
//! protected structure is kept consistent at each write: store and hub
//! writes are sink-call-shaped (append a completed row set, push a
//! completed frame) with no multi-step invariants spanning the guard,
//! and reads never mutate. So we take the data out of a poisoned
//! guard and keep serving.

use std::sync::{LockResult, MutexGuard, RwLockReadGuard};

/// Unwraps a lock acquisition, recovering the guard on poison.
pub(crate) fn recover<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

// Concrete aliases keep call sites honest about what they acquire.
pub(crate) fn read_recover<T>(r: LockResult<RwLockReadGuard<'_, T>>) -> RwLockReadGuard<'_, T> {
    recover(r)
}

pub(crate) fn mutex_recover<T>(r: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    recover(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn poisoned_locks_still_yield_guards() {
        let m = Arc::new(Mutex::new(7u32));
        let rw = Arc::new(RwLock::new(vec![1u8]));
        {
            let m = Arc::clone(&m);
            let rw = Arc::clone(&rw);
            let _ = std::thread::spawn(move || {
                let _g1 = m.lock().unwrap();
                let _g2 = rw.write().unwrap();
                panic!("poison both");
            })
            .join();
        }
        assert!(m.is_poisoned());
        assert!(rw.is_poisoned());
        assert_eq!(*mutex_recover(m.lock()), 7);
        assert_eq!(read_recover(rw.read()).as_slice(), &[1]);
        recover(rw.write()).push(2);
        assert_eq!(read_recover(rw.read()).as_slice(), &[1, 2]);
    }
}
