//! The on-disk segment log: crash-consistent durability for the
//! event store.
//!
//! ## Layout
//!
//! A log directory holds:
//!
//! ```text
//! MANIFEST                    committed segment boundaries (atomic)
//! segment-<start>.log         live segments (zero-padded start epoch)
//! archive/segment-<start>.log segments compacted out of the store
//! ```
//!
//! Each segment file is an append-only run of records framed as
//!
//! ```text
//! [payload length u32 LE][FNV-1a(payload) u64 LE][payload]
//! ```
//!
//! with a one-byte kind tag leading the payload: `0x01` EVENT (the
//! full [`LocationEvent`], float bits exact), `0x02` EPOCH_COMPLETE,
//! `0x03` FINISH. The log is a write-ahead journal of **sink calls**:
//! replaying its records through a fresh [`EventStore`] re-derives
//! every arrival stamp and sequence number exactly, because the
//! store's stamping is a pure function of the call sequence.
//!
//! ## Commit protocol
//!
//! Records append to the tail segment file. When the arrival clock
//! passes the tail's last epoch the file is fsynced (**then**) the
//! `MANIFEST` is rewritten atomically — temp file, fsync, rename,
//! directory fsync. A crash between the two leaves a sealed file the
//! manifest does not know about; [`SegmentLog::open`] adopts such
//! files (ordering by their start epoch) and re-commits the manifest.
//! A crash mid-record leaves a torn tail; open truncates the tail file
//! back to its last whole record. A missing manifest is rebuilt from
//! the segment files themselves.
//!
//! ## Archival, not loss
//!
//! When the in-memory store's retention compaction drops a sealed
//! segment, [`DurableStore`] moves the matching file into `archive/`
//! instead of deleting it — the live store stays bounded while the
//! full history remains on disk (and is replayed at open to rebuild
//! the compacted snapshot base exactly).

use crate::store::{EventStore, StoreConfig};
use rfid_geom::Point3;
use rfid_stream::{Epoch, EventSink, EventStats, LocationEvent, TagId};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const ARCHIVE_DIR: &str = "archive";
const MANIFEST_MAGIC: &str = "RFLOG 1";

const KIND_EVENT: u8 = 0x01;
const KIND_EPOCH_COMPLETE: u8 = 0x02;
const KIND_FINISH: u8 = 0x03;

/// Frame overhead per record: payload length + checksum.
const RECORD_HEADER: usize = 4 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why the log could not be opened or replayed.
#[derive(Debug)]
pub enum LogError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A committed (manifest-listed) file or the manifest itself does
    /// not decode.
    Corrupt(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "segment log i/o: {e}"),
            LogError::Corrupt(what) => write!(f, "corrupt segment log: {what}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A stored event (`EventSink::on_event`).
    Event(LocationEvent),
    /// An epoch-completion mark (`EventSink::on_epoch_complete`).
    EpochComplete(Epoch),
    /// End of stream (`EventSink::on_finish`).
    Finish,
}

/// What [`SegmentLog::open`] had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Torn bytes truncated off the tail (or an uncommitted) file.
    pub truncated_bytes: u64,
    /// Sealed-but-uncommitted files adopted into the manifest.
    pub adopted_segments: usize,
    /// The manifest was missing and rebuilt from the segment files.
    pub rebuilt_manifest: bool,
}

/// A crash to inject while writing (fault-injection harnesses only).
/// Once the log has written `after_bytes` record bytes in this
/// process, the next append either aborts before writing (`torn =
/// false`) or writes a partial record and then aborts (`torn = true`)
/// — simulating a kill mid-`write(2)`.
#[derive(Debug, Clone, Copy)]
pub struct WriteFault {
    /// Cumulative record bytes after which the crash fires.
    pub after_bytes: u64,
    /// Whether to leave a torn half-record behind.
    pub torn: bool,
}

#[derive(Debug, Clone)]
struct SegFile {
    /// First arrival epoch covered (inclusive, width-aligned).
    start: u64,
    /// Last arrival epoch covered (inclusive).
    end: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct Tail {
    seg: SegFile,
    file: File,
    /// Valid bytes written so far.
    bytes: u64,
}

fn segment_file_name(start: u64) -> String {
    // zero-padded so lexical order equals numeric order
    format!("segment-{start:020}.log")
}

fn parse_segment_start(name: &str) -> Option<u64> {
    name.strip_prefix("segment-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------
// record codec
// ---------------------------------------------------------------------

fn encode_record(record: &LogRecord, out: &mut Vec<u8>) {
    let mut p = Vec::with_capacity(64);
    match record {
        LogRecord::Event(ev) => {
            p.push(KIND_EVENT);
            p.extend_from_slice(&ev.epoch.0.to_le_bytes());
            p.extend_from_slice(&ev.tag.0.to_le_bytes());
            for v in [ev.location.x, ev.location.y, ev.location.z] {
                p.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            match &ev.stats {
                None => p.push(0),
                Some(s) => {
                    p.push(1);
                    for v in [s.var[0], s.var[1], s.var[2], s.support] {
                        p.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
        LogRecord::EpochComplete(e) => {
            p.push(KIND_EPOCH_COMPLETE);
            p.extend_from_slice(&e.0.to_le_bytes());
        }
        LogRecord::Finish => p.push(KIND_FINISH),
    }
    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(&p).to_le_bytes());
    out.extend_from_slice(&p);
}

fn decode_payload(p: &[u8]) -> Option<LogRecord> {
    let mut pos = 0usize;
    let u8_at = |pos: &mut usize| -> Option<u8> {
        let v = *p.get(*pos)?;
        *pos += 1;
        Some(v)
    };
    let u64_at = |pos: &mut usize| -> Option<u64> {
        let b = p.get(*pos..*pos + 8)?;
        *pos += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    };
    let record = match u8_at(&mut pos)? {
        KIND_EVENT => {
            let epoch = Epoch(u64_at(&mut pos)?);
            let tag = TagId(u64_at(&mut pos)?);
            let x = f64::from_bits(u64_at(&mut pos)?);
            let y = f64::from_bits(u64_at(&mut pos)?);
            let z = f64::from_bits(u64_at(&mut pos)?);
            let mut ev = LocationEvent::new(epoch, tag, Point3::new(x, y, z));
            match u8_at(&mut pos)? {
                0 => {}
                1 => {
                    let var = [
                        f64::from_bits(u64_at(&mut pos)?),
                        f64::from_bits(u64_at(&mut pos)?),
                        f64::from_bits(u64_at(&mut pos)?),
                    ];
                    let support = f64::from_bits(u64_at(&mut pos)?);
                    ev = ev.with_stats(EventStats { var, support });
                }
                _ => return None,
            }
            LogRecord::Event(ev)
        }
        KIND_EPOCH_COMPLETE => LogRecord::EpochComplete(Epoch(u64_at(&mut pos)?)),
        KIND_FINISH => LogRecord::Finish,
        _ => return None,
    };
    (pos == p.len()).then_some(record)
}

enum Scan {
    Record {
        record: LogRecord,
        next: usize,
    },
    /// End of valid data at this offset (clean end or torn tail).
    End(usize),
}

/// Decodes the record at `pos`, or reports where valid data ends.
fn scan_record(buf: &[u8], pos: usize) -> Scan {
    let Some(head) = buf.get(pos..pos + RECORD_HEADER) else {
        return Scan::End(pos);
    };
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
    let checksum = u64::from_le_bytes(head[4..].try_into().expect("8 bytes"));
    let Some(payload) = buf.get(pos + RECORD_HEADER..pos + RECORD_HEADER + len) else {
        return Scan::End(pos);
    };
    if fnv1a(payload) != checksum {
        return Scan::End(pos);
    }
    match decode_payload(payload) {
        Some(record) => Scan::Record {
            record,
            next: pos + RECORD_HEADER + len,
        },
        None => Scan::End(pos),
    }
}

/// Writes `bytes` to a temp file and renames it over `path`, fsyncing
/// the file and then the directory — the standard atomic-replace
/// sequence.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// the log
// ---------------------------------------------------------------------

/// The append-only on-disk segment log (see the module docs).
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    width: u64,
    sealed: Vec<SegFile>,
    archived: Vec<SegFile>,
    tail: Option<Tail>,
    /// Mirror of the store's arrival clock.
    last_completed: Option<u64>,
    finished: bool,
    recovery: Recovery,
    fault: Option<WriteFault>,
    fault_written: u64,
}

impl SegmentLog {
    /// Opens (or creates) the log in `dir` with `width`-epoch
    /// segments, repairing whatever a crash left behind: torn tails
    /// are truncated, sealed-but-uncommitted files adopted, a missing
    /// manifest rebuilt. The width must match the existing log's.
    pub fn open(dir: &Path, width: u64) -> Result<Self, LogError> {
        assert!(width >= 1, "segment width must be >= 1 epoch");
        fs::create_dir_all(dir)?;
        fs::create_dir_all(dir.join(ARCHIVE_DIR))?;
        let mut log = Self {
            dir: dir.to_path_buf(),
            width,
            sealed: Vec::new(),
            archived: Vec::new(),
            tail: None,
            last_completed: None,
            finished: false,
            recovery: Recovery::default(),
            fault: None,
            fault_written: 0,
        };
        let committed = log.read_manifest()?;
        log.adopt_files(committed)?;
        // replay the retained records to rebuild the clock
        let mut last = None;
        let mut finished = false;
        log.replay(|record| {
            match record {
                LogRecord::EpochComplete(e) => last = Some(last.map_or(e.0, |p: u64| p.max(e.0))),
                LogRecord::Finish => finished = true,
                LogRecord::Event(_) => {}
            }
            Ok(())
        })?;
        log.last_completed = last;
        log.finished = finished;
        if log.recovery != Recovery::default() || !dir.join(MANIFEST).exists() {
            log.commit_manifest()?;
        }
        Ok(log)
    }

    /// Sealed-segment starts committed by the manifest, or `None` when
    /// the manifest is missing (first open, or crash damage).
    fn read_manifest(&mut self) -> Result<Option<Vec<(u64, u64)>>, LogError> {
        let path = self.dir.join(MANIFEST);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Err(LogError::Corrupt("manifest: bad magic line".into()));
        }
        let mut sealed = Vec::new();
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("width") => {
                    let w: u64 = parts
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| LogError::Corrupt("manifest: bad width".into()))?;
                    if w != self.width {
                        return Err(LogError::Corrupt(format!(
                            "manifest width {w} does not match requested {}",
                            self.width
                        )));
                    }
                }
                Some("sealed") | Some("archived") => {
                    let mut num = || -> Result<u64, LogError> {
                        parts
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| LogError::Corrupt("manifest: bad segment line".into()))
                    };
                    sealed.push((num()?, num()?));
                }
                Some(other) => {
                    return Err(LogError::Corrupt(format!(
                        "manifest: unknown key {other:?}"
                    )))
                }
                None => {}
            }
        }
        Ok(Some(sealed))
    }

    /// Scans the directory, validating every segment file against the
    /// committed list and classifying it sealed / tail / archived.
    fn adopt_files(&mut self, committed: Option<Vec<(u64, u64)>>) -> Result<(), LogError> {
        let rebuilt = committed.is_none();
        let committed = committed.unwrap_or_default();
        let mut live: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(start) = parse_segment_start(&entry.file_name().to_string_lossy()) {
                live.push(start);
            }
        }
        live.sort_unstable();
        let mut archived: Vec<u64> = Vec::new();
        for entry in fs::read_dir(self.dir.join(ARCHIVE_DIR))? {
            let entry = entry?;
            if let Some(start) = parse_segment_start(&entry.file_name().to_string_lossy()) {
                archived.push(start);
            }
        }
        archived.sort_unstable();
        for start in archived {
            self.archived.push(SegFile {
                start,
                end: start + (self.width - 1),
                path: self.dir.join(ARCHIVE_DIR).join(segment_file_name(start)),
            });
        }
        // a committed file must exist and decode in full
        let committed_starts: Vec<u64> = committed.iter().map(|(s, _)| *s).collect();
        for &(start, end) in &committed {
            let path = self.dir.join(segment_file_name(start));
            if !path.exists() {
                // compaction may have archived it after the manifest
                // was last written; accept the archive copy
                if self.archived.iter().any(|a| a.start == start) {
                    continue;
                }
                return Err(LogError::Corrupt(format!(
                    "manifest lists segment {start} but no file exists"
                )));
            }
            let buf = fs::read(&path)?;
            let mut pos = 0usize;
            loop {
                match scan_record(&buf, pos) {
                    Scan::Record { next, .. } => pos = next,
                    Scan::End(at) if at == buf.len() => break,
                    Scan::End(at) => {
                        return Err(LogError::Corrupt(format!(
                            "committed segment {start} torn at byte {at}"
                        )))
                    }
                }
            }
            self.sealed.push(SegFile { start, end, path });
        }
        // uncommitted live files: all but the newest were sealed but
        // not yet committed (crash between fsync and manifest write);
        // the newest is the tail. Torn bytes truncate off either.
        let uncommitted: Vec<u64> = live
            .into_iter()
            .filter(|s| !committed_starts.contains(s))
            .collect();
        if rebuilt {
            self.recovery.rebuilt_manifest = true;
        }
        for (i, &start) in uncommitted.iter().enumerate() {
            let path = self.dir.join(segment_file_name(start));
            let mut buf = fs::read(&path)?;
            let mut pos = 0usize;
            loop {
                match scan_record(&buf, pos) {
                    Scan::Record { next, .. } => pos = next,
                    Scan::End(at) => {
                        if at < buf.len() {
                            self.recovery.truncated_bytes += (buf.len() - at) as u64;
                            let f = OpenOptions::new().write(true).open(&path)?;
                            f.set_len(at as u64)?;
                            f.sync_all()?;
                            buf.truncate(at);
                        }
                        break;
                    }
                }
            }
            let seg = SegFile {
                start,
                end: start + (self.width - 1),
                path,
            };
            if i + 1 < uncommitted.len() {
                self.recovery.adopted_segments += 1;
                self.sealed.push(seg);
            } else {
                // the newest file is the tail; reopen for append
                let file = OpenOptions::new().append(true).open(&seg.path)?;
                self.tail = Some(Tail {
                    seg,
                    file,
                    bytes: buf.len() as u64,
                });
            }
        }
        self.sealed.sort_by_key(|s| s.start);
        Ok(())
    }

    /// What open had to repair (all zeroes after a clean shutdown).
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// The segment width in epochs.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Highest completed epoch in the log (`None` when empty).
    pub fn last_completed(&self) -> Option<u64> {
        self.last_completed
    }

    /// Whether a FINISH record is on disk.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Number of live (unarchived) sealed segments plus the tail.
    pub fn live_segments(&self) -> usize {
        self.sealed.len() + usize::from(self.tail.is_some())
    }

    /// Number of archived segment files.
    pub fn archived_segments(&self) -> usize {
        self.archived.len()
    }

    /// Arms a crash fault (see [`WriteFault`]). Fault-injection
    /// harnesses only — the armed process WILL abort.
    pub fn arm_fault(&mut self, fault: WriteFault) {
        self.fault = Some(fault);
    }

    /// The arrival epoch the next event record would be stamped with
    /// (mirrors `EventStore::next_arrival`).
    fn next_arrival(&self) -> u64 {
        match self.last_completed {
            Some(e) => e + 1,
            None => 0,
        }
    }

    fn append(&mut self, slot: u64, record: &LogRecord) -> Result<(), LogError> {
        // roll the tail when the slot passes its range
        if self.tail.as_ref().is_some_and(|t| slot > t.seg.end) {
            self.seal_tail()?;
        }
        if self.tail.is_none() {
            let start = (slot / self.width) * self.width;
            let path = self.dir.join(segment_file_name(start));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            self.tail = Some(Tail {
                seg: SegFile {
                    start,
                    end: start + (self.width - 1),
                    path,
                },
                file,
                bytes: 0,
            });
        }
        let mut buf = Vec::with_capacity(80);
        encode_record(record, &mut buf);
        // fault injection: crash before (or torn inside) this write
        if let Some(fault) = self.fault {
            if self.fault_written + buf.len() as u64 > fault.after_bytes {
                let tail = self.tail.as_mut().expect("tail exists");
                if fault.torn {
                    let keep = (fault.after_bytes - self.fault_written) as usize;
                    let keep = keep.clamp(1, buf.len() - 1);
                    let _ = tail.file.write_all(&buf[..keep]);
                    let _ = tail.file.sync_all();
                }
                std::process::abort();
            }
            self.fault_written += buf.len() as u64;
        }
        let tail = self.tail.as_mut().expect("tail exists");
        tail.file.write_all(&buf)?;
        tail.bytes += buf.len() as u64;
        Ok(())
    }

    /// Fsyncs the tail, moves it to the sealed list, and commits the
    /// manifest.
    fn seal_tail(&mut self) -> Result<(), LogError> {
        if let Some(tail) = self.tail.take() {
            tail.file.sync_all()?;
            self.sealed.push(tail.seg);
            self.commit_manifest()?;
        }
        Ok(())
    }

    fn commit_manifest(&self) -> Result<(), LogError> {
        let mut text = format!("{MANIFEST_MAGIC}\nwidth {}\n", self.width);
        for s in &self.sealed {
            text.push_str(&format!("sealed {} {}\n", s.start, s.end));
        }
        for s in &self.archived {
            text.push_str(&format!("archived {} {}\n", s.start, s.end));
        }
        atomic_write(&self.dir.join(MANIFEST), text.as_bytes())?;
        Ok(())
    }

    /// Journals one event (call before applying it to the store).
    pub fn append_event(&mut self, event: &LocationEvent) -> Result<(), LogError> {
        self.append(self.next_arrival(), &LogRecord::Event(*event))
    }

    /// Journals an epoch completion; seals the tail at segment
    /// boundaries exactly when the in-memory store does.
    pub fn complete_epoch(&mut self, epoch: Epoch) -> Result<(), LogError> {
        let e = match self.last_completed {
            Some(prev) => prev.max(epoch.0),
            None => epoch.0,
        };
        self.append(e, &LogRecord::EpochComplete(epoch))?;
        self.last_completed = Some(e);
        if self.tail.as_ref().is_some_and(|t| e >= t.seg.end) {
            self.seal_tail()?;
        }
        Ok(())
    }

    /// Journals end-of-stream and seals the tail.
    pub fn finish(&mut self) -> Result<(), LogError> {
        self.append(self.next_arrival(), &LogRecord::Finish)?;
        self.finished = true;
        self.seal_tail()
    }

    /// Fsyncs the tail file — the durability barrier a checkpoint must
    /// take before committing.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(tail) = &self.tail {
            tail.file.sync_all()?;
        }
        Ok(())
    }

    /// Replays every retained record — archived segments first, then
    /// live ones, in epoch order — through `visit`.
    pub fn replay(
        &self,
        mut visit: impl FnMut(LogRecord) -> Result<(), LogError>,
    ) -> Result<(), LogError> {
        let mut files: Vec<&SegFile> = self.archived.iter().collect();
        files.extend(self.sealed.iter());
        files.sort_by_key(|s| s.start);
        let mut buf = Vec::new();
        let mut replay_file = |seg: &SegFile, buf: &mut Vec<u8>| -> Result<(), LogError> {
            buf.clear();
            File::open(&seg.path)?.read_to_end(buf)?;
            let mut pos = 0usize;
            loop {
                match scan_record(buf, pos) {
                    Scan::Record { record, next } => {
                        visit(record)?;
                        pos = next;
                    }
                    Scan::End(at) if at == buf.len() => return Ok(()),
                    Scan::End(at) => {
                        return Err(LogError::Corrupt(format!(
                            "segment {} torn at byte {at} during replay",
                            seg.start
                        )))
                    }
                }
            }
        };
        for seg in files {
            replay_file(seg, &mut buf)?;
        }
        if let Some(tail) = &self.tail {
            replay_file(&tail.seg, &mut buf)?;
        }
        Ok(())
    }

    /// Moves sealed segments whose range ends at or before `horizon`
    /// into `archive/` — the durable mirror of the store's retention
    /// compaction. Archived data stays replayable; nothing is deleted.
    pub fn archive_up_to(&mut self, horizon: u64) -> Result<(), LogError> {
        let mut moved = false;
        let mut keep = Vec::with_capacity(self.sealed.len());
        for seg in std::mem::take(&mut self.sealed) {
            if seg.end <= horizon {
                let dest = self
                    .dir
                    .join(ARCHIVE_DIR)
                    .join(segment_file_name(seg.start));
                fs::rename(&seg.path, &dest)?;
                self.archived.push(SegFile {
                    start: seg.start,
                    end: seg.end,
                    path: dest,
                });
                moved = true;
            } else {
                keep.push(seg);
            }
        }
        self.sealed = keep;
        if moved {
            self.archived.sort_by_key(|s| s.start);
            self.commit_manifest()?;
        }
        Ok(())
    }

    /// Truncates the live log so its last record is the
    /// EPOCH_COMPLETE mark for `epoch`: later records (re-emitted by a
    /// restarted engine) are dropped, sealed segments past the cut are
    /// deleted, and the manifest is re-committed. No-op error if the
    /// mark is not in the live log (the log ended before `epoch`).
    pub fn truncate_after_epoch(&mut self, epoch: Epoch) -> Result<(), LogError> {
        // locate the cut: scan live files in order for the mark
        let mut live: Vec<SegFile> = self.sealed.clone();
        if let Some(tail) = &self.tail {
            live.push(tail.seg.clone());
        }
        live.sort_by_key(|s| s.start);
        let mut cut: Option<(usize, u64)> = None; // (file index, byte offset)
        for (i, seg) in live.iter().enumerate() {
            let buf = fs::read(&seg.path)?;
            let mut pos = 0usize;
            while let Scan::Record { record, next } = scan_record(&buf, pos) {
                if record == LogRecord::EpochComplete(epoch) {
                    cut = Some((i, next as u64));
                }
                pos = next;
            }
        }
        let Some((file_idx, offset)) = cut else {
            return Err(LogError::Corrupt(format!(
                "no completion mark for epoch {} in the live log",
                epoch.0
            )));
        };
        // drop the tail handle before mutating files
        self.tail = None;
        for seg in &live[file_idx + 1..] {
            fs::remove_file(&seg.path)?;
        }
        let keep = &live[file_idx];
        let f = OpenOptions::new().write(true).open(&keep.path)?;
        f.set_len(offset)?;
        f.sync_all()?;
        // everything before the cut file stays sealed; the cut file
        // becomes the new tail
        self.sealed = live[..file_idx].to_vec();
        let file = OpenOptions::new().append(true).open(&keep.path)?;
        self.tail = Some(Tail {
            seg: keep.clone(),
            file,
            bytes: offset,
        });
        self.last_completed = Some(epoch.0);
        self.finished = false;
        self.commit_manifest()
    }
}

// ---------------------------------------------------------------------
// durable store
// ---------------------------------------------------------------------

/// An [`EventStore`] whose sink calls are journaled to a
/// [`SegmentLog`] before being applied — open it again after a crash
/// and the store state (arrival stamps, sequence numbers, compacted
/// base and all) is rebuilt exactly by replay.
#[derive(Debug)]
pub struct DurableStore {
    store: EventStore,
    log: SegmentLog,
}

impl DurableStore {
    /// Opens (or creates) a durable store in `dir`. The log's segment
    /// width is the store's `segment_epochs`; existing records are
    /// replayed into the fresh store.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<Self, LogError> {
        let log = SegmentLog::open(dir, cfg.segment_epochs)?;
        let mut store = EventStore::new(cfg);
        log.replay(|record| {
            match record {
                LogRecord::Event(ev) => {
                    store.push(&ev);
                }
                LogRecord::EpochComplete(e) => store.complete_epoch(e),
                LogRecord::Finish => store.finish(),
            }
            Ok(())
        })?;
        let mut durable = Self { store, log };
        durable.archive_compacted()?;
        Ok(durable)
    }

    /// The in-memory store (all queries go through it).
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// The underlying log (recovery stats, fault arming).
    pub fn log_mut(&mut self) -> &mut SegmentLog {
        &mut self.log
    }

    /// What opening had to repair.
    pub fn recovery(&self) -> Recovery {
        self.log.recovery()
    }

    /// Journals and applies one event.
    pub fn push(&mut self, event: &LocationEvent) -> Result<(), LogError> {
        self.log.append_event(event)?;
        self.store.push(event);
        Ok(())
    }

    /// Journals and applies an epoch completion; archives any segment
    /// files the store's compaction just dropped.
    pub fn complete_epoch(&mut self, epoch: Epoch) -> Result<(), LogError> {
        self.log.complete_epoch(epoch)?;
        self.store.complete_epoch(epoch);
        self.archive_compacted()
    }

    /// Journals and applies end-of-stream.
    pub fn finish(&mut self) -> Result<(), LogError> {
        self.log.finish()?;
        self.store.finish();
        self.archive_compacted()
    }

    /// Durability barrier: fsync the log tail.
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync()
    }

    fn archive_compacted(&mut self) -> Result<(), LogError> {
        let horizon = self.store.retention_horizon();
        if horizon > 0 {
            self.log.archive_up_to(horizon)?;
        }
        Ok(())
    }
}

/// Sink adapter: journaling failures abort the process (a durability
/// layer that silently drops events would defeat its purpose; use the
/// explicit methods to handle errors).
impl EventSink for DurableStore {
    fn on_event(&mut self, event: &LocationEvent) {
        self.push(event).expect("segment log append failed");
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.complete_epoch(epoch)
            .expect("segment log append failed");
    }

    fn on_finish(&mut self) {
        self.finish().expect("segment log append failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "rfid-log-{name}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ev(epoch: u64, tag: u64, x: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, -0.5, 0.25)).with_stats(
            EventStats {
                var: [0.1, 0.2, 0.0],
                support: 123.0,
            },
        )
    }

    /// Drives `n` epochs into a durable store (tag 1 every epoch, tag
    /// 2 on evens).
    fn feed(d: &mut DurableStore, n: u64) {
        for e in 0..n {
            d.push(&ev(e, 1, e as f64)).unwrap();
            if e % 2 == 0 {
                d.push(&ev(e, 2, -(e as f64))).unwrap();
            }
            d.complete_epoch(Epoch(e)).unwrap();
        }
    }

    fn stored_rows(store: &EventStore) -> Vec<(u64, u64, u64, u64)> {
        store
            .events()
            .map(|s| {
                (
                    s.seq,
                    s.arrival,
                    s.event.tag.0,
                    s.event.location.x.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn records_round_trip() {
        let records = [
            LogRecord::Event(ev(7, 3, 1.5)),
            LogRecord::Event(LocationEvent::new(Epoch(0), TagId(1), Point3::origin())),
            LogRecord::EpochComplete(Epoch(9)),
            LogRecord::Finish,
        ];
        let mut buf = Vec::new();
        for r in &records {
            encode_record(r, &mut buf);
        }
        let mut pos = 0;
        let mut got = Vec::new();
        loop {
            match scan_record(&buf, pos) {
                Scan::Record { record, next } => {
                    got.push(record);
                    pos = next;
                }
                Scan::End(at) => {
                    assert_eq!(at, buf.len());
                    break;
                }
            }
        }
        assert_eq!(got.as_slice(), records.as_slice());
    }

    #[test]
    fn reopen_rebuilds_identical_store_state() {
        let dir = temp_dir("reopen");
        let cfg = StoreConfig::default().with_segment_epochs(4);
        let mut d = DurableStore::open(&dir, cfg).unwrap();
        feed(&mut d, 19);
        d.finish().unwrap();
        let want = stored_rows(d.store());
        let want_stats = d.store().stats();
        drop(d);

        let d2 = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(d2.recovery(), Recovery::default());
        assert_eq!(stored_rows(d2.store()), want);
        assert_eq!(d2.store().stats(), want_stats);
        assert!(d2.store().is_finished());
        assert_eq!(d2.store().latest_epoch(), 18);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_and_reopens() {
        let dir = temp_dir("torn");
        let cfg = StoreConfig::default().with_segment_epochs(8);
        let mut d = DurableStore::open(&dir, cfg).unwrap();
        feed(&mut d, 13);
        let full = stored_rows(d.store());
        drop(d);
        // tear the tail: chop into the middle of the final event
        // record (the trailing EPOCH_COMPLETE record is 21 bytes, so
        // cutting 30 bytes lands mid-event)
        let tail = dir.join(segment_file_name(8));
        let len = fs::metadata(&tail).unwrap().len();
        let f = OpenOptions::new().write(true).open(&tail).unwrap();
        f.set_len(len - 30).unwrap();
        drop(f);

        let d2 = DurableStore::open(&dir, cfg).unwrap();
        assert!(d2.recovery().truncated_bytes > 0);
        let got = stored_rows(d2.store());
        // a strict prefix survived; nothing corrupt leaked through
        assert!(got.len() < full.len());
        assert_eq!(full[..got.len()], got[..]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_rebuilt() {
        let dir = temp_dir("manifest");
        let cfg = StoreConfig::default().with_segment_epochs(4);
        let mut d = DurableStore::open(&dir, cfg).unwrap();
        feed(&mut d, 17);
        let want = stored_rows(d.store());
        drop(d);
        fs::remove_file(dir.join(MANIFEST)).unwrap();

        let d2 = DurableStore::open(&dir, cfg).unwrap();
        assert!(d2.recovery().rebuilt_manifest);
        assert!(d2.recovery().adopted_segments > 0);
        assert_eq!(stored_rows(d2.store()), want);
        assert!(dir.join(MANIFEST).exists(), "manifest re-committed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_archives_instead_of_deleting() {
        let dir = temp_dir("archive");
        let cfg = StoreConfig::default()
            .with_segment_epochs(4)
            .with_retention(8);
        let mut d = DurableStore::open(&dir, cfg).unwrap();
        feed(&mut d, 40);
        d.finish().unwrap();
        assert!(d.store().stats().events_compacted > 0);
        assert!(d.log.archived_segments() > 0, "files moved, not deleted");
        let want = stored_rows(d.store());
        let horizon = d.store().retention_horizon();
        let snap_at_horizon = d.store().snapshot_at(Epoch(horizon)).unwrap();
        drop(d);

        // reopen: archived segments replay too, so the compacted base
        // (and with it snapshot-at-horizon) is rebuilt exactly
        let d2 = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(stored_rows(d2.store()), want);
        assert_eq!(d2.store().retention_horizon(), horizon);
        assert_eq!(
            d2.store().snapshot_at(Epoch(horizon)).unwrap(),
            snap_at_horizon
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_after_epoch_drops_later_records() {
        let dir = temp_dir("truncate");
        let cfg = StoreConfig::default().with_segment_epochs(4);
        let mut d = DurableStore::open(&dir, cfg).unwrap();
        feed(&mut d, 18);
        d.finish().unwrap();
        drop(d);

        // reopen the raw log and cut back to epoch 9 (mid-segment)
        let mut log = SegmentLog::open(&dir, 4).unwrap();
        log.truncate_after_epoch(Epoch(9)).unwrap();
        assert_eq!(log.last_completed(), Some(9));
        assert!(!log.is_finished());
        drop(log);

        let d2 = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(d2.store().latest_epoch(), 9);
        assert!(!d2.store().is_finished());
        assert!(d2.store().events().all(|s| s.arrival <= 9));
        // appending after the cut continues cleanly
        let mut d2 = d2;
        d2.push(&ev(10, 1, 10.0)).unwrap();
        d2.complete_epoch(Epoch(10)).unwrap();
        assert_eq!(d2.store().latest_epoch(), 10);
        // the mark must exist
        let mut log = SegmentLog::open(&dir, 4).unwrap();
        assert!(log.truncate_after_epoch(Epoch(999)).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
