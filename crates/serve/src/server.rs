//! The concurrent TCP query server and its blocking client.
//!
//! Thread-per-connection over `std::net::TcpListener`: the accept loop
//! runs on one thread and every connection gets its own handler
//! thread. All handlers share the store behind `Arc<RwLock<_>>` and
//! take only **read** locks, so any number of queries proceed in
//! parallel with each other and interleave with the single writer (the
//! live ingestion pipeline holding the same `Arc` through a
//! `StoreSink`). Framing is the 4-byte big-endian length prefix from
//! [`crate::query`]; one frame in, one frame out, many frames per
//! connection.

use crate::query::{answer, Query, QueryResponse};
use crate::store::EventStore;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on a single frame's payload (a request line or a
/// response document). Guards the server against garbage prefixes.
pub const MAX_FRAME_BYTES: u32 = 4 << 20;

/// How often a blocked connection handler re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_BYTES)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a
/// frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A running query server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it (handler
    /// threads poll the same flag and exit within [`POLL_INTERVAL`] of
    /// their client going quiet).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // unblock the accept loop with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves queries against `store` until
/// [`ServerHandle::shutdown`]. `addr` is typically
/// `"127.0.0.1:0"` (tests, benches) or a fixed port (deployments).
pub fn serve(addr: &str, store: Arc<RwLock<EventStore>>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("rfid-serve-accept".into())
        .spawn(move || accept_loop(listener, store, accept_stop))?;
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: TcpListener, store: Arc<RwLock<EventStore>>, stop: Arc<AtomicBool>) {
    // handler threads are tracked so shutdown cannot leak a thread
    // holding the store lock mid-answer
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let store = Arc::clone(&store);
        let conn_stop = Arc::clone(&stop);
        let spawned = std::thread::Builder::new()
            .name("rfid-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &store, &conn_stop);
            });
        if let Ok(h) = spawned {
            let mut guard = handlers.lock().expect("handler registry poisoned");
            // opportunistically reap finished handlers
            guard.retain(|h| !h.is_finished());
            guard.push(h);
        }
    }
    let drained = std::mem::take(&mut *handlers.lock().expect("handler registry poisoned"));
    for h in drained {
        let _ = h.join();
    }
}

/// How long a response write may block before the connection is
/// dropped (a client that stops reading must not pin a handler —
/// shutdown joins every handler thread).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Outcome of one polled frame read.
enum PolledFrame {
    Payload(String),
    /// The client closed the connection at a frame boundary.
    Eof,
    /// The server is shutting down.
    Stopped,
}

/// Outcome of one polled exact read.
enum Progress {
    Complete,
    CleanEof,
    Stopped,
}

/// `read_exact` that survives read-timeout ticks *without losing
/// partial progress* (a slow client splitting a frame across ticks
/// must not desync the framing) and polls the shutdown flag while
/// waiting. A clean EOF is only legal before the first byte
/// (`eof_ok_at_start`); mid-buffer EOF is an error.
fn read_exact_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok_at_start: bool,
) -> io::Result<Progress> {
    let mut got = 0usize;
    while got < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(Progress::Stopped);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && eof_ok_at_start {
                    Ok(Progress::CleanEof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue; // poll tick — `got` bytes stay consumed
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Progress::Complete)
}

/// Reads one length-prefixed frame with shutdown polling and
/// partial-progress preservation (see [`read_exact_polling`]).
fn read_frame_polling(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<PolledFrame> {
    let mut len_buf = [0u8; 4];
    match read_exact_polling(stream, &mut len_buf, stop, true)? {
        Progress::Complete => {}
        Progress::CleanEof => return Ok(PolledFrame::Eof),
        Progress::Stopped => return Ok(PolledFrame::Stopped),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_polling(stream, &mut payload, stop, false)? {
        Progress::Complete => {}
        // eof_ok_at_start = false: an EOF here surfaced as Err above
        Progress::CleanEof => unreachable!("mid-frame EOF is an error"),
        Progress::Stopped => return Ok(PolledFrame::Stopped),
    }
    String::from_utf8(payload)
        .map(PolledFrame::Payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn handle_connection(
    mut stream: TcpStream,
    store: &RwLock<EventStore>,
    stop: &AtomicBool,
) -> io::Result<()> {
    // short read timeouts let the handler notice shutdown while its
    // client idles between queries; the write timeout bounds how long
    // a client that stops reading can pin this thread
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    stream.set_nodelay(true)?;
    loop {
        let request = match read_frame_polling(&mut stream, stop)? {
            PolledFrame::Payload(line) => line,
            PolledFrame::Eof | PolledFrame::Stopped => return Ok(()),
        };
        let response = match Query::parse(&request) {
            Ok(query) => {
                let guard = store.read().expect("event store lock poisoned");
                answer(&guard, &query)
            }
            Err(msg) => QueryResponse::Error(msg),
        };
        write_frame(&mut stream, &response.encode())?;
    }
}

/// A blocking client speaking the framed text protocol.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one query and waits for its response.
    pub fn query(&mut self, query: &Query) -> io::Result<QueryResponse> {
        write_frame(&mut self.stream, &query.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-query")
        })?;
        QueryResponse::parse(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends a raw request line (protocol tests).
    pub fn query_raw(&mut self, line: &str) -> io::Result<String> {
        write_frame(&mut self.stream, line)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-query"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "SNAPSHOT 7").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("SNAPSHOT 7"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut r = io::Cursor::new((MAX_FRAME_BYTES + 1).to_be_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "CURRENT 1").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }
}
