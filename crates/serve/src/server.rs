//! The event-driven TCP query server and its blocking client.
//!
//! ## Connection layer
//!
//! A **sharded, non-blocking worker pool** (std-only): one accept
//! thread runs a non-blocking accept loop (waking on the stop flag
//! directly — no self-connect tricks) and deals connections round-robin
//! to `ServerConfig::workers` worker threads. Each worker owns its
//! connections outright and multiplexes them with
//! `TcpStream::set_nonblocking`: per iteration it flushes pending
//! output, reads whatever bytes are available, processes every
//! complete frame, and drains subscription queues into connections
//! with room. Workers spin-yield briefly when idle and then sleep a
//! short interval, so quiet servers cost ~0 CPU while busy ones never
//! sleep.
//!
//! All query evaluation takes only **read** locks on the store, so any
//! number of pulls proceed in parallel with each other and interleave
//! with the single writer (the ingestion pipeline holding the same
//! `Arc` through a `StoreSink`).
//!
//! ## Backpressure
//!
//! Each connection buffers outbound bytes in an outbox. When the
//! outbox passes `ServerConfig::outbox_high_water` the worker stops
//! reading new requests from that connection *and* stops appending
//! push frames to it — pushes then pool in the subscription's bounded
//! queue, whose overflow policy (drop oldest, one `LAGGED` notice per
//! run) is the hub's. A slow subscriber costs a bounded queue, never
//! an unbounded buffer or a desynced frame.
//!
//! Framing is the 4-byte big-endian length prefix from
//! [`crate::query`] — one frame per request, one frame per response or
//! push, many frames per connection. The framing is the stable
//! surface across protocol versions.

use crate::hub::{SubscriptionHandle, SubscriptionHub};
use crate::query::{
    answer, ErrorCode, Frame, Query, QueryResponse, Request, RequestKind, SubscriptionFilter,
    TelemetryCmd, WireError, PROTOCOL_VERSION,
};
use crate::store::{EventStore, LocationRow};
use rfid_stream::wire;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on a single frame's payload (a request line or a
/// response document). Guards the server against garbage prefixes.
pub const MAX_FRAME_BYTES: u32 = 4 << 20;

/// Oldest protocol version the server still speaks.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// How often the accept loop re-checks the stop flag while no
/// connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Idle iterations a worker spin-yields before sleeping.
const IDLE_SPINS: u32 = 64;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads sharing the connections (>= 1).
    pub workers: usize,
    /// Outbox size (bytes) past which a connection stops being read
    /// and stops receiving push frames until it drains.
    pub outbox_high_water: usize,
    /// How long an idle worker sleeps between polls once spinning has
    /// not produced work. Bounds worst-case added latency on an
    /// otherwise idle server.
    pub idle_sleep: Duration,
    /// Accepted connections the server holds at once. An accept past
    /// the bound gets a best-effort `ERR` frame with
    /// [`ErrorCode::Overloaded`] and a clean close — never a silent
    /// hang. `None` is unlimited.
    pub max_connections: Option<usize>,
    /// Largest frame payload accepted from a peer, in bytes. The
    /// 4-byte length prefix is untrusted input: a frame announcing
    /// more than this is answered with a typed `ERR BAD_REQUEST` and a
    /// clean close *before* any allocation, so a corrupt or malicious
    /// prefix can neither balloon memory nor kill the worker silently.
    pub max_frame_len: u32,
    /// Requests slower than this many microseconds are recorded into
    /// the process trace ring (readable via `TELEMETRY TRACE`), with
    /// their verb, duration, and connection id. 0 (the default)
    /// disables the slow-query log entirely.
    pub slow_query_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(1, 4),
            outbox_high_water: 256 << 10,
            idle_sleep: Duration::from_micros(100),
            max_connections: None,
            max_frame_len: MAX_FRAME_BYTES,
            slow_query_us: 0,
        }
    }
}

impl ServerConfig {
    /// Default config with a worker count (>= 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "at least one worker");
        self.workers = workers;
        self
    }

    /// Default config with an outbox high-water mark in bytes.
    pub fn with_outbox_high_water(mut self, bytes: usize) -> Self {
        self.outbox_high_water = bytes;
        self
    }

    /// Default config with a connection bound (>= 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        assert!(max >= 1, "at least one connection");
        self.max_connections = Some(max);
        self
    }

    /// Default config with a frame-payload cap in bytes (>= 16, so a
    /// HELLO still fits).
    pub fn with_max_frame_len(mut self, bytes: u32) -> Self {
        assert!(bytes >= 16, "frames must at least fit a HELLO");
        self.max_frame_len = bytes;
        self
    }

    /// Default config with a slow-query threshold in microseconds
    /// (0 disables).
    pub fn with_slow_query_us(mut self, us: u64) -> Self {
        self.slow_query_us = us;
        self
    }
}

/// Writes one length-prefixed frame (the byte framing is shared with
/// the cluster wire layer in `rfid_stream::wire`).
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    wire::write_frame(w, payload.as_bytes(), MAX_FRAME_BYTES)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF at a
/// frame boundary. The announced length is checked against
/// `MAX_FRAME_BYTES` *before* any allocation; an oversized prefix
/// surfaces as an error carrying [`wire::OversizedFrame`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    match wire::read_frame(r, MAX_FRAME_BYTES)? {
        None => Ok(None),
        Some(payload) => String::from_utf8(payload)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

/// A frame that cannot be accepted: either its announced length is
/// over the connection's cap (detected before allocating) or its
/// payload is not UTF-8. Both are peer-input faults, answered with a
/// typed `ERR BAD_REQUEST` and a clean close instead of a silent drop.
#[derive(Debug)]
enum FrameDecodeError {
    Oversized { len: u32, max: u32 },
    Encoding(std::str::Utf8Error),
}

impl std::fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDecodeError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameDecodeError::Encoding(e) => write!(f, "frame payload is not UTF-8: {e}"),
        }
    }
}

impl From<FrameDecodeError> for io::Error {
    fn from(e: FrameDecodeError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// An incremental frame decoder: bytes go in as they arrive (partial
/// frames survive between reads — a slow peer must never desync the
/// framing), complete frames come out.
#[derive(Debug)]
struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
    /// Per-connection cap on the announced payload length
    /// ([`ServerConfig::max_frame_len`]).
    max: u32,
}

impl FrameBuf {
    fn new(max: u32) -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            max,
        }
    }

    fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// The next complete frame, if the buffer holds one.
    fn next_frame(&mut self) -> Result<Option<String>, FrameDecodeError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes checked");
        let len = u32::from_be_bytes(len_bytes);
        if len > self.max {
            // checked before the payload is buffered or allocated
            return Err(FrameDecodeError::Oversized { len, max: self.max });
        }
        let total = 4 + len as usize;
        if avail < total {
            self.compact();
            return Ok(None);
        }
        let payload = std::str::from_utf8(&self.buf[self.pos + 4..self.pos + total])
            .map_err(FrameDecodeError::Encoding)?
            .to_string();
        self.pos += total;
        self.compact();
        Ok(Some(payload))
    }

    fn compact(&mut self) {
        // reclaim consumed prefix once it dominates the buffer
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 16 << 10) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// A running query server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running for the
/// process lifetime.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    hub: SubscriptionHub,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hub feeding this server's push subscriptions. Compose its
    /// [`SubscriptionHub::sink`] into the ingestion pipeline next to
    /// the store's `StoreSink`.
    pub fn hub(&self) -> &SubscriptionHub {
        &self.hub
    }

    /// Stops the server and joins every thread. The non-blocking
    /// accept loop and the workers observe the flag within their poll
    /// interval — no wake-up connection needed. In-flight responses
    /// already in an outbox are not flushed further; clients see EOF.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves queries against `store` with default
/// config and a private hub (reachable via [`ServerHandle::hub`]).
/// `addr` is typically `"127.0.0.1:0"` (tests, benches) or a fixed
/// port (deployments).
pub fn serve(addr: &str, store: Arc<RwLock<EventStore>>) -> io::Result<ServerHandle> {
    serve_with(
        addr,
        store,
        SubscriptionHub::default(),
        ServerConfig::default(),
    )
}

/// [`serve`] with an explicit hub (shared with the ingestion side)
/// and config.
pub fn serve_with(
    addr: &str,
    store: Arc<RwLock<EventStore>>,
    hub: SubscriptionHub,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::with_capacity(cfg.workers + 1);
    let mut senders = Vec::with_capacity(cfg.workers);
    for w in 0..cfg.workers {
        let (tx, rx) = mpsc::channel::<(TcpStream, ConnPermit)>();
        senders.push(tx);
        let store = Arc::clone(&store);
        let hub = hub.clone();
        let stop = Arc::clone(&stop);
        threads.push(
            std::thread::Builder::new()
                .name(format!("rfid-serve-worker-{w}"))
                .spawn(move || worker_loop(rx, store, hub, stop, cfg))?,
        );
    }
    let accept_stop = Arc::clone(&stop);
    let max_connections = cfg.max_connections;
    threads.insert(
        0,
        std::thread::Builder::new()
            .name("rfid-serve-accept".into())
            .spawn(move || accept_loop(listener, senders, accept_stop, max_connections))?,
    );
    Ok(ServerHandle {
        addr: local,
        stop,
        hub,
        threads,
    })
}

/// A slot in the connection count, released when the worker drops the
/// connection.
#[derive(Debug)]
struct ConnPermit(Arc<AtomicUsize>);

impl ConnPermit {
    /// Takes a slot unless `max` are already held.
    fn acquire(count: &Arc<AtomicUsize>, max: Option<usize>) -> Option<Self> {
        let prev = count.fetch_add(1, Ordering::SeqCst);
        if max.is_some_and(|m| prev >= m) {
            count.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(Self(Arc::clone(count)))
    }
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Tells an over-limit peer why it is being closed: one best-effort
/// `ERR` frame with [`ErrorCode::Overloaded`], then the close. The
/// accepted socket is still blocking, so a short write timeout bounds
/// how long a pathological peer can hold the accept loop.
fn refuse_connection(mut stream: TcpStream, max: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let frame = Frame::Err {
        id: 0,
        error: WireError::new(
            ErrorCode::Overloaded,
            format!("connection limit of {max} reached, try again later"),
        ),
    };
    let _ = write_frame(&mut stream, &frame.encode());
}

/// Non-blocking accept loop: deals connections round-robin to the
/// workers, sleeping [`ACCEPT_POLL`] when none are pending so the stop
/// flag is observed directly. Accepts past
/// [`ServerConfig::max_connections`] are refused with a typed error.
fn accept_loop(
    listener: TcpListener,
    senders: Vec<mpsc::Sender<(TcpStream, ConnPermit)>>,
    stop: Arc<AtomicBool>,
    max_connections: Option<usize>,
) {
    let count = Arc::new(AtomicUsize::new(0));
    let mut next = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let Some(permit) = ConnPermit::acquire(&count, max_connections) else {
                    refuse_connection(stream, max_connections.expect("bounded"));
                    continue;
                };
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                // a worker that exited (only at shutdown) drops its
                // receiver; the send error is then irrelevant
                let _ = senders[next % senders.len()].send((stream, permit));
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Process-wide connection id counter; ids appear in slow-query trace
/// entries so one connection's requests can be correlated.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(1);

/// One multiplexed connection owned by a worker.
struct Conn {
    stream: TcpStream,
    inbuf: FrameBuf,
    outbuf: VecDeque<u8>,
    /// Negotiated protocol version (1 until a `HELLO` upgrade).
    version: u32,
    subs: Vec<SubscriptionHandle>,
    closed: bool,
    /// Process-unique id (trace correlation).
    id: u64,
    /// When the outbox crossed the high-water mark and stalled the
    /// connection; `None` while draining normally.
    stalled_since: Option<Instant>,
    /// Held for the connection's lifetime; dropping it releases the
    /// slot counted against `ServerConfig::max_connections`.
    _permit: ConnPermit,
}

impl Conn {
    fn new(stream: TcpStream, permit: ConnPermit, max_frame_len: u32) -> Self {
        Self {
            stream,
            inbuf: FrameBuf::new(max_frame_len),
            outbuf: VecDeque::new(),
            version: 1,
            subs: Vec::new(),
            closed: false,
            id: NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed),
            stalled_since: None,
            _permit: permit,
        }
    }

    fn enqueue(&mut self, payload: &str) {
        let bytes = payload.as_bytes();
        debug_assert!(bytes.len() as u64 <= MAX_FRAME_BYTES as u64);
        self.outbuf
            .extend((bytes.len() as u32).to_be_bytes().iter().copied());
        self.outbuf.extend(bytes.iter().copied());
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush(&mut self) -> io::Result<usize> {
        let mut written = 0usize;
        while !self.outbuf.is_empty() {
            let (front, _) = self.outbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted 0 bytes",
                    ))
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

/// The server's registry handles, fetched once per worker thread:
/// per-verb request latency histograms plus outbox stall accounting.
struct ServeMetrics {
    current: rfid_obs::Histogram,
    trail: rfid_obs::Histogram,
    snapshot: rfid_obs::Histogram,
    contain: rfid_obs::Histogram,
    subscribe: rfid_obs::Histogram,
    unsubscribe: rfid_obs::Histogram,
    telemetry: rfid_obs::Histogram,
    /// Below-to-above high-water transitions of any outbox.
    stalls: rfid_obs::Counter,
    /// Total microseconds connections spent stalled (added when a
    /// stall ends).
    stalled_us: rfid_obs::Counter,
}

impl ServeMetrics {
    fn registered() -> Self {
        let reg = rfid_obs::global();
        Self {
            current: reg.histogram("server_query_us_current"),
            trail: reg.histogram("server_query_us_trail"),
            snapshot: reg.histogram("server_query_us_snapshot"),
            contain: reg.histogram("server_query_us_contain"),
            subscribe: reg.histogram("server_query_us_subscribe"),
            unsubscribe: reg.histogram("server_query_us_unsubscribe"),
            telemetry: reg.histogram("server_query_us_telemetry"),
            stalls: reg.counter("server_outbox_stalls_total"),
            stalled_us: reg.counter("server_outbox_stalled_us_total"),
        }
    }

    fn for_verb(&self, verb: &str) -> Option<&rfid_obs::Histogram> {
        Some(match verb {
            "CURRENT" => &self.current,
            "TRAIL" => &self.trail,
            "SNAPSHOT" => &self.snapshot,
            "CONTAIN" => &self.contain,
            "SUBSCRIBE" => &self.subscribe,
            "UNSUBSCRIBE" => &self.unsubscribe,
            "TELEMETRY" => &self.telemetry,
            _ => return None,
        })
    }

    /// Records one served request: its verb histogram, and a
    /// slow-query trace entry when past the configured threshold.
    fn observe_request(
        &self,
        cfg: &ServerConfig,
        conn_id: u64,
        verb: &'static str,
        start: Instant,
    ) {
        let dur_us = start.elapsed().as_micros() as u64;
        if let Some(h) = self.for_verb(verb) {
            h.record(dur_us);
        }
        if cfg.slow_query_us > 0 && dur_us >= cfg.slow_query_us {
            let mut entry = rfid_obs::TraceEntry::new("slow_query", dur_us);
            entry.what = verb;
            entry.conn = conn_id;
            rfid_obs::trace().record(entry);
        }
    }
}

fn worker_loop(
    incoming: mpsc::Receiver<(TcpStream, ConnPermit)>,
    store: Arc<RwLock<EventStore>>,
    hub: SubscriptionHub,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    let metrics = ServeMetrics::registered();
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut spins = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        while let Ok((stream, permit)) = incoming.try_recv() {
            conns.push(Conn::new(stream, permit, cfg.max_frame_len));
            progressed = true;
        }
        for conn in conns.iter_mut() {
            match pump(conn, &store, &hub, &cfg, &metrics, &mut scratch) {
                Ok(p) => progressed |= p,
                Err(_) => conn.closed = true,
            }
        }
        conns.retain_mut(|c| {
            if c.closed {
                for sub in &c.subs {
                    sub.cancel();
                }
                false
            } else {
                true
            }
        });
        if progressed {
            spins = 0;
        } else if spins < IDLE_SPINS {
            spins += 1;
            std::thread::yield_now();
        } else {
            std::thread::sleep(cfg.idle_sleep);
        }
    }
    // shutdown: cancel subscriptions so the hub prunes them
    for conn in &conns {
        for sub in &conn.subs {
            sub.cancel();
        }
    }
}

/// One service iteration of one connection: flush, read + process,
/// drain subscriptions, flush. Returns whether any progress happened.
fn pump(
    conn: &mut Conn,
    store: &RwLock<EventStore>,
    hub: &SubscriptionHub,
    cfg: &ServerConfig,
    metrics: &ServeMetrics,
    scratch: &mut [u8],
) -> io::Result<bool> {
    let mut progressed = conn.flush()? > 0;

    // process buffered requests and read new ones, but only while the
    // peer drains its responses — a pipelining client cannot grow the
    // outbox past the high-water mark plus one response
    loop {
        while conn.outbuf.len() < cfg.outbox_high_water {
            match conn.inbuf.next_frame() {
                Ok(Some(payload)) => {
                    process_frame(conn, store, hub, cfg, metrics, &payload);
                    progressed = true;
                }
                Ok(None) => break,
                Err(e) => {
                    // a peer-input fault (oversized or non-UTF-8
                    // frame): tell the peer why, then close cleanly —
                    // the framing cannot be resynced after this
                    let frame = Frame::Err {
                        id: 0,
                        error: WireError::bad_request(e.to_string()),
                    };
                    conn.enqueue(&frame.encode());
                    let _ = conn.flush();
                    conn.closed = true;
                    return Ok(true);
                }
            }
        }
        if conn.outbuf.len() >= cfg.outbox_high_water {
            break;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.closed = true;
                return Ok(true);
            }
            Ok(n) => {
                conn.inbuf.extend(&scratch[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    // drain subscription queues into the outbox while there is room
    let mut i = 0;
    while i < conn.subs.len() && conn.outbuf.len() < cfg.outbox_high_water {
        if let Some(frame) = conn.subs[i].poll() {
            conn.enqueue(&frame.encode());
            progressed = true;
        } else {
            i += 1;
        }
    }

    progressed |= conn.flush()? > 0;

    // stall transition accounting: entering a stall (outbox at or past
    // the high-water mark) counts once; leaving it adds the stalled
    // duration. Both edges were previously invisible to operators.
    let stalled = conn.outbuf.len() >= cfg.outbox_high_water;
    match (stalled, conn.stalled_since) {
        (true, None) => {
            conn.stalled_since = Some(Instant::now());
            metrics.stalls.inc();
        }
        (false, Some(since)) => {
            metrics.stalled_us.add(since.elapsed().as_micros() as u64);
            conn.stalled_since = None;
        }
        _ => {}
    }
    Ok(progressed)
}

/// Handles one request frame, appending whatever response frames it
/// produces to the connection's outbox.
fn process_frame(
    conn: &mut Conn,
    store: &RwLock<EventStore>,
    hub: &SubscriptionHub,
    cfg: &ServerConfig,
    metrics: &ServeMetrics,
    payload: &str,
) {
    // HELLO is version-independent: it is what *sets* the version
    if let Some(rest) = payload.strip_prefix("HELLO") {
        let reply = match rest.trim().parse::<u32>() {
            Ok(v) if v >= MIN_PROTOCOL_VERSION => {
                let negotiated = v.min(PROTOCOL_VERSION);
                conn.version = negotiated;
                Frame::Hello {
                    version: negotiated,
                }
            }
            Ok(v) => Frame::Err {
                id: 0,
                error: WireError::new(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "version {v} not supported (server speaks \
                         {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                    ),
                ),
            },
            Err(e) => Frame::Err {
                id: 0,
                error: WireError::bad_request(format!("HELLO: bad version: {e}")),
            },
        };
        conn.enqueue(&reply.encode());
        return;
    }
    if conn.version >= 2 {
        let frame = match Request::parse(payload) {
            Ok(req) => {
                let verb = req.kind.verb();
                let start = Instant::now();
                let frame = process_request(conn, store, hub, req);
                metrics.observe_request(cfg, conn.id, verb, start);
                frame
            }
            Err((id, error)) => Frame::Err { id, error },
        };
        conn.enqueue(&frame.encode());
        return;
    }
    // v1: a bare query line, one codeless envelope per response
    let response = match RequestKind::parse(payload) {
        Ok(kind @ RequestKind::Query(_)) => {
            let verb = kind.verb();
            let RequestKind::Query(q) = kind else {
                unreachable!("matched a query")
            };
            let start = Instant::now();
            let response = {
                let guard = crate::lock::read_recover(store.read());
                answer(&guard, &q)
            };
            metrics.observe_request(cfg, conn.id, verb, start);
            response
        }
        Ok(RequestKind::Subscribe(_) | RequestKind::Unsubscribe(_) | RequestKind::Telemetry(_)) => {
            QueryResponse::Error(WireError::new(
                ErrorCode::UnsupportedVersion,
                "subscriptions and telemetry need protocol version >= 2 (send HELLO 2 first)",
            ))
        }
        Err(error) => QueryResponse::Error(error),
    };
    conn.enqueue(&response.encode());
}

/// Evaluates one parsed v2 request into its response frame.
fn process_request(
    conn: &mut Conn,
    store: &RwLock<EventStore>,
    hub: &SubscriptionHub,
    req: Request,
) -> Frame {
    let id = req.id;
    match req.kind {
        RequestKind::Query(q) => {
            let guard = crate::lock::read_recover(store.read());
            match answer(&guard, &q) {
                QueryResponse::Rows(rows) => Frame::Ok { id, rows },
                QueryResponse::Error(error) => Frame::Err { id, error },
            }
        }
        RequestKind::Subscribe(filter) => {
            if conn.subs.iter().any(|s| s.id() == id) {
                return Frame::Err {
                    id,
                    error: WireError::bad_request(format!("subscription id {id} already in use")),
                };
            }
            conn.subs.push(hub.subscribe(id, filter));
            Frame::Ok { id, rows: vec![] }
        }
        RequestKind::Unsubscribe(sub_id) => match conn.subs.iter().position(|s| s.id() == sub_id) {
            Some(i) => {
                conn.subs.remove(i).cancel();
                Frame::Ok { id, rows: vec![] }
            }
            None => Frame::Err {
                id,
                error: WireError::new(
                    ErrorCode::UnknownSubscription,
                    format!("no subscription {sub_id} on this connection"),
                ),
            },
        },
        // answered from the process-wide registry/trace ring without
        // ever taking the store lock — a scrape can never contend
        // with ingestion or queries
        RequestKind::Telemetry(cmd) => Frame::Telemetry {
            id,
            body: match cmd {
                TelemetryCmd::Metrics => rfid_obs::global().snapshot().render(),
                TelemetryCmd::Trace => rfid_obs::trace().render(),
            },
        },
    }
}

// ---------------------------------------------------------------------
// client
// ---------------------------------------------------------------------

/// Configures a [`QueryClient`] before the TCP connect + handshake.
/// Obtained from [`QueryClient::connect`]; finished with
/// [`ClientBuilder::establish`].
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    addr: SocketAddr,
    timeout: Option<Duration>,
    protocol_version: u32,
}

impl ClientBuilder {
    /// Read/write timeout for every socket operation. Reads that time
    /// out mid-frame keep their partial progress — the next call
    /// resumes the same frame, never desyncing the framing.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Protocol version to request (default: [`PROTOCOL_VERSION`]).
    /// `1` skips the `HELLO` handshake entirely — the legacy wire
    /// dialect. The server may negotiate downward; see
    /// [`QueryClient::version`].
    pub fn protocol_version(mut self, version: u32) -> Self {
        assert!(version >= 1, "protocol versions start at 1");
        self.protocol_version = version;
        self
    }

    /// Connects and (for versions >= 2) performs the `HELLO`
    /// handshake.
    pub fn establish(self) -> io::Result<QueryClient> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.timeout)?;
        stream.set_write_timeout(self.timeout)?;
        let mut client = QueryClient {
            stream,
            version: 1,
            next_id: 1,
            inbuf: FrameBuf::new(MAX_FRAME_BYTES),
            pending_pushes: VecDeque::new(),
        };
        if self.protocol_version >= 2 {
            write_frame(
                &mut client.stream,
                &format!("HELLO {}", self.protocol_version),
            )?;
            match Frame::parse(&client.read_frame_buffered()?) {
                Ok(Frame::Hello { version }) => client.version = version,
                Ok(Frame::Err { error, .. }) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("server refused handshake: {error}"),
                    ))
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected handshake reply: {other:?}"),
                    ))
                }
            }
        }
        Ok(client)
    }
}

/// A blocking client speaking the framed text protocol (both
/// versions).
///
/// ```no_run
/// # use rfid_serve::{Query, QueryClient};
/// # use std::time::Duration;
/// # let addr: std::net::SocketAddr = "127.0.0.1:4000".parse().unwrap();
/// let mut client = QueryClient::connect(addr)
///     .timeout(Duration::from_secs(2))
///     .establish()?;
/// let rows = client.query(&Query::SnapshotAt(rfid_stream::Epoch(40)))?.into_rows();
/// # std::io::Result::Ok(())
/// ```
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
    version: u32,
    next_id: u64,
    inbuf: FrameBuf,
    /// Push/lag frames that arrived while waiting for a pull response.
    pending_pushes: VecDeque<Frame>,
}

impl QueryClient {
    /// Starts building a connection to a server. The builder's
    /// [`ClientBuilder::establish`] performs the TCP connect and
    /// handshake.
    pub fn connect(addr: SocketAddr) -> ClientBuilder {
        ClientBuilder {
            addr,
            timeout: None,
            protocol_version: PROTOCOL_VERSION,
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Reads one frame, buffering partial progress across timeouts so
    /// an expired [`ClientBuilder::timeout`] never desyncs framing.
    fn read_frame_buffered(&mut self) -> io::Result<String> {
        loop {
            if let Some(frame) = self.inbuf.next_frame()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.inbuf.extend(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one query and waits for its response; push frames that
    /// arrive in between are retained for [`QueryClient::next_push`].
    pub fn query(&mut self, query: &Query) -> io::Result<QueryResponse> {
        if self.version < 2 {
            write_frame(&mut self.stream, &query.encode())?;
            let payload = self.read_frame_buffered()?;
            return QueryResponse::parse(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
        let id = self.fresh_id();
        let request = Request {
            id,
            kind: RequestKind::Query(*query),
        };
        write_frame(&mut self.stream, &request.encode())?;
        match self.await_response(id)? {
            Ok(rows) => Ok(QueryResponse::Rows(rows)),
            Err(error) => Ok(QueryResponse::Error(error)),
        }
    }

    /// Registers a push subscription and returns its id (protocol
    /// version >= 2 only). Frames then arrive via
    /// [`QueryClient::next_push`].
    pub fn subscribe(&mut self, filter: &SubscriptionFilter) -> io::Result<u64> {
        if self.version < 2 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "subscriptions need protocol version >= 2",
            ));
        }
        let id = self.fresh_id();
        let request = Request {
            id,
            kind: RequestKind::Subscribe(filter.clone()),
        };
        write_frame(&mut self.stream, &request.encode())?;
        self.await_response(id)?
            .map(|_| id)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Cancels a subscription made on this connection. Already-queued
    /// push frames may still arrive before the acknowledgement.
    pub fn unsubscribe(&mut self, subscription: u64) -> io::Result<()> {
        let id = self.fresh_id();
        let request = Request {
            id,
            kind: RequestKind::Unsubscribe(subscription),
        };
        write_frame(&mut self.stream, &request.encode())?;
        self.await_response(id)?
            .map(|_| ())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Scrapes the server's observability surface (protocol version 2
    /// and above only): the metrics registry in text exposition, or
    /// the slow-epoch/slow-query trace ring.
    pub fn telemetry(&mut self, cmd: TelemetryCmd) -> io::Result<String> {
        if self.version < 2 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "telemetry needs protocol version >= 2",
            ));
        }
        let id = self.fresh_id();
        let request = Request {
            id,
            kind: RequestKind::Telemetry(cmd),
        };
        write_frame(&mut self.stream, &request.encode())?;
        loop {
            let payload = self.read_frame_buffered()?;
            match Frame::parse(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                Frame::Telemetry { id: got, body } if got == id => return Ok(body),
                Frame::Err { id: got, error } if got == id => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        error.to_string(),
                    ))
                }
                frame @ (Frame::Push { .. } | Frame::Lagged { .. }) => {
                    self.pending_pushes.push_back(frame);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response for unexpected request: {other:?}"),
                    ))
                }
            }
        }
    }

    /// The next push or lag frame: [`Frame::Push`] or
    /// [`Frame::Lagged`]. Blocks until one arrives (or the configured
    /// timeout expires — partial frames survive the timeout).
    pub fn next_push(&mut self) -> io::Result<Frame> {
        if let Some(frame) = self.pending_pushes.pop_front() {
            return Ok(frame);
        }
        let payload = self.read_frame_buffered()?;
        match Frame::parse(&payload) {
            Ok(frame @ (Frame::Push { .. } | Frame::Lagged { .. })) => Ok(frame),
            Ok(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a push frame, got {other:?}"),
            )),
            Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Sends a raw request line and returns the next non-push frame's
    /// payload (protocol tests).
    pub fn query_raw(&mut self, line: &str) -> io::Result<String> {
        write_frame(&mut self.stream, line)?;
        loop {
            let payload = self.read_frame_buffered()?;
            if self.version >= 2 {
                if let Ok(Frame::Push { .. } | Frame::Lagged { .. }) = Frame::parse(&payload) {
                    self.pending_pushes
                        .push_back(Frame::parse(&payload).expect("just parsed"));
                    continue;
                }
            }
            return Ok(payload);
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Reads frames until the response for `id`, stashing push frames
    /// that interleave.
    fn await_response(&mut self, id: u64) -> io::Result<Result<Vec<LocationRow>, WireError>> {
        loop {
            let payload = self.read_frame_buffered()?;
            match Frame::parse(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                Frame::Ok { id: got, rows } if got == id => return Ok(Ok(rows)),
                Frame::Err { id: got, error } if got == id => return Ok(Err(error)),
                frame @ (Frame::Push { .. } | Frame::Lagged { .. }) => {
                    self.pending_pushes.push_back(frame);
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response for unexpected request: {other:?}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "SNAPSHOT 7").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("SNAPSHOT 7"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_refused() {
        let mut r = io::Cursor::new((MAX_FRAME_BYTES + 1).to_be_bytes().to_vec());
        assert!(read_frame(&mut r).is_err());
        let mut fb = FrameBuf::new(MAX_FRAME_BYTES);
        fb.extend(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        assert!(fb.next_frame().is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "CURRENT 1").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = io::Cursor::new(buf);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn frame_buf_reassembles_byte_dribbles() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "CURRENT 1").unwrap();
        write_frame(&mut wire, "SNAPSHOT 9 SINCE 4").unwrap();
        let mut fb = FrameBuf::new(MAX_FRAME_BYTES);
        let mut got = Vec::new();
        for b in wire {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec!["CURRENT 1", "SNAPSHOT 9 SINCE 4"]);
    }
}
