//! The subscription hub: fan-out of committed location changes to
//! push subscribers.
//!
//! The hub sits beside the [`EventStore`] on the ingestion path. The
//! pipeline fans its event stream into both via the sink tuple —
//!
//! ```text
//! pipeline ─► (StoreSink(store), hub.sink()) ─► per-subscription queues
//! ```
//!
//! [`HubSink`] runs a [`LocationChangeQuery`] (threshold 0.0 by
//! default — the exact `Istream` semantics of `LocationChangeSink`)
//! over the stream and, at every completed epoch, commits the fired
//! changes as one delta per subscription whose
//! [`SubscriptionFilter`] matches. Deltas are stamped with the
//! **arrival epoch** under the same convention as the store (events
//! delivered between the completions of `E-1` and `E` arrive at `E`;
//! end-of-stream flush events arrive at `last + 1`), so a `PUSH`
//! frame's epoch names exactly the store state that contains its rows.
//!
//! ## Backpressure
//!
//! Every subscription owns a **bounded** queue of pending frames. A
//! subscriber that stops draining (slow socket, stalled client) gets
//! its oldest pending frames dropped — never an unbounded buffer —
//! and the dropped row count accumulates into a lag counter. The next
//! successful poll delivers exactly one [`Frame::Lagged`] carrying the
//! count before any newer frames: one notice per overflow run, in the
//! stream position where the gap actually is.
//!
//! [`EventStore`]: crate::store::EventStore
//! [`LocationChangeQuery`]: rfid_stream::queries::LocationChangeQuery

use crate::query::{Frame, SubscriptionFilter};
use crate::store::LocationRow;
use rfid_stream::pipeline::sinks::LocationUpdate;
use rfid_stream::queries::LocationChangeQuery;
use rfid_stream::{Epoch, EventSink, LocationEvent};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hub knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubConfig {
    /// Movement threshold in feet for the change query; 0.0 fires on
    /// every reported movement (and the first report of each tag) —
    /// identical to `LocationChangeSink::new(0.0)`.
    pub threshold: f64,
    /// Per-subscription queue capacity in frames (>= 1). When a
    /// subscriber falls this many committed deltas behind, its oldest
    /// frames are dropped and counted into a `LAGGED` notice.
    pub queue_frames: usize,
    /// Record an `(arrival epoch, Instant)` entry per non-empty
    /// committed delta — the join key load generators use to measure
    /// push fan-out latency. Off by default (serving does not need it).
    pub record_commits: bool,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            queue_frames: 64,
            record_commits: false,
        }
    }
}

impl HubConfig {
    /// Default config with a queue capacity (>= 1 frame).
    pub fn with_queue_frames(mut self, frames: usize) -> Self {
        assert!(frames >= 1, "subscription queues hold at least 1 frame");
        self.queue_frames = frames;
        self
    }

    /// Default config with a movement threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Enables the commit log.
    pub fn with_commit_log(mut self) -> Self {
        self.record_commits = true;
        self
    }
}

/// One committed delta pending delivery to one subscription.
#[derive(Debug, Clone, PartialEq)]
struct PendingPush {
    epoch: u64,
    rows: Vec<LocationRow>,
}

#[derive(Debug)]
struct SubQueue {
    frames: VecDeque<PendingPush>,
    /// Rows dropped since the last delivered frame; reported as one
    /// `LAGGED` on the next poll.
    pending_lagged: u64,
    /// Total rows ever dropped (observability).
    dropped_total: u64,
    closed: bool,
}

#[derive(Debug)]
struct SubEntry {
    filter: SubscriptionFilter,
    queue: Arc<Mutex<SubQueue>>,
}

/// The hub's registry handles: enqueued frames, dropped rows, and
/// overflow runs (one per `LAGGED` notice owed).
#[derive(Debug)]
struct HubMetrics {
    delivered: rfid_obs::Counter,
    dropped: rfid_obs::Counter,
    lagged: rfid_obs::Counter,
}

impl Default for HubMetrics {
    fn default() -> Self {
        let reg = rfid_obs::global();
        Self {
            delivered: reg.counter("hub_delivered_total"),
            dropped: reg.counter("hub_dropped_total"),
            lagged: reg.counter("hub_lagged_total"),
        }
    }
}

#[derive(Debug, Default)]
struct HubShared {
    subs: Mutex<Vec<SubEntry>>,
    commits: Mutex<Vec<(u64, Instant)>>,
    metrics: HubMetrics,
}

/// The shared hub: subscriptions register here, [`HubSink`] commits
/// deltas into it. Cheap to clone (an `Arc` handle).
#[derive(Debug, Clone, Default)]
pub struct SubscriptionHub {
    cfg: HubConfig,
    shared: Arc<HubShared>,
}

impl SubscriptionHub {
    /// A hub with the given knobs.
    pub fn new(cfg: HubConfig) -> Self {
        assert!(cfg.queue_frames >= 1);
        Self {
            cfg,
            shared: Arc::default(),
        }
    }

    /// The configuration the hub was built with.
    pub fn config(&self) -> &HubConfig {
        &self.cfg
    }

    /// The ingestion-side sink. Compose it into the pipeline's sink
    /// tuple next to the store, e.g.
    /// `(StoreSink::new(store), hub.sink())`.
    pub fn sink(&self) -> HubSink {
        HubSink {
            query: LocationChangeQuery::new(self.cfg.threshold),
            pending: Vec::new(),
            last_completed: None,
            hub: self.clone(),
        }
    }

    /// Registers a subscription under `id` (in the wire protocol: the
    /// id of the `SUBSCRIBE` request). The handle is the consumption
    /// side; dropping it without [`SubscriptionHandle::cancel`] leaks
    /// the registration until the hub prunes it on a later commit.
    pub fn subscribe(&self, id: u64, filter: SubscriptionFilter) -> SubscriptionHandle {
        let queue = Arc::new(Mutex::new(SubQueue {
            frames: VecDeque::with_capacity(self.cfg.queue_frames),
            pending_lagged: 0,
            dropped_total: 0,
            closed: false,
        }));
        crate::lock::mutex_recover(self.shared.subs.lock()).push(SubEntry {
            filter,
            queue: Arc::clone(&queue),
        });
        SubscriptionHandle { id, queue }
    }

    /// Live subscriptions (cancelled ones disappear after the next
    /// commit prunes them).
    pub fn subscriber_count(&self) -> usize {
        crate::lock::mutex_recover(self.shared.subs.lock()).len()
    }

    /// The commit log: one `(arrival epoch, commit Instant)` per
    /// non-empty committed delta, when enabled via
    /// [`HubConfig::record_commits`].
    pub fn commit_log(&self) -> Vec<(u64, Instant)> {
        crate::lock::mutex_recover(self.shared.commits.lock()).clone()
    }

    /// Fans one committed delta out to every matching subscription and
    /// prunes cancelled ones.
    fn commit(&self, epoch: u64, updates: &[LocationUpdate]) {
        if updates.is_empty() {
            return;
        }
        let mut delivered = false;
        let mut subs = crate::lock::mutex_recover(self.shared.subs.lock());
        subs.retain(|sub| {
            let mut q = crate::lock::mutex_recover(sub.queue.lock());
            if q.closed {
                return false;
            }
            let rows: Vec<LocationRow> = updates
                .iter()
                .filter(|u| sub.filter.matches(u))
                .map(|u| LocationRow {
                    tag: u.tag,
                    epoch: u.epoch,
                    location: u.location,
                })
                .collect();
            if rows.is_empty() {
                return true;
            }
            while q.frames.len() >= self.cfg.queue_frames {
                let dropped = q.frames.pop_front().expect("non-empty queue");
                if q.pending_lagged == 0 {
                    // a fresh overflow run: exactly one LAGGED notice
                    // will be owed, so count runs, not drops
                    self.shared.metrics.lagged.inc();
                }
                q.pending_lagged += dropped.rows.len() as u64;
                q.dropped_total += dropped.rows.len() as u64;
                self.shared.metrics.dropped.add(dropped.rows.len() as u64);
            }
            q.frames.push_back(PendingPush { epoch, rows });
            self.shared.metrics.delivered.inc();
            delivered = true;
            true
        });
        drop(subs);
        if delivered && self.cfg.record_commits {
            crate::lock::mutex_recover(self.shared.commits.lock()).push((epoch, Instant::now()));
        }
    }
}

/// The consumption side of one subscription: the connection (or an
/// in-process consumer) polls it for the next outbound frame.
#[derive(Debug, Clone)]
pub struct SubscriptionHandle {
    id: u64,
    queue: Arc<Mutex<SubQueue>>,
}

impl SubscriptionHandle {
    /// The subscription id (echoed on every frame).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The next outbound frame, if any: exactly one
    /// [`Frame::Lagged`] per overflow run (delivered before the frames
    /// that survived the drops), otherwise the oldest pending
    /// [`Frame::Push`].
    pub fn poll(&self) -> Option<Frame> {
        let mut q = crate::lock::mutex_recover(self.queue.lock());
        if q.pending_lagged > 0 {
            let dropped = std::mem::take(&mut q.pending_lagged);
            return Some(Frame::Lagged {
                id: self.id,
                dropped,
            });
        }
        q.frames.pop_front().map(|p| Frame::Push {
            id: self.id,
            epoch: p.epoch,
            rows: p.rows,
        })
    }

    /// Frames currently queued (not counting a pending lag notice).
    pub fn pending_frames(&self) -> usize {
        crate::lock::mutex_recover(self.queue.lock()).frames.len()
    }

    /// Total rows dropped over the subscription's lifetime.
    pub fn dropped_rows(&self) -> u64 {
        crate::lock::mutex_recover(self.queue.lock()).dropped_total
    }

    /// Cancels the subscription: no further frames are queued and the
    /// hub forgets it on its next commit.
    pub fn cancel(&self) {
        let mut q = crate::lock::mutex_recover(self.queue.lock());
        q.closed = true;
        q.frames.clear();
        q.pending_lagged = 0;
    }
}

/// The hub's [`EventSink`]: runs the change query on the ingestion
/// thread and commits fired updates at every epoch completion, stamped
/// with the store's arrival-epoch convention.
#[derive(Debug)]
pub struct HubSink {
    query: LocationChangeQuery,
    /// Updates fired since the last commit; all share the same arrival
    /// stamp (the arrival clock only advances on completion).
    pending: Vec<LocationUpdate>,
    last_completed: Option<u64>,
    hub: SubscriptionHub,
}

impl HubSink {
    /// Arrival epoch the next delivered event would be stamped with
    /// (mirrors `EventStore::next_arrival`).
    fn next_arrival(&self) -> u64 {
        match self.last_completed {
            Some(e) => e + 1,
            None => 0,
        }
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let arrival = self.next_arrival();
        let pending = std::mem::take(&mut self.pending);
        self.hub.commit(arrival, &pending);
    }
}

impl EventSink for HubSink {
    fn on_event(&mut self, event: &LocationEvent) {
        if let Some((tag, location)) = self.query.push(event) {
            self.pending.push(LocationUpdate {
                epoch: event.epoch,
                tag,
                location,
            });
        }
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.flush();
        self.last_completed = Some(match self.last_completed {
            Some(prev) => prev.max(epoch.0),
            None => epoch.0,
        });
    }

    fn on_finish(&mut self) {
        // flush-time updates arrive after the last completed epoch
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Point3;
    use rfid_stream::TagId;

    fn ev(epoch: u64, tag: u64, x: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, 0.0, 0.0))
    }

    #[test]
    fn push_frames_carry_arrival_epochs_and_match_filters() {
        let hub = SubscriptionHub::new(HubConfig::default());
        let all = hub.subscribe(1, SubscriptionFilter::All);
        let tag2 = hub.subscribe(2, SubscriptionFilter::Tags(vec![TagId(2)]));
        let west = hub.subscribe(
            3,
            SubscriptionFilter::Region {
                x0: 0.0,
                y0: -1.0,
                x1: 2.0,
                y1: 1.0,
            },
        );
        let mut sink = hub.sink();
        sink.on_event(&ev(0, 1, 1.0));
        sink.on_event(&ev(0, 2, 5.0));
        sink.on_epoch_complete(Epoch(0));
        sink.on_event(&ev(1, 2, 6.0));
        sink.on_epoch_complete(Epoch(1));

        // ALL: one frame per committed epoch, arrival-stamped
        let Some(Frame::Push {
            id: 1,
            epoch: 0,
            rows,
        }) = all.poll()
        else {
            panic!("expected epoch-0 push");
        };
        assert_eq!(rows.len(), 2);
        let Some(Frame::Push { epoch: 1, rows, .. }) = all.poll() else {
            panic!("expected epoch-1 push");
        };
        assert_eq!(rows.len(), 1);
        assert!(all.poll().is_none());

        // tag filter sees only tag 2's changes
        let Some(Frame::Push { id: 2, rows, .. }) = tag2.poll() else {
            panic!("expected tag-2 push");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tag, TagId(2));
        assert!(tag2.poll().is_some(), "tag 2 moved again in epoch 1");

        // region filter sees only the in-region change
        let Some(Frame::Push { id: 3, rows, .. }) = west.poll() else {
            panic!("expected region push");
        };
        assert_eq!(rows[0].tag, TagId(1));
        assert!(west.poll().is_none());
    }

    #[test]
    fn flush_updates_arrive_after_the_last_epoch() {
        let hub = SubscriptionHub::new(HubConfig::default());
        let sub = hub.subscribe(1, SubscriptionFilter::All);
        let mut sink = hub.sink();
        sink.on_event(&ev(0, 1, 1.0));
        sink.on_epoch_complete(Epoch(0));
        sink.on_event(&ev(0, 2, 2.0)); // end-of-stream flush delivery
        sink.on_finish();
        assert!(matches!(sub.poll(), Some(Frame::Push { epoch: 0, .. })));
        // the flush delta is stamped last + 1, like the store
        assert!(matches!(sub.poll(), Some(Frame::Push { epoch: 1, .. })));
    }

    #[test]
    fn lagged_fires_exactly_once_per_overflow_run() {
        let hub = SubscriptionHub::new(HubConfig::default().with_queue_frames(2));
        let sub = hub.subscribe(7, SubscriptionFilter::All);
        let mut sink = hub.sink();
        // 5 committed single-row deltas into a 2-frame queue: the
        // oldest 3 drop
        for e in 0..5u64 {
            sink.on_event(&ev(e, 1, e as f64 * 10.0));
            sink.on_epoch_complete(Epoch(e));
        }
        assert_eq!(
            sub.poll(),
            Some(Frame::Lagged { id: 7, dropped: 3 }),
            "one LAGGED for the whole run, before surviving frames"
        );
        assert!(matches!(sub.poll(), Some(Frame::Push { epoch: 3, .. })));
        assert!(matches!(sub.poll(), Some(Frame::Push { epoch: 4, .. })));
        assert!(sub.poll().is_none());
        assert_eq!(sub.dropped_rows(), 3);

        // a second overflow run gets its own single notice
        for e in 5..10u64 {
            sink.on_event(&ev(e, 1, e as f64 * 10.0));
            sink.on_epoch_complete(Epoch(e));
        }
        assert_eq!(sub.poll(), Some(Frame::Lagged { id: 7, dropped: 3 }));
        // draining in time produces no further notices
        assert!(matches!(sub.poll(), Some(Frame::Push { .. })));
        assert!(matches!(sub.poll(), Some(Frame::Push { .. })));
        assert!(sub.poll().is_none());
    }

    #[test]
    fn cancel_stops_delivery_and_hub_prunes() {
        let hub = SubscriptionHub::new(HubConfig::default());
        let sub = hub.subscribe(1, SubscriptionFilter::All);
        let mut sink = hub.sink();
        sink.on_event(&ev(0, 1, 1.0));
        sink.on_epoch_complete(Epoch(0));
        assert_eq!(hub.subscriber_count(), 1);
        sub.cancel();
        assert!(sub.poll().is_none(), "cancel clears pending frames");
        sink.on_event(&ev(1, 1, 9.0));
        sink.on_epoch_complete(Epoch(1));
        assert!(sub.poll().is_none());
        assert_eq!(hub.subscriber_count(), 0, "pruned on commit");
    }

    #[test]
    fn commit_log_records_nonempty_deltas() {
        let hub = SubscriptionHub::new(HubConfig::default().with_commit_log());
        let _sub = hub.subscribe(1, SubscriptionFilter::All);
        let mut sink = hub.sink();
        sink.on_event(&ev(0, 1, 1.0));
        sink.on_epoch_complete(Epoch(0));
        sink.on_epoch_complete(Epoch(1)); // empty delta: no record
        sink.on_event(&ev(2, 1, 9.0));
        sink.on_epoch_complete(Epoch(2));
        let log = hub.commit_log();
        let epochs: Vec<u64> = log.iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![0, 2]);
    }
}
