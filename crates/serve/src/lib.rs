//! # rfid-serve — the query-serving subsystem
//!
//! Everything upstream of this crate produces one thing: the cleaned
//! location-event stream. This crate makes that stream *queryable* —
//! while it is still being produced:
//!
//! ```text
//! pipeline ─► StoreSink ─► Arc<RwLock<EventStore>> ◄─ TCP server ◄─ clients
//!  (writer, live ingestion)      (shared)           (readers, thread per
//!                                                    connection)
//! ```
//!
//! * [`store::EventStore`] — a segmented in-memory log of the event
//!   stream with a per-epoch snapshot index, configurable retention +
//!   compaction, and per-tag trail lookup;
//! * [`query::Query`] / [`query::QueryResponse`] — the four query
//!   kinds and their length-prefixed text wire form;
//! * [`server`] — a `std::net` thread-per-connection query server plus
//!   a blocking [`server::QueryClient`].
//!
//! The contract that keeps serving honest: with the default store
//! configuration, `Trail` and `SnapshotAt` answers are **bit-identical**
//! to what the in-process [`TrailSink`]/[`SnapshotSink`] compute on the
//! same stream (pinned by `tests/store_pin_sinks.rs` and the root
//! `tests/serving_queries.rs`), and the wire encoding round-trips every
//! `f64` exactly.
//!
//! [`TrailSink`]: rfid_stream::pipeline::sinks::TrailSink
//! [`SnapshotSink`]: rfid_stream::pipeline::sinks::SnapshotSink

pub mod query;
pub mod server;
pub mod store;

pub use query::{answer, Query, QueryResponse};
pub use server::{serve, QueryClient, ServerHandle};
pub use store::{EventStore, LocationRow, StoreConfig, StoreError, StoreStats, StoredEvent};
