//! # rfid-serve — the query-serving subsystem
//!
//! Everything upstream of this crate produces one thing: the cleaned
//! location-event stream. This crate makes that stream *queryable* —
//! while it is still being produced — by pull **and** by push:
//!
//! ```text
//!           ┌─► StoreSink ─► Arc<RwLock<EventStore>> ◄─┐
//! pipeline ─┤                                          ├─ TCP server ◄─► clients
//!           └─► hub.sink() ─► SubscriptionHub ─────────┘   (worker pool)
//!  (writer, live ingestion)    (per-subscription queues)
//! ```
//!
//! * [`store::EventStore`] — a segmented in-memory log of the event
//!   stream with a per-epoch snapshot index, configurable retention +
//!   compaction, per-tag trail lookup, and epoch-delta snapshots;
//! * [`query`] — the query kinds, the versioned length-prefixed text
//!   wire protocol (v1 bare queries, v2 `HELLO`-negotiated request-id
//!   envelopes with `SUBSCRIBE` push frames), and typed
//!   [`query::WireError`] codes;
//! * [`hub::SubscriptionHub`] — fan-out of committed location changes
//!   into bounded per-subscription queues (slow subscribers lag, they
//!   never buffer unboundedly);
//! * [`server`] — a `std::net` non-blocking sharded worker-pool query
//!   server plus the blocking builder-configured
//!   [`server::QueryClient`].
//!
//! The contract that keeps serving honest: with the default store
//! configuration, `Trail` and `SnapshotAt` answers are **bit-identical**
//! to what the in-process [`TrailSink`]/[`SnapshotSink`] compute on the
//! same stream, push subscriptions deliver exactly the
//! [`LocationChangeSink`] delta stream (pinned by
//! `tests/store_pin_sinks.rs`, root `tests/serving_queries.rs`, and
//! root `tests/serving_push.rs`), and the wire encoding round-trips
//! every `f64` exactly.
//!
//! [`TrailSink`]: rfid_stream::pipeline::sinks::TrailSink
//! [`SnapshotSink`]: rfid_stream::pipeline::sinks::SnapshotSink
//! [`LocationChangeSink`]: rfid_stream::pipeline::sinks::LocationChangeSink

pub mod hub;
pub(crate) mod lock;
pub mod log;
pub mod query;
pub mod resilient;
pub mod server;
pub mod store;

pub use hub::{HubConfig, SubscriptionHandle, SubscriptionHub};
pub use log::{DurableStore, LogError, LogRecord, Recovery, SegmentLog, WriteFault};
pub use query::{
    answer, ErrorCode, Frame, Query, QueryResponse, Request, RequestKind, SubscriptionFilter,
    TelemetryCmd, WireError, PROTOCOL_VERSION,
};
pub use resilient::{ReconnectPolicy, ResilientClient};
pub use server::{
    serve, serve_with, ClientBuilder, QueryClient, ServerConfig, ServerHandle, MIN_PROTOCOL_VERSION,
};
pub use store::{EventStore, LocationRow, StoreConfig, StoreError, StoreStats, StoredEvent};
