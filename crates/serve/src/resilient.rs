//! Client-side resilience: a [`QueryClient`] wrapper that survives
//! connection loss.
//!
//! [`ResilientClient`] remembers what the connection was *for* — the
//! active subscription filters and the epoch of the last push frame it
//! delivered — so when the TCP connection dies it can rebuild the
//! whole session, not just the socket:
//!
//! 1. reconnect with bounded exponential backoff plus jitter (so a
//!    fleet of clients does not stampede a restarting server),
//! 2. repeat the `HELLO` handshake (inside
//!    [`ClientBuilder::establish`]),
//! 3. re-issue every remembered `SUBSCRIBE`,
//! 4. close the gap with `SNAPSHOT <now> SINCE <last-push-epoch>` —
//!    the rows that arrived while the client was dark come back as one
//!    synthetic [`Frame::Push`] per subscription, filtered exactly as
//!    the live stream would have been.
//!
//! Subscription ids stay **stable across reconnects**: the caller
//! holds a client-side handle, and frames are translated from the
//! per-connection server id before delivery.
//!
//! Delivery across a reconnect is **at-least-once**: a row committed
//! between the re-subscribe and the gap-fill query can appear both in
//! the synthetic catch-up frame and in an early live frame. Rows are
//! never lost (within the store's retention) and never reordered
//! within a frame.

use crate::query::{Frame, Query, QueryResponse, SubscriptionFilter};
use crate::server::{ClientBuilder, QueryClient};
use crate::store::LocationRow;
use rfid_stream::pipeline::sinks::LocationUpdate;
use rfid_stream::Epoch;
use std::collections::VecDeque;
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// How [`ResilientClient`] retries a lost connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Connection attempts per recovery (>= 1) before the triggering
    /// operation gives up and surfaces the error.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter sequence (each sleep lands uniformly in
    /// `[backoff/2, backoff]`). Give each client its own seed.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

#[derive(Debug)]
struct Subscription {
    /// The caller-visible id, stable across reconnects.
    handle: u64,
    filter: SubscriptionFilter,
    /// The id on the current connection (re-assigned per reconnect).
    server_id: u64,
}

/// A self-healing query/subscription client (see the module docs).
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    timeout: Option<Duration>,
    policy: ReconnectPolicy,
    client: Option<QueryClient>,
    subs: Vec<Subscription>,
    /// Epoch of the newest push frame delivered to the caller.
    last_push_epoch: Option<u64>,
    /// Synthetic catch-up frames queued by a reconnect.
    catch_up: VecDeque<Frame>,
    next_handle: u64,
    ever_connected: bool,
    reconnects: u64,
    jitter: u64,
}

impl ResilientClient {
    /// A client for `addr`. No connection is made until the first
    /// operation needs one.
    pub fn new(addr: SocketAddr) -> Self {
        let policy = ReconnectPolicy::default();
        Self {
            addr,
            timeout: None,
            policy,
            client: None,
            subs: Vec::new(),
            last_push_epoch: None,
            catch_up: VecDeque::new(),
            next_handle: 1,
            ever_connected: false,
            reconnects: 0,
            jitter: policy.jitter_seed | 1,
        }
    }

    /// Read/write timeout applied to every connection (see
    /// [`ClientBuilder::timeout`]). Timeouts are surfaced to the
    /// caller, **not** treated as connection loss.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Replaces the reconnect policy.
    pub fn with_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.policy = policy;
        self.jitter = policy.jitter_seed | 1;
        self
    }

    /// How many times the session has been rebuilt after a loss.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Epoch of the newest push frame delivered (the `SINCE` bound the
    /// next gap-fill would use).
    pub fn last_push_epoch(&self) -> Option<u64> {
        self.last_push_epoch
    }

    /// Sends one query, transparently rebuilding the session if the
    /// connection is lost mid-operation.
    pub fn query(&mut self, query: &Query) -> io::Result<QueryResponse> {
        let mut cycles = 0u32;
        loop {
            self.ensure_connected()?;
            let client = self.client.as_mut().expect("just connected");
            match client.query(query) {
                Ok(resp) => return Ok(resp),
                Err(e) if is_disconnect(&e) && cycles < self.policy.max_attempts => {
                    self.client = None;
                    cycles += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Registers a push subscription and returns a **stable** handle:
    /// push and lag frames from [`ResilientClient::next_push`] carry
    /// this id on every connection the session will ever use.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> io::Result<u64> {
        let mut cycles = 0u32;
        let server_id = loop {
            self.ensure_connected()?;
            let client = self.client.as_mut().expect("just connected");
            match client.subscribe(&filter) {
                Ok(id) => break id,
                Err(e) if is_disconnect(&e) && cycles < self.policy.max_attempts => {
                    self.client = None;
                    cycles += 1;
                }
                Err(e) => return Err(e),
            }
        };
        let handle = self.next_handle;
        self.next_handle += 1;
        self.subs.push(Subscription {
            handle,
            filter,
            server_id,
        });
        Ok(handle)
    }

    /// The next push or lag frame, ids translated to stable handles.
    /// A connection loss triggers the reconnect protocol; the gap is
    /// filled with synthetic push frames before live frames resume.
    /// Read timeouts (`WouldBlock`/`TimedOut`) pass through so pollers
    /// keep their cadence.
    pub fn next_push(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.catch_up.pop_front() {
                return Ok(self.deliver(frame));
            }
            self.ensure_connected()?;
            // a reconnect queues catch-up frames: deliver those before
            // blocking on the socket for live ones
            if let Some(frame) = self.catch_up.pop_front() {
                return Ok(self.deliver(frame));
            }
            let client = self.client.as_mut().expect("just connected");
            match client.next_push() {
                Ok(frame) => {
                    let frame = self.translate(frame)?;
                    return Ok(self.deliver(frame));
                }
                Err(e) if is_disconnect(&e) => {
                    self.client = None;
                    // loop: reconnect, which queues catch-up frames
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Notes the delivered frame's epoch (the next gap-fill bound).
    fn deliver(&mut self, frame: Frame) -> Frame {
        if let Frame::Push { epoch, .. } = &frame {
            self.last_push_epoch = Some(self.last_push_epoch.map_or(*epoch, |p| p.max(*epoch)));
        }
        frame
    }

    /// Maps a live frame's per-connection subscription id to the
    /// caller's stable handle.
    fn translate(&self, frame: Frame) -> io::Result<Frame> {
        let map = |server_id: u64| -> io::Result<u64> {
            self.subs
                .iter()
                .find(|s| s.server_id == server_id)
                .map(|s| s.handle)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("push for unknown subscription {server_id}"),
                    )
                })
        };
        Ok(match frame {
            Frame::Push { id, epoch, rows } => Frame::Push {
                id: map(id)?,
                epoch,
                rows,
            },
            Frame::Lagged { id, dropped } => Frame::Lagged {
                id: map(id)?,
                dropped,
            },
            other => other,
        })
    }

    /// Connects if not connected: backoff loop, handshake,
    /// re-subscribe, gap fill.
    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.client.is_some() {
            return Ok(());
        }
        let mut backoff = self.policy.initial_backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.jittered(backoff));
                backoff = (backoff * 2).min(self.policy.max_backoff);
            }
            let mut builder: ClientBuilder = QueryClient::connect(self.addr);
            if let Some(t) = self.timeout {
                builder = builder.timeout(t);
            }
            match builder.establish().and_then(|c| self.rebuild_session(c)) {
                Ok(client) => {
                    if self.ever_connected {
                        self.reconnects += 1;
                    }
                    self.ever_connected = true;
                    self.client = Some(client);
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no connection attempt made")
        }))
    }

    /// Re-subscribes every remembered filter on a fresh connection and
    /// queues the gap-fill frames.
    fn rebuild_session(&mut self, mut client: QueryClient) -> io::Result<QueryClient> {
        for i in 0..self.subs.len() {
            let filter = self.subs[i].filter.clone();
            let id = client.subscribe(&filter)?;
            self.subs[i].server_id = id;
        }
        // gap fill: what arrived while the client was dark, as one
        // synthetic push per subscription (filtered like live pushes)
        if let Some(since) = self.last_push_epoch {
            if !self.subs.is_empty() {
                let delta = Query::SnapshotDelta {
                    // far-future `at` answers with the current relation
                    at: Epoch(u64::MAX),
                    since: Epoch(since),
                };
                if let QueryResponse::Rows(rows) = client.query(&delta)? {
                    for sub in &self.subs {
                        let mine: Vec<LocationRow> = rows
                            .iter()
                            .filter(|r| row_matches(&sub.filter, r))
                            .copied()
                            .collect();
                        if mine.is_empty() {
                            continue;
                        }
                        let epoch = mine.iter().map(|r| r.epoch.0).max().unwrap_or(since);
                        self.catch_up.push_back(Frame::Push {
                            id: sub.handle,
                            epoch,
                            rows: mine,
                        });
                    }
                }
            }
        }
        Ok(client)
    }

    /// Uniform jitter in `[d/2, d]` from a xorshift64* sequence — no
    /// external RNG dependency, and deterministic per seed.
    fn jittered(&mut self, d: Duration) -> Duration {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let frac =
            (self.jitter.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        d / 2 + Duration::from_secs_f64(d.as_secs_f64() / 2.0 * frac)
    }
}

/// Whether an I/O error means the connection is gone (vs. a timeout or
/// a protocol error the caller must see).
fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WriteZero
    )
}

/// [`SubscriptionFilter::matches`] over a stored row (same semantics,
/// different row type).
fn row_matches(filter: &SubscriptionFilter, row: &LocationRow) -> bool {
    filter.matches(&LocationUpdate {
        epoch: row.epoch,
        tag: row.tag,
        location: row.location,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_in_the_back_half() {
        let mut c = ResilientClient::new("127.0.0.1:1".parse().unwrap());
        let d = Duration::from_millis(100);
        for _ in 0..1000 {
            let j = c.jittered(d);
            assert!(j >= d / 2 && j <= d, "jitter {j:?} outside [d/2, d]");
        }
    }

    #[test]
    fn disconnect_classification() {
        assert!(is_disconnect(&io::Error::new(
            io::ErrorKind::UnexpectedEof,
            ""
        )));
        assert!(is_disconnect(&io::Error::new(
            io::ErrorKind::ConnectionReset,
            ""
        )));
        assert!(!is_disconnect(&io::Error::new(io::ErrorKind::TimedOut, "")));
        assert!(!is_disconnect(&io::Error::new(
            io::ErrorKind::WouldBlock,
            ""
        )));
        assert!(!is_disconnect(&io::Error::new(
            io::ErrorKind::InvalidData,
            ""
        )));
    }
}
