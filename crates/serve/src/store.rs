//! The embedded event store: a segmented, per-tag-indexed in-memory
//! log of the pipeline's cleaned event stream, answering historical
//! trail and point-in-time snapshot queries.
//!
//! ## Time model
//!
//! The store indexes by **arrival epoch**: the epoch whose completion
//! delivered the event to the sinks. An event pushed between the
//! completions of epochs `E-1` and `E` carries arrival `E`; events
//! delivered by the end-of-stream flush arrive *after* the last
//! completed epoch and carry arrival `last + 1`. Snapshot queries are
//! therefore "what did the system know when epoch `E` completed" —
//! exactly the relation [`SnapshotSink`] emits at its evaluation
//! instants, which is what makes the bit-identical-to-sinks contract
//! (pinned in `tests/store_pin_sinks.rs` and the root
//! `tests/serving_queries.rs`) possible even though the engine emits
//! delayed reports whose *own* epoch lags the delivery epoch.
//!
//! ## Layout
//!
//! Events land in fixed-width **segments** of `segment_epochs` arrival
//! epochs. Each segment keeps its events in arrival order plus a
//! per-tag index; a segment is sealed when arrivals pass its end, at
//! which point it records the cumulative latest-location-per-tag
//! relation as of its last epoch — the **snapshot index**. A snapshot
//! query binary-searches the sealed segments (O(log segments)), takes
//! the preceding cumulative snapshot, and replays at most one
//! segment's events, instead of walking the whole history.
//!
//! ## Retention and compaction
//!
//! With a `retention_epochs` window, segments whose arrival range falls
//! behind `latest − retention` are **compacted**: their per-event log
//! is dropped, but their cumulative snapshot is folded into the
//! compacted base, so every superseded location event disappears while
//! `SnapshotAt`/`CurrentLocation` for retained epochs stay exact.
//! Trails are fully answerable within retention; ranges older than the
//! horizon return only what is retained, and snapshots older than the
//! horizon are refused ([`StoreError::BeyondRetention`]) rather than
//! silently answered with later state.
//!
//! [`SnapshotSink`]: rfid_stream::pipeline::sinks::SnapshotSink

use rfid_geom::Point3;
use rfid_obs::{Counter, Gauge};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};
use std::collections::BTreeMap;

/// Store knobs. The defaults (64-epoch segments, unlimited retention,
/// unlimited snapshot staleness) make every query bit-identical to the
/// in-process sinks; serving deployments bound memory with
/// [`StoreConfig::retention_epochs`] and make churned tags age out of
/// snapshots with [`StoreConfig::snapshot_staleness`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Arrival-epoch width of one segment (>= 1). Smaller segments
    /// mean finer-grained snapshot indexing and compaction, at one
    /// cumulative relation clone per segment.
    pub segment_epochs: u64,
    /// Keep full event history for at most this many arrival epochs
    /// behind the newest; older segments are compacted to their
    /// cumulative snapshot. `None` keeps everything.
    pub retention_epochs: Option<u64>,
    /// A tag appears in `SnapshotAt(e)` only if its latest event (as
    /// of `e`) has an event epoch within this many epochs of `e`.
    /// `None` reports last-known-location forever — the
    /// [`SnapshotSink`]-identical semantics. Finite staleness is the
    /// churn fix: a departed tag stops producing events, so it drops
    /// out of later snapshots while staying answerable via `Trail`.
    ///
    /// [`SnapshotSink`]: rfid_stream::pipeline::sinks::SnapshotSink
    pub snapshot_staleness: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_epochs: 64,
            retention_epochs: None,
            snapshot_staleness: None,
        }
    }
}

impl StoreConfig {
    /// Default config with a segment width (>= 1).
    pub fn with_segment_epochs(mut self, width: u64) -> Self {
        assert!(width >= 1, "segment width must be >= 1 epoch");
        self.segment_epochs = width;
        self
    }

    /// Bounds full-history retention to `epochs` arrival epochs.
    pub fn with_retention(mut self, epochs: u64) -> Self {
        self.retention_epochs = Some(epochs);
        self
    }

    /// Ages tags out of snapshots `epochs` after their last event.
    pub fn with_snapshot_staleness(mut self, epochs: u64) -> Self {
        self.snapshot_staleness = Some(epochs);
        self
    }
}

/// One event as stored: the pipeline event plus its global arrival
/// sequence number and arrival epoch (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredEvent {
    /// Global arrival sequence number (0-based, gap-free).
    pub seq: u64,
    /// Arrival epoch: the completed epoch that delivered this event.
    pub arrival: u64,
    /// The event itself (its `epoch` field may lag `arrival` — the
    /// engine emits delayed reports).
    pub event: LocationEvent,
}

/// One row of a snapshot/containment/current-location answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationRow {
    pub tag: TagId,
    /// The epoch of the event backing this row (not the query epoch).
    pub epoch: Epoch,
    pub location: Point3,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested epoch precedes the retention horizon; the exact
    /// relation at that instant has been compacted away.
    BeyondRetention { requested: u64, horizon: u64 },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BeyondRetention { requested, horizon } => write!(
                f,
                "epoch {requested} is beyond the retention horizon (oldest exact snapshot: \
                 {horizon})"
            ),
        }
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Events currently held in full (uncompacted) segments.
    pub events_live: u64,
    /// Events dropped by retention compaction so far.
    pub events_compacted: u64,
    /// Uncompacted segments (including the open tail).
    pub segments: usize,
    /// Distinct tags ever seen.
    pub tags: usize,
}

/// The store's handles into the process-wide metrics registry.
/// Counters record increments at the mutation sites; the gauges track
/// current levels. A cloned store shares the same handles — the
/// registry aggregates process-wide, not per-instance.
#[derive(Debug, Clone)]
struct StoreMetrics {
    events: Counter,
    compacted: Counter,
    segments: Gauge,
    tags: Gauge,
}

impl Default for StoreMetrics {
    fn default() -> Self {
        let reg = rfid_obs::global();
        Self {
            events: reg.counter("store_events_total"),
            compacted: reg.counter("store_events_compacted_total"),
            segments: reg.gauge("store_segments"),
            tags: reg.gauge("store_tags"),
        }
    }
}

#[derive(Debug, Clone)]
struct Segment {
    /// First arrival epoch covered (inclusive), aligned to the width.
    start: u64,
    /// Last arrival epoch covered (inclusive).
    end: u64,
    /// Events in arrival order.
    events: Vec<StoredEvent>,
    /// Per-tag index into `events` (positions are ascending, so a
    /// tag's history inside one segment stays in arrival order).
    by_tag: BTreeMap<TagId, Vec<u32>>,
    /// Cumulative latest-event-per-tag relation as of `end`; present
    /// once the segment is sealed.
    snapshot: Option<BTreeMap<TagId, StoredEvent>>,
}

impl Segment {
    fn new(start: u64, width: u64) -> Self {
        Self {
            start,
            end: start + (width - 1),
            events: Vec::new(),
            by_tag: BTreeMap::new(),
            snapshot: None,
        }
    }

    fn push(&mut self, stored: StoredEvent) {
        debug_assert!(stored.arrival >= self.start && stored.arrival <= self.end);
        let idx = self.events.len() as u32;
        self.by_tag.entry(stored.event.tag).or_default().push(idx);
        self.events.push(stored);
    }
}

/// The embedded event store (see the module docs). Feed it from a
/// pipeline via `rfid_stream::pipeline::sinks::StoreSink`, or push
/// events directly through its [`EventSink`] impl.
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    cfg: StoreConfig,
    /// Closed + open segments, ascending by `start`. The back segment
    /// is the open tail (unsealed).
    segments: Vec<Segment>,
    /// Latest event per tag over the whole stream (survives
    /// compaction).
    current: BTreeMap<TagId, StoredEvent>,
    /// Cumulative snapshot at the compaction horizon: state as of
    /// arrival epoch `.0` (the last epoch of the newest compacted
    /// segment).
    compacted: Option<(u64, BTreeMap<TagId, StoredEvent>)>,
    next_seq: u64,
    /// Highest completed epoch seen (`None` before the first).
    last_completed: Option<u64>,
    events_compacted: u64,
    finished: bool,
    metrics: StoreMetrics,
}

impl EventStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        assert!(cfg.segment_epochs >= 1, "segment width must be >= 1");
        Self {
            cfg,
            ..Self::default()
        }
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// The arrival epoch the next pushed event would be stamped with.
    fn next_arrival(&self) -> u64 {
        match self.last_completed {
            // between completions of E-1 and E, deliveries belong to E;
            // after the final completion, flush deliveries get last + 1
            Some(e) => e + 1,
            None => 0,
        }
    }

    /// Highest epoch the store has completed (0 before the first).
    pub fn latest_epoch(&self) -> u64 {
        self.last_completed.unwrap_or(0)
    }

    /// True once the feeding stream signalled end-of-stream.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Store counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            events_live: self.segments.iter().map(|s| s.events.len() as u64).sum(),
            events_compacted: self.events_compacted,
            segments: self.segments.len(),
            tags: self.current.len(),
        }
    }

    /// Ingests one event (the [`EventSink::on_event`] body). Returns
    /// the event as stored — its assigned sequence number and arrival
    /// stamp — so durability layers can mirror the stamping exactly.
    pub fn push(&mut self, event: &LocationEvent) -> StoredEvent {
        let arrival = self.next_arrival();
        let stored = StoredEvent {
            seq: self.next_seq,
            arrival,
            event: *event,
        };
        self.next_seq += 1;
        let width = self.cfg.segment_epochs;
        let needs_new = match self.segments.last() {
            Some(tail) => arrival > tail.end,
            None => true,
        };
        if needs_new {
            self.seal_tail();
            let start = (arrival / width) * width;
            self.segments.push(Segment::new(start, width));
        }
        self.segments
            .last_mut()
            .expect("tail segment exists")
            .push(stored);
        self.current.insert(event.tag, stored);
        self.metrics.events.inc();
        stored
    }

    /// Marks epoch `epoch` complete (the
    /// [`EventSink::on_epoch_complete`] body): advances the arrival
    /// clock, seals the tail segment once arrivals pass it, and
    /// applies retention.
    pub fn complete_epoch(&mut self, epoch: Epoch) {
        let e = match self.last_completed {
            Some(prev) => prev.max(epoch.0),
            None => epoch.0,
        };
        self.last_completed = Some(e);
        if self.segments.last().is_some_and(|tail| e >= tail.end) {
            self.seal_tail();
        }
        self.compact();
        self.metrics.segments.set(self.segments.len() as u64);
        self.metrics.tags.set(self.current.len() as u64);
    }

    /// Marks end of stream.
    pub fn finish(&mut self) {
        self.finished = true;
        self.seal_tail();
        self.compact();
    }

    fn seal_tail(&mut self) {
        if let Some(tail) = self.segments.last_mut() {
            if tail.snapshot.is_none() {
                tail.snapshot = Some(self.current.clone());
            }
        }
    }

    fn compact(&mut self) {
        let Some(retention) = self.cfg.retention_epochs else {
            return;
        };
        let horizon = self.next_arrival().saturating_sub(retention);
        let mut drop_upto = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            // the tail (last, unsealed) segment is never compacted
            if i + 1 == self.segments.len() || seg.snapshot.is_none() || seg.end >= horizon {
                break;
            }
            drop_upto = i + 1;
        }
        if drop_upto == 0 {
            return;
        }
        for seg in self.segments.drain(..drop_upto) {
            self.events_compacted += seg.events.len() as u64;
            self.metrics.compacted.add(seg.events.len() as u64);
            let snap = seg.snapshot.expect("only sealed segments compact");
            self.compacted = Some((seg.end, snap));
        }
    }

    /// Oldest arrival epoch with an exact snapshot (the retention
    /// horizon). 0 when nothing was compacted.
    pub fn retention_horizon(&self) -> u64 {
        self.compacted.as_ref().map(|(end, _)| *end).unwrap_or(0)
    }

    /// The latest-location relation as the system knew it when `epoch`
    /// completed, sorted by tag — the historical twin of
    /// `SnapshotSink`'s emissions. Epochs at or past the newest data
    /// answer with the current relation; epochs behind the retention
    /// horizon are refused.
    pub fn snapshot_at(&self, epoch: Epoch) -> Result<Vec<LocationRow>, StoreError> {
        Ok(self
            .snapshot_events(epoch)?
            .into_iter()
            .map(row_of)
            .collect())
    }

    /// The rows of [`EventStore::snapshot_at`]`(at)` whose backing
    /// event **arrived** after epoch `since` completed — the
    /// incremental refresh for a client already holding the snapshot
    /// at `since`. Exact even when `since` predates the retention
    /// horizon: compacted snapshots preserve each event's arrival
    /// stamp, so the filter never guesses.
    pub fn snapshot_delta(&self, at: Epoch, since: Epoch) -> Result<Vec<LocationRow>, StoreError> {
        Ok(self
            .snapshot_events(at)?
            .into_iter()
            .filter(|s| s.arrival > since.0)
            .map(row_of)
            .collect())
    }

    /// The stored events backing the snapshot relation at `epoch`
    /// (staleness applied), sorted by tag.
    fn snapshot_events(&self, epoch: Epoch) -> Result<Vec<StoredEvent>, StoreError> {
        let e = epoch.0;
        if let Some((end, snap)) = &self.compacted {
            if e < *end {
                return Err(StoreError::BeyondRetention {
                    requested: e,
                    horizon: *end,
                });
            }
            if e == *end {
                return Ok(self.relation_events(snap, e));
            }
        }
        // the last segment whose range starts at or before e
        let idx = self.segments.partition_point(|s| s.start <= e);
        if idx == 0 {
            // before any retained segment: the compacted base (if its
            // horizon passed) or the empty pre-stream relation
            return Ok(match &self.compacted {
                Some((end, snap)) if e >= *end => self.relation_events(snap, e),
                _ => Vec::new(),
            });
        }
        let seg = &self.segments[idx - 1];
        if e >= seg.end {
            if let Some(snap) = &seg.snapshot {
                return Ok(self.relation_events(snap, e));
            }
            // open tail and e at/past its end: everything so far
            return Ok(self.relation_events(&self.current, e));
        }
        // inside `seg`: previous cumulative state + this segment's
        // arrivals up to e
        let mut state: BTreeMap<TagId, StoredEvent> = if idx >= 2 {
            self.segments[idx - 2]
                .snapshot
                .clone()
                .expect("non-tail segments are sealed")
        } else {
            self.compacted
                .as_ref()
                .map(|(_, snap)| snap.clone())
                .unwrap_or_default()
        };
        for stored in &seg.events {
            if stored.arrival > e {
                break;
            }
            state.insert(stored.event.tag, *stored);
        }
        Ok(self.relation_events(&state, e))
    }

    fn relation_events(&self, state: &BTreeMap<TagId, StoredEvent>, at: u64) -> Vec<StoredEvent> {
        // clamp the staleness reference so querying far past the end
        // of data does not age every tag out
        let at = at.min(self.next_arrival());
        state
            .values()
            .filter(|s| {
                self.cfg
                    .snapshot_staleness
                    .is_none_or(|k| s.event.epoch.0.saturating_add(k) >= at)
            })
            .copied()
            .collect()
    }

    /// Every retained event of `tag` whose **event epoch** lies in
    /// `[from, to]`, in arrival order — the historical twin of
    /// `TrailSink`.
    ///
    /// Ranges reaching behind the retention horizon are **refused**
    /// rather than silently answered with a partial trail: compacted
    /// segments held events whose epochs were at or below the horizon,
    /// so any `from <= horizon` range may have lost rows. This also
    /// makes the answer stable under a concurrent compaction racing
    /// the query — the same request either returns the full trail or
    /// `BeyondRetention`, never a quietly shortened one (pinned by
    /// `tests/store_compaction_race.rs`).
    pub fn trail(
        &self,
        tag: TagId,
        from: Epoch,
        to: Epoch,
    ) -> Result<Vec<StoredEvent>, StoreError> {
        let horizon = self.retention_horizon();
        if horizon > 0 && from.0 <= horizon {
            return Err(StoreError::BeyondRetention {
                requested: from.0,
                horizon,
            });
        }
        let mut out = Vec::new();
        for seg in &self.segments {
            if let Some(idxs) = seg.by_tag.get(&tag) {
                for &i in idxs {
                    let stored = seg.events[i as usize];
                    if stored.event.epoch >= from && stored.event.epoch <= to {
                        out.push(stored);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Every retained (uncompacted) event in arrival/sequence order —
    /// the durability layer's view for digest checks and re-export.
    /// Sequence numbers are ascending but not contiguous once
    /// compaction has dropped old segments.
    pub fn events(&self) -> impl Iterator<Item = &StoredEvent> + '_ {
        self.segments.iter().flat_map(|s| s.events.iter())
    }

    /// The last known location of `tag` (regardless of staleness —
    /// the caller sees the backing epoch and judges freshness).
    pub fn current_location(&self, tag: TagId) -> Option<LocationRow> {
        self.current.get(&tag).map(|s| LocationRow {
            tag: s.event.tag,
            epoch: s.event.epoch,
            location: s.event.location,
        })
    }

    /// Snapshot rows at `epoch` whose XY location falls inside the
    /// axis-aligned region `[x0, x1] × [y0, y1]` — "what is in this
    /// shelf region", historically.
    pub fn containment_at(
        &self,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        epoch: Epoch,
    ) -> Result<Vec<LocationRow>, StoreError> {
        let mut rows = self.snapshot_at(epoch)?;
        rows.retain(|r| {
            r.location.x >= x0 && r.location.x <= x1 && r.location.y >= y0 && r.location.y <= y1
        });
        Ok(rows)
    }
}

fn row_of(s: StoredEvent) -> LocationRow {
    LocationRow {
        tag: s.event.tag,
        epoch: s.event.epoch,
        location: s.event.location,
    }
}

impl EventSink for EventStore {
    fn on_event(&mut self, event: &LocationEvent) {
        self.push(event);
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.complete_epoch(epoch);
    }

    fn on_finish(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u64, tag: u64, x: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, 0.0, 0.0))
    }

    /// Replays `n` epochs; tag 1 reports every epoch, tag 2 only on
    /// even epochs.
    fn feed(store: &mut EventStore, n: u64) {
        for e in 0..n {
            store.push(&ev(e, 1, e as f64));
            if e % 2 == 0 {
                store.push(&ev(e, 2, -(e as f64)));
            }
            store.complete_epoch(Epoch(e));
        }
        store.finish();
    }

    #[test]
    fn snapshot_tracks_history_point_in_time() {
        let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
        feed(&mut store, 20);
        let rows = store.snapshot_at(Epoch(7)).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tag, TagId(1));
        assert_eq!(rows[0].epoch, Epoch(7));
        assert_eq!(rows[0].location.x, 7.0);
        assert_eq!(rows[1].tag, TagId(2));
        assert_eq!(rows[1].epoch, Epoch(6), "tag 2 reports on even epochs");
        // far-future query answers with the current relation
        let now = store.snapshot_at(Epoch(1_000)).unwrap();
        assert_eq!(now[0].epoch, Epoch(19));
        assert_eq!(now[1].epoch, Epoch(18));
        // an epoch completed before anything arrived answers empty
        let mut empty_q = EventStore::new(StoreConfig::default());
        empty_q.complete_epoch(Epoch(0));
        empty_q.push(&ev(1, 1, 0.0)); // arrives during epoch 1
        empty_q.complete_epoch(Epoch(1));
        assert!(empty_q.snapshot_at(Epoch(0)).unwrap().is_empty());
        assert_eq!(empty_q.snapshot_at(Epoch(1)).unwrap().len(), 1);
    }

    #[test]
    fn snapshot_uses_arrival_not_event_epoch() {
        let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
        store.push(&ev(0, 1, 1.0));
        store.complete_epoch(Epoch(0));
        // a delayed report: event epoch 0, delivered during epoch 9
        for e in 1..9 {
            store.complete_epoch(Epoch(e));
        }
        store.push(&ev(0, 1, 42.0));
        store.complete_epoch(Epoch(9));
        store.finish();
        // at epoch 5 the delayed report had not arrived yet
        assert_eq!(store.snapshot_at(Epoch(5)).unwrap()[0].location.x, 1.0);
        // once it arrives it supersedes, even with an older event epoch
        assert_eq!(store.snapshot_at(Epoch(9)).unwrap()[0].location.x, 42.0);
    }

    #[test]
    fn trail_filters_by_event_epoch_range() {
        let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
        feed(&mut store, 20);
        let t = store.trail(TagId(2), Epoch(4), Epoch(9)).unwrap();
        let epochs: Vec<u64> = t.iter().map(|s| s.event.epoch.0).collect();
        assert_eq!(epochs, vec![4, 6, 8]);
        assert!(store
            .trail(TagId(9), Epoch(0), Epoch(100))
            .unwrap()
            .is_empty());
        // arrival order within an epoch is preserved (duplicates)
        let mut dup = EventStore::new(StoreConfig::default());
        dup.push(&ev(0, 7, 1.0));
        dup.push(&ev(0, 7, 2.0));
        dup.complete_epoch(Epoch(0));
        let t = dup.trail(TagId(7), Epoch(0), Epoch(0)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!((t[0].event.location.x, t[1].event.location.x), (1.0, 2.0));
        assert!(t[0].seq < t[1].seq);
    }

    #[test]
    fn retention_compacts_but_keeps_snapshots_exact() {
        let cfg = StoreConfig::default()
            .with_segment_epochs(4)
            .with_retention(8);
        let mut store = EventStore::new(cfg);
        feed(&mut store, 40);
        let stats = store.stats();
        assert!(
            stats.events_compacted > 0,
            "old segments must compact: {stats:?}"
        );
        assert!(stats.segments <= 4, "retained segments: {}", stats.segments);
        let horizon = store.retention_horizon();
        assert!(horizon > 0);
        // at the horizon and after: exact answers survive compaction
        let rows = store.snapshot_at(Epoch(horizon)).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].epoch.0, horizon);
        // before the horizon: refused, not silently wrong
        assert_eq!(
            store.snapshot_at(Epoch(horizon - 1)),
            Err(StoreError::BeyondRetention {
                requested: horizon - 1,
                horizon,
            })
        );
        // current location survives compaction
        assert_eq!(store.current_location(TagId(1)).unwrap().epoch, Epoch(39));
        // a trail range reaching behind the horizon is refused, not
        // silently shortened…
        assert_eq!(
            store.trail(TagId(1), Epoch(0), Epoch(5)),
            Err(StoreError::BeyondRetention {
                requested: 0,
                horizon,
            })
        );
        // …while fully-retained ranges answer in full
        assert!(!store
            .trail(TagId(1), Epoch(38), Epoch(39))
            .unwrap()
            .is_empty());
        // retained events stay enumerable in sequence order
        let seqs: Vec<u64> = store.events().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(seqs.len() as u64, store.stats().events_live);
    }

    #[test]
    fn staleness_drops_silent_tags_from_snapshots() {
        let cfg = StoreConfig::default()
            .with_segment_epochs(4)
            .with_snapshot_staleness(3);
        let mut store = EventStore::new(cfg);
        // tag 2 departs after epoch 5; tag 1 keeps reporting
        for e in 0..20u64 {
            store.push(&ev(e, 1, e as f64));
            if e <= 5 {
                store.push(&ev(e, 2, 9.0));
            }
            store.complete_epoch(Epoch(e));
        }
        store.finish();
        // while fresh, tag 2 is present…
        let early: Vec<_> = store
            .snapshot_at(Epoch(6))
            .unwrap()
            .iter()
            .map(|r| r.tag)
            .collect();
        assert_eq!(early, vec![TagId(1), TagId(2)]);
        // …later it ages out of the snapshot…
        let late: Vec<_> = store
            .snapshot_at(Epoch(12))
            .unwrap()
            .iter()
            .map(|r| r.tag)
            .collect();
        assert_eq!(late, vec![TagId(1)]);
        // …but stays fully answerable via trail and current-location
        assert_eq!(store.trail(TagId(2), Epoch(0), Epoch(20)).unwrap().len(), 6);
        assert_eq!(store.current_location(TagId(2)).unwrap().epoch, Epoch(5));
    }

    #[test]
    fn snapshot_delta_returns_only_newer_arrivals() {
        let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
        feed(&mut store, 20);
        // between epochs 7 and 11: tag 1 re-reported (epoch 11), tag 2
        // re-reported (epoch 10) — both arrive after 7
        let delta = store.snapshot_delta(Epoch(11), Epoch(7)).unwrap();
        assert_eq!(delta.len(), 2);
        // between 10 and 11 only tag 1 moved (tag 2 reports on evens)
        let delta = store.snapshot_delta(Epoch(11), Epoch(10)).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].tag, TagId(1));
        assert_eq!(delta[0].epoch, Epoch(11));
        // since == at: nothing changed
        assert!(store
            .snapshot_delta(Epoch(11), Epoch(11))
            .unwrap()
            .is_empty());
        // delta ∪ unchanged rows reconstructs the full snapshot
        let full = store.snapshot_at(Epoch(11)).unwrap();
        let delta = store.snapshot_delta(Epoch(11), Epoch(7)).unwrap();
        assert!(delta.iter().all(|d| full.contains(d)));
    }

    #[test]
    fn snapshot_delta_is_exact_past_the_retention_horizon() {
        let cfg = StoreConfig::default()
            .with_segment_epochs(4)
            .with_retention(8);
        let mut store = EventStore::new(cfg);
        feed(&mut store, 40);
        let horizon = store.retention_horizon();
        assert!(horizon > 0);
        // `since` far behind the horizon is fine: arrival stamps
        // survive compaction, so the filter stays exact
        let delta = store.snapshot_delta(Epoch(39), Epoch(1)).unwrap();
        let full = store.snapshot_at(Epoch(39)).unwrap();
        assert_eq!(delta, full, "everything arrived after epoch 1");
        // but `at` behind the horizon is still refused
        assert!(store.snapshot_delta(Epoch(horizon - 1), Epoch(0)).is_err());
    }

    #[test]
    fn containment_filters_by_region() {
        let mut store = EventStore::new(StoreConfig::default());
        store.push(&ev(0, 1, 1.0));
        store.push(&ev(0, 2, 5.0));
        store.complete_epoch(Epoch(0));
        let rows = store.containment_at(0.0, -1.0, 2.0, 1.0, Epoch(0)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tag, TagId(1));
    }

    #[test]
    fn flush_events_arrive_after_the_last_epoch() {
        let mut store = EventStore::new(StoreConfig::default());
        store.push(&ev(0, 1, 1.0));
        store.complete_epoch(Epoch(0));
        // end-of-stream flush delivers a delayed report
        store.push(&ev(0, 2, 2.0));
        store.finish();
        // the epoch-0 snapshot does not see the flush event…
        assert_eq!(store.snapshot_at(Epoch(0)).unwrap().len(), 1);
        // …the post-stream relation does
        assert_eq!(store.snapshot_at(Epoch(1)).unwrap().len(), 2);
        assert_eq!(store.current_location(TagId(2)).unwrap().location.x, 2.0);
        assert!(store.is_finished());
    }
}
