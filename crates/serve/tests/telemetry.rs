//! The live observability surface over real TCP: `TELEMETRY` scrapes
//! return the store/hub/server metric families, the slow-query log
//! records verbs past the threshold (and nothing when off), and outbox
//! backpressure stalls — previously invisible — show up as stall
//! transitions plus stalled time.
//!
//! The metrics registry is process-wide and cumulative, and the tests
//! in this binary run in parallel, so every assertion here is
//! monotone: `>=` against a before-snapshot (diff), or grep-positive
//! for lines only this test can produce.

use rfid_geom::Point3;
use rfid_serve::server::{serve_with, ServerConfig};
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{Query, QueryClient, SubscriptionFilter, SubscriptionHub, TelemetryCmd};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

fn connect(addr: std::net::SocketAddr) -> QueryClient {
    QueryClient::connect(addr)
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect")
}

/// Parses a counter/gauge line (`name value`) out of an exposition
/// body; 0 when absent (the family may not be registered yet).
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn seeded_store() -> EventStore {
    let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
    for e in 0..10u64 {
        store.push(&LocationEvent::new(
            Epoch(e),
            TagId(1),
            Point3::new(e as f64 * 0.5, 1.25, 0.0),
        ));
        store.complete_epoch(Epoch(e));
    }
    store
}

#[test]
fn telemetry_scrape_returns_store_hub_and_server_families() {
    let store = Arc::new(RwLock::new(seeded_store()));
    let hub = SubscriptionHub::default();
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub,
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = connect(handle.addr());

    // at least one query first, so its verb histogram has a sample
    client
        .query(&Query::SnapshotAt(Epoch(5)))
        .expect("snapshot query")
        .into_rows()
        .expect("rows");

    let body = client.telemetry(TelemetryCmd::Metrics).expect("scrape");
    // the seeded store pushed 10 events into the shared registry
    assert!(metric(&body, "store_events_total") >= 10, "{body}");
    assert!(body.contains("store_segments "), "{body}");
    assert!(body.contains("store_tags "), "{body}");
    // hub counters are registered (zero is fine) the moment a hub exists
    assert!(body.contains("hub_delivered_total "), "{body}");
    assert!(body.contains("hub_dropped_total "), "{body}");
    assert!(body.contains("hub_lagged_total "), "{body}");
    // the snapshot query we just made landed in its verb histogram
    assert!(
        metric(&body, "server_query_us_snapshot_count") >= 1,
        "{body}"
    );
    assert!(
        body.contains("server_query_us_snapshot_bucket{le=\"+Inf\"}"),
        "{body}"
    );
    // stall counters exist even on a server that never stalled
    assert!(body.contains("server_outbox_stalls_total "), "{body}");

    // TRACE answers too (possibly empty), and the scrape never takes
    // the store lock — hold the write lock and scrape anyway
    let guard = store.write().expect("writer lock");
    let trace = client.telemetry(TelemetryCmd::Trace).expect("trace scrape");
    drop(guard);
    for line in trace.lines() {
        assert!(line.contains("dur_us="), "malformed trace line {line:?}");
    }
    handle.shutdown();
}

#[test]
fn slow_query_log_records_verbs_and_stays_off_by_default() {
    // server A: default config — the slow-query log is OFF. CONTAIN is
    // issued only here (in this whole binary), so any slow_query
    // what=CONTAIN line would prove the default leaked.
    let store = Arc::new(RwLock::new(seeded_store()));
    let handle_off = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::default(),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut off = connect(handle_off.addr());
    off.query(&Query::Containment {
        x0: -10.0,
        y0: -10.0,
        x1: 10.0,
        y1: 10.0,
        epoch: Epoch(9),
    })
    .expect("containment")
    .into_rows()
    .expect("rows");

    // server B: a 1µs threshold — every request is slow
    let handle_slow = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::default(),
        ServerConfig::default().with_slow_query_us(1),
    )
    .expect("bind");
    let mut slow = connect(handle_slow.addr());
    slow.query(&Query::Trail {
        tag: TagId(1),
        from: Epoch(0),
        to: Epoch(9),
    })
    .expect("trail")
    .into_rows()
    .expect("rows");

    let trace = slow.telemetry(TelemetryCmd::Trace).expect("trace");
    assert!(
        trace
            .lines()
            .any(|l| l.starts_with("slow_query") && l.contains("what=TRAIL")),
        "threshold crossed but no slow_query entry:\n{trace}"
    );
    assert!(
        !trace.contains("what=CONTAIN"),
        "slow-query log recorded on a default (disabled) server:\n{trace}"
    );
    handle_off.shutdown();
    handle_slow.shutdown();
}

#[test]
fn outbox_stalls_are_counted_and_timed_and_overflow_lags() {
    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    let hub = SubscriptionHub::new(rfid_serve::HubConfig::default().with_queue_frames(128));
    // a 1 KiB high-water mark: once the kernel buffers fill, the
    // outbox crosses it almost immediately
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default().with_outbox_high_water(1024),
    )
    .expect("bind");

    let mut scraper = connect(handle.addr());
    let before = scraper.telemetry(TelemetryCmd::Metrics).expect("scrape");

    let mut subscriber = connect(handle.addr());
    subscriber
        .subscribe(&SubscriptionFilter::All)
        .expect("subscribe");

    // commit far more push volume than the socket buffers can absorb
    // while the subscriber reads nothing: the connection must stall
    // and the bounded queue must overflow into a LAGGED run
    let mut sink = hub.sink();
    for e in 0..200u64 {
        for t in 0..4000u64 {
            sink.on_event(&LocationEvent::new(
                Epoch(e),
                TagId(t),
                Point3::new(e as f64 + 0.123456789, t as f64, 0.0),
            ));
        }
        sink.on_epoch_complete(Epoch(e));
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    let stalled = loop {
        let body = scraper.telemetry(TelemetryCmd::Metrics).expect("scrape");
        if metric(&body, "server_outbox_stalls_total")
            > metric(&before, "server_outbox_stalls_total")
        {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "connection never stalled: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        metric(&stalled, "hub_dropped_total") > metric(&before, "hub_dropped_total"),
        "bounded queue never overflowed:\n{stalled}"
    );
    assert!(
        metric(&stalled, "hub_lagged_total") > metric(&before, "hub_lagged_total"),
        "overflow run not counted:\n{stalled}"
    );

    // drain: reading frames un-stalls the connection, which records
    // the stalled duration; the overflow surfaces as a LAGGED frame
    let mut saw_lagged = false;
    loop {
        match subscriber.next_push() {
            Ok(rfid_serve::Frame::Lagged { .. }) => saw_lagged = true,
            Ok(_) => {}
            // queue exhausted: the read times out or the test is done
            Err(_) => break,
        }
        let body = scraper.telemetry(TelemetryCmd::Metrics).expect("scrape");
        if saw_lagged
            && metric(&body, "server_outbox_stalled_us_total")
                > metric(&before, "server_outbox_stalled_us_total")
        {
            break;
        }
        assert!(Instant::now() < deadline, "stall never exited: {body}");
    }
    assert!(saw_lagged, "subscriber never received its LAGGED notice");
    let after = scraper.telemetry(TelemetryCmd::Metrics).expect("scrape");
    assert!(
        metric(&after, "server_outbox_stalled_us_total")
            > metric(&before, "server_outbox_stalled_us_total"),
        "stall exit never recorded its duration:\n{after}"
    );
    handle.shutdown();
}
