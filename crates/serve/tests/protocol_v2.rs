//! Protocol-evolution integration tests over real TCP: HELLO
//! negotiation, typed errors that never cost the connection,
//! interleaved push + pull frames on one connection, v1 compatibility,
//! subscriber lag, and shutdown under load.

use rfid_geom::Point3;
use rfid_serve::server::{read_frame, write_frame};
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{
    serve, serve_with, Frame, HubConfig, Query, QueryClient, ServerConfig, SubscriptionFilter,
    SubscriptionHub, PROTOCOL_VERSION,
};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};
use std::net::TcpStream;
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn seeded_store(tags: u64, epochs: u64) -> EventStore {
    let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(8));
    for e in 0..epochs {
        for t in 0..tags {
            store.push(&LocationEvent::new(
                Epoch(e),
                TagId(t),
                Point3::new(t as f64 * 0.25, e as f64 * 0.5, 0.0),
            ));
        }
        store.complete_epoch(Epoch(e));
    }
    store
}

fn v2_client(addr: std::net::SocketAddr) -> QueryClient {
    QueryClient::connect(addr)
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect v2")
}

#[test]
fn hello_negotiates_and_rejects_with_typed_errors() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve("127.0.0.1:0", store).expect("bind");

    // raw handshakes, one connection each
    let cases: &[(&str, &str)] = &[
        ("HELLO 2", "HELLO 2"),
        ("HELLO 1", "HELLO 1"),
        // a future client is negotiated down to what the server speaks
        ("HELLO 99", "HELLO 2"),
        ("HELLO 0", "ERR 0 UNSUPPORTED_VERSION"),
        ("HELLO two", "ERR 0 BAD_REQUEST"),
    ];
    for (req, want_prefix) in cases {
        let mut raw = TcpStream::connect(handle.addr()).expect("connect");
        write_frame(&mut raw, req).unwrap();
        let resp = read_frame(&mut raw).unwrap().expect("handshake reply");
        assert!(
            resp.starts_with(want_prefix),
            "{req:?} answered {resp:?}, wanted prefix {want_prefix:?}"
        );
    }

    // the builder surfaces the negotiated version
    let client = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(10))
        .protocol_version(PROTOCOL_VERSION + 7)
        .establish()
        .expect("future version negotiates down");
    assert_eq!(client.version(), PROTOCOL_VERSION);

    // a rejected handshake is an error at establish time
    let refused = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(10))
        .protocol_version(1)
        .establish()
        .expect("v1 needs no handshake");
    assert_eq!(refused.version(), 1);
    handle.shutdown();
}

#[test]
fn unknown_verb_is_a_typed_err_not_a_disconnect() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve("127.0.0.1:0", store).expect("bind");

    // v2: the ERR frame echoes the request id and carries the code
    let mut client = v2_client(handle.addr());
    let raw = client.query_raw("7 FROB 1").unwrap();
    assert!(raw.starts_with("ERR 7 UNKNOWN_VERB"), "got {raw:?}");
    // an envelope with an unreadable id still gets an addressable ERR
    let raw = client.query_raw("FROB 1").unwrap();
    assert!(raw.starts_with("ERR 0 BAD_REQUEST"), "got {raw:?}");
    // the connection survives both
    let resp = client.query(&Query::SnapshotAt(Epoch(3))).unwrap();
    assert_eq!(resp.rows().map(<[_]>::len), Some(2));

    // v1 (no handshake): codeless envelope, code token leads the message
    let mut legacy = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(10))
        .protocol_version(1)
        .establish()
        .expect("connect v1");
    let raw = legacy.query_raw("FROB 1 2 3").unwrap();
    assert!(raw.starts_with("ERR UNKNOWN_VERB"), "got {raw:?}");
    // v1 connections are told how to get subscriptions
    let raw = legacy.query_raw("SUBSCRIBE ALL").unwrap();
    assert!(raw.starts_with("ERR UNSUPPORTED_VERSION"), "got {raw:?}");
    let resp = legacy.query(&Query::CurrentLocation(TagId(1))).unwrap();
    assert_eq!(resp.rows().map(<[_]>::len), Some(1));
    handle.shutdown();
}

#[test]
fn typed_errors_round_trip_store_failures() {
    // a store with bounded retention refuses pre-horizon snapshots
    let mut store = EventStore::new(
        StoreConfig::default()
            .with_segment_epochs(4)
            .with_retention(8),
    );
    for e in 0..40u64 {
        store.push(&LocationEvent::new(
            Epoch(e),
            TagId(1),
            Point3::new(1.0, 1.0, 0.0),
        ));
        store.complete_epoch(Epoch(e));
    }
    let horizon = store.retention_horizon();
    assert!(horizon > 0);
    let handle = serve("127.0.0.1:0", Arc::new(RwLock::new(store))).expect("bind");
    let mut client = v2_client(handle.addr());
    let resp = client
        .query(&Query::SnapshotAt(Epoch(horizon - 1)))
        .unwrap();
    let err = resp.error().expect("beyond retention must be an error");
    assert_eq!(err.code, rfid_serve::ErrorCode::BeyondRetention);
    assert!(
        err.message.contains("retention"),
        "message: {}",
        err.message
    );
    handle.shutdown();
}

#[test]
fn push_and_pull_interleave_on_one_connection() {
    let store = Arc::new(RwLock::new(seeded_store(4, 4)));
    let hub = SubscriptionHub::new(HubConfig::default());
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = v2_client(handle.addr());

    let sub_id = client
        .subscribe(&SubscriptionFilter::All)
        .expect("subscribe");

    // feed committed deltas while pull queries run on the same
    // connection: every pull response must carry its own id even with
    // push frames in flight
    let mut sink = hub.sink();
    for round in 0..20u64 {
        let e = 4 + round;
        sink.on_event(&LocationEvent::new(
            Epoch(e),
            TagId(round % 4),
            Point3::new(round as f64, -1.0, 0.0),
        ));
        sink.on_epoch_complete(Epoch(e));
        let resp = client.query(&Query::CurrentLocation(TagId(1))).unwrap();
        assert!(resp.rows().is_some(), "pull answered mid-push");
    }

    // all 20 single-row pushes arrive, in commit order, id-tagged
    let mut seen = 0u64;
    let mut last_epoch = None;
    while seen < 20 {
        match client.next_push().expect("push frame") {
            Frame::Push { id, epoch, rows } => {
                assert_eq!(id, sub_id);
                assert!(
                    last_epoch.is_none_or(|prev| epoch > prev),
                    "commit order preserved ({last_epoch:?} then {epoch})"
                );
                last_epoch = Some(epoch);
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].location.x, seen as f64);
                seen += 1;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn unsubscribe_stops_delivery() {
    let store = Arc::new(RwLock::new(seeded_store(2, 2)));
    let hub = SubscriptionHub::new(HubConfig::default());
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = v2_client(handle.addr());

    let sub = client
        .subscribe(&SubscriptionFilter::Tags(vec![TagId(0)]))
        .unwrap();
    let mut sink = hub.sink();
    sink.on_event(&LocationEvent::new(
        Epoch(2),
        TagId(0),
        Point3::new(5.0, 0.0, 0.0),
    ));
    sink.on_epoch_complete(Epoch(2));
    assert!(matches!(client.next_push().unwrap(), Frame::Push { .. }));

    client.unsubscribe(sub).expect("unsubscribe");
    // cancelling an unknown subscription is a typed error
    let err = client.unsubscribe(999).expect_err("unknown subscription");
    assert!(err.to_string().contains("UNKNOWN_SUBSCRIPTION"), "{err}");

    // further commits produce nothing for this connection: the next
    // frame after a follow-up pull is that pull's response, with no
    // push frame sneaking in ahead of it
    sink.on_event(&LocationEvent::new(
        Epoch(3),
        TagId(0),
        Point3::new(9.0, 0.0, 0.0),
    ));
    sink.on_epoch_complete(Epoch(3));
    std::thread::sleep(Duration::from_millis(50)); // give fan-out a chance to leak
    let got = client.query_raw("55 CURRENT 0").unwrap();
    assert!(
        got.starts_with("OK 55"),
        "push leaked after unsubscribe: {got:?}"
    );
    // the hub pruned the cancelled registration on that commit
    assert_eq!(hub.subscriber_count(), 0);
    handle.shutdown();
}

#[test]
fn lagged_subscriber_gets_counted_notice_over_tcp() {
    // tiny outbox + tiny queue: once the non-reading subscriber jams
    // its socket, commits overflow the bounded queue and drop
    let store = Arc::new(RwLock::new(seeded_store(2, 2)));
    let hub = SubscriptionHub::new(HubConfig::default().with_queue_frames(8));
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default()
            .with_workers(1)
            .with_outbox_high_water(4 << 10),
    )
    .expect("bind");
    let mut client = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(30))
        .establish()
        .expect("connect");
    let sub_id = client
        .subscribe(&SubscriptionFilter::All)
        .expect("subscribe");

    // ~16 MB of push volume while the client reads nothing: far past
    // what the outbox high-water plus kernel socket buffers absorb —
    // TCP autotuning can balloon the socket buffers to several MB, so
    // the volume must dominate that bounded prefix with a wide margin
    let mut sink = hub.sink();
    let (epochs, rows_per_epoch) = (8_000u64, 80u64);
    for e in 0..epochs {
        for t in 0..rows_per_epoch {
            sink.on_event(&LocationEvent::new(
                Epoch(2 + e),
                TagId(t),
                // move every tag every epoch so threshold 0 fires
                Point3::new(e as f64, t as f64, 0.0),
            ));
        }
        sink.on_epoch_complete(Epoch(2 + e));
    }
    let total_rows = epochs * rows_per_epoch;

    // now drain: every row is either delivered or counted in a LAGGED
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut lagged_frames = 0u64;
    let mut last_was_lagged = false;
    while delivered + dropped < total_rows {
        match client.next_push().expect("drain") {
            Frame::Push { id, rows, .. } => {
                assert_eq!(id, sub_id);
                delivered += rows.len() as u64;
                last_was_lagged = false;
            }
            Frame::Lagged { id, dropped: d } => {
                assert_eq!(id, sub_id);
                assert!(d > 0, "a LAGGED notice always counts something");
                assert!(
                    !last_was_lagged,
                    "two LAGGED notices with no frame between them"
                );
                dropped += d;
                lagged_frames += 1;
                last_was_lagged = true;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(delivered + dropped, total_rows, "every row accounted for");
    assert!(lagged_frames >= 1, "the jammed subscriber must have lagged");
    // the absorbed prefix (outbox high-water + kernel socket buffers)
    // is bounded in *bytes*, so at this volume the overflow must
    // dominate — a quarter leaves room for buffer autotuning while
    // still proving the jam, not the drain, decided the run
    assert!(
        dropped >= total_rows / 4,
        "most of the run overflowed: {dropped}/{total_rows}"
    );
    handle.shutdown();
}

#[test]
fn shutdown_joins_cleanly_under_load() {
    let store = Arc::new(RwLock::new(seeded_store(8, 16)));
    let hub = SubscriptionHub::new(HubConfig::default());
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = handle.addr();

    // clients hammer pulls and hold subscriptions while we shut down
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let Ok(mut client) = QueryClient::connect(addr)
                    .timeout(Duration::from_secs(5))
                    .establish()
                else {
                    return;
                };
                let _ = client.subscribe(&SubscriptionFilter::All);
                for i in 0..10_000u64 {
                    let q = match (c + i) % 2 {
                        0 => Query::SnapshotAt(Epoch(i % 16)),
                        _ => Query::CurrentLocation(TagId(i % 8)),
                    };
                    if client.query(&q).is_err() {
                        return; // server went away mid-load: expected
                    }
                }
            })
        })
        .collect();
    // let the load build, then stop; shutdown must join every server
    // thread without a wake-up connection
    std::thread::sleep(Duration::from_millis(100));
    let begun = std::time::Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        begun.elapsed()
    );
    for c in clients {
        c.join().expect("client thread");
    }
    // the listener is gone
    assert!(
        TcpStream::connect(addr).is_err(),
        "accepting after shutdown"
    );
}
