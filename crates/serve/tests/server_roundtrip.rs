//! Gating end-to-end server test: binds an ephemeral port, issues one
//! of each query kind over real TCP, and checks the responses —
//! including concurrent clients and queries racing a live writer.

use rfid_geom::Point3;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{serve, Query, QueryClient, QueryResponse};
use rfid_stream::{Epoch, LocationEvent, TagId};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn connect(addr: std::net::SocketAddr) -> QueryClient {
    QueryClient::connect(addr)
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect")
}

fn seeded_store() -> EventStore {
    let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
    for e in 0..10u64 {
        store.push(&LocationEvent::new(
            Epoch(e),
            TagId(1),
            Point3::new(e as f64 * 0.5, 1.25, 0.0),
        ));
        if e % 2 == 0 {
            store.push(&LocationEvent::new(
                Epoch(e),
                TagId(2),
                Point3::new(8.0, -0.5, 0.0),
            ));
        }
        store.complete_epoch(Epoch(e));
    }
    store
}

fn rows(resp: QueryResponse) -> Vec<rfid_serve::LocationRow> {
    match resp {
        QueryResponse::Rows(r) => r,
        QueryResponse::Error(e) => panic!("unexpected error response: {e}"),
    }
}

#[test]
fn one_of_each_query_kind_over_tcp() {
    let store = Arc::new(RwLock::new(seeded_store()));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind ephemeral port");
    let mut client = connect(handle.addr());

    // CURRENT: the latest event of tag 1
    let current = rows(client.query(&Query::CurrentLocation(TagId(1))).unwrap());
    assert_eq!(current.len(), 1);
    assert_eq!(current[0].epoch, Epoch(9));
    assert_eq!(current[0].location.x.to_bits(), (4.5f64).to_bits());

    // TRAIL: tag 2 reported on even epochs 4..=8
    let trail = rows(
        client
            .query(&Query::Trail {
                tag: TagId(2),
                from: Epoch(4),
                to: Epoch(8),
            })
            .unwrap(),
    );
    assert_eq!(
        trail.iter().map(|r| r.epoch.0).collect::<Vec<_>>(),
        vec![4, 6, 8]
    );

    // SNAPSHOT: historical point-in-time, sorted by tag
    let snap = rows(client.query(&Query::SnapshotAt(Epoch(5))).unwrap());
    assert_eq!(snap.len(), 2);
    assert_eq!((snap[0].tag, snap[0].epoch), (TagId(1), Epoch(5)));
    assert_eq!((snap[1].tag, snap[1].epoch), (TagId(2), Epoch(4)));

    // CONTAIN: only tag 2 sits at x = 8
    let contained = rows(
        client
            .query(&Query::Containment {
                x0: 7.0,
                y0: -1.0,
                x1: 9.0,
                y1: 1.0,
                epoch: Epoch(9),
            })
            .unwrap(),
    );
    assert_eq!(contained.len(), 1);
    assert_eq!(contained[0].tag, TagId(2));

    // an unknown tag answers zero rows, not an error
    assert!(rows(client.query(&Query::CurrentLocation(TagId(77))).unwrap()).is_empty());

    // malformed requests get an ERR frame and the connection survives
    let raw = client.query_raw("FROB 1 2 3").unwrap();
    assert!(raw.starts_with("ERR "), "got {raw:?}");
    assert_eq!(
        rows(client.query(&Query::SnapshotAt(Epoch(0))).unwrap()).len(),
        2
    );

    handle.shutdown();
}

#[test]
fn concurrent_clients_and_writer() {
    let store = Arc::new(RwLock::new(seeded_store()));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");
    let addr = handle.addr();

    // a writer keeps appending epochs while clients query
    let writer_store = Arc::clone(&store);
    let writer = std::thread::spawn(move || {
        for e in 10..200u64 {
            let mut guard = writer_store.write().unwrap();
            guard.push(&LocationEvent::new(
                Epoch(e),
                TagId(1),
                Point3::new(e as f64 * 0.5, 1.25, 0.0),
            ));
            guard.complete_epoch(Epoch(e));
        }
    });

    let clients: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = connect(addr);
                for i in 0..50u64 {
                    let q = match (c + i) % 3 {
                        0 => Query::CurrentLocation(TagId(1)),
                        1 => Query::SnapshotAt(Epoch(i)),
                        _ => Query::Trail {
                            tag: TagId(1),
                            from: Epoch(0),
                            to: Epoch(i),
                        },
                    };
                    match client.query(&q).expect("query over live server") {
                        QueryResponse::Rows(_) => {}
                        QueryResponse::Error(e) => panic!("error: {e}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    writer.join().expect("writer thread");

    // after the writer finished, the served answer reflects it
    let mut client = connect(addr);
    let current = rows(client.query(&Query::CurrentLocation(TagId(1))).unwrap());
    assert_eq!(current[0].epoch, Epoch(199));
    handle.shutdown();
}

#[test]
fn slow_client_splitting_a_frame_does_not_desync_the_protocol() {
    use rfid_serve::server::{read_frame, write_frame};
    use std::io::Write;
    use std::net::TcpStream;

    let store = Arc::new(RwLock::new(seeded_store()));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_nodelay(true).unwrap();

    // dribble one CURRENT request: length prefix, a pause longer than
    // the server's read-timeout poll tick, then the payload in two
    // halves — the handler must keep its partial progress across ticks
    let payload = b"CURRENT 1";
    raw.write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    raw.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(250));
    raw.write_all(&payload[..4]).unwrap();
    raw.flush().unwrap();
    std::thread::sleep(std::time::Duration::from_millis(250));
    raw.write_all(&payload[4..]).unwrap();
    raw.flush().unwrap();

    let resp = read_frame(&mut raw).unwrap().expect("a response frame");
    assert!(resp.starts_with("OK 1"), "desynced response: {resp:?}");

    // and the connection still works for a promptly-written follow-up
    write_frame(&mut raw, "SNAPSHOT 9").unwrap();
    let resp = read_frame(&mut raw).unwrap().expect("second response");
    assert!(resp.starts_with("OK 2"), "got {resp:?}");
    handle.shutdown();
}

#[test]
fn shutdown_then_connect_fails() {
    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    let handle = serve("127.0.0.1:0", store).expect("bind");
    let addr = handle.addr();
    handle.shutdown();
    // the listener is gone: a fresh connect (or the first query on a
    // racy accept) must fail rather than hang
    let attempt = QueryClient::connect(addr)
        .timeout(Duration::from_secs(2))
        .establish()
        .and_then(|mut c| c.query(&Query::CurrentLocation(TagId(0))));
    assert!(attempt.is_err(), "server accepted after shutdown");
}
