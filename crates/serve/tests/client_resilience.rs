//! The client-resilience contract: a [`ResilientClient`] survives its
//! TCP connection being severed — queries transparently retry on a
//! fresh connection, subscriptions are re-established with **stable**
//! caller-side ids, and the push gap is closed with a synthetic
//! catch-up frame built from `SNAPSHOT <now> SINCE <last-push-epoch>`.
//!
//! Connection loss is induced with a tiny in-test TCP proxy: killing
//! the proxied connections severs the client exactly as a server
//! restart would, while the listening socket stays up for the
//! reconnect.

use rfid_geom::Point3;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{
    serve_with, Frame, Query, QueryResponse, ReconnectPolicy, ResilientClient, ServerConfig,
    SubscriptionFilter, SubscriptionHub,
};
use rfid_stream::pipeline::sinks::StoreSink;
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A pass-through TCP proxy whose live connections can be severed on
/// demand (the listener survives, so reconnects succeed).
struct Proxy {
    addr: SocketAddr,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Proxy {
    fn start(upstream: SocketAddr) -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().unwrap();
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let conns = Arc::clone(&conns);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let Ok(server) = TcpStream::connect(upstream) else {
                                continue;
                            };
                            let mut registry = conns.lock().unwrap();
                            registry.push(client.try_clone().unwrap());
                            registry.push(server.try_clone().unwrap());
                            drop(registry);
                            pipe(client.try_clone().unwrap(), server.try_clone().unwrap());
                            pipe(server, client);
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
        };
        Proxy {
            addr,
            conns,
            stop,
            thread: Some(thread),
        }
    }

    /// Severs every live proxied connection; the listener stays up.
    fn kill_connections(&self) {
        let mut registry = self.conns.lock().unwrap();
        for stream in registry.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One-way byte forwarder; exits (and severs the pair) on any error.
fn pipe(mut from: TcpStream, mut to: TcpStream) {
    std::thread::spawn(move || {
        let mut buf = [0u8; 16 << 10];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    });
}

fn fast_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        max_attempts: 20,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        jitter_seed: 7,
    }
}

fn ev(epoch: u64, tag: u64, x: f64) -> LocationEvent {
    LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, 0.0, 0.0))
}

#[test]
fn queries_survive_a_severed_connection() {
    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    store.write().unwrap().on_event(&ev(0, 1, 1.0));
    store.write().unwrap().on_epoch_complete(Epoch(0));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::default(),
        ServerConfig::default(),
    )
    .expect("bind");
    let proxy = Proxy::start(server.addr());

    let mut client = ResilientClient::new(proxy.addr)
        .with_timeout(Duration::from_secs(2))
        .with_policy(fast_policy());
    let rows = match client.query(&Query::SnapshotAt(Epoch(0))).expect("query") {
        QueryResponse::Rows(rows) => rows,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(client.reconnects(), 0);

    proxy.kill_connections();

    // the same client answers again — on a fresh connection
    let rows = match client
        .query(&Query::SnapshotAt(Epoch(0)))
        .expect("query after sever")
    {
        QueryResponse::Rows(rows) => rows,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(client.reconnects(), 1, "exactly one session rebuild");

    proxy.stop();
    server.shutdown();
}

#[test]
fn subscriptions_resubscribe_and_gap_fill_across_reconnect() {
    let store = Arc::new(RwLock::new(EventStore::new(StoreConfig::default())));
    let hub = SubscriptionHub::default();
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        hub.clone(),
        ServerConfig::default(),
    )
    .expect("bind");
    let proxy = Proxy::start(server.addr());

    // the ingestion side: events fan into the store and the hub
    let mut store_sink = StoreSink::new(Arc::clone(&store));
    let mut hub_sink = hub.sink();
    let mut feed = |event: &LocationEvent, epoch: u64| {
        store_sink.on_event(event);
        hub_sink.on_event(event);
        store_sink.on_epoch_complete(Epoch(epoch));
        hub_sink.on_epoch_complete(Epoch(epoch));
    };

    let mut client = ResilientClient::new(proxy.addr)
        .with_timeout(Duration::from_secs(2))
        .with_policy(fast_policy());
    let handle = client
        .subscribe(SubscriptionFilter::All)
        .expect("subscribe");

    // a live push before the sever establishes the gap-fill bound
    feed(&ev(0, 1, 0.5), 0);
    let first = client.next_push().expect("live push");
    let Frame::Push { id, epoch, rows } = first else {
        panic!("expected a push, got {first:?}");
    };
    assert_eq!((id, epoch, rows.len()), (handle, 0, 1));
    assert_eq!(client.last_push_epoch(), Some(0));

    // sever, then commit two epochs while the client is dark
    proxy.kill_connections();
    feed(&ev(1, 1, 1.5), 1);
    feed(&ev(2, 2, 7.0), 2);

    // the next poll reconnects, re-subscribes, and delivers the gap
    // as one synthetic push under the SAME caller-side id
    let catch_up = client.next_push().expect("catch-up push");
    let Frame::Push { id, epoch, rows } = catch_up else {
        panic!("expected the catch-up push, got {catch_up:?}");
    };
    assert_eq!(id, handle, "subscription id must survive the reconnect");
    assert_eq!(epoch, 2, "catch-up carries the newest missed epoch");
    let mut tags: Vec<u64> = rows.iter().map(|r| r.tag.0).collect();
    tags.sort_unstable();
    assert_eq!(tags, vec![1, 2], "both dark-period rows are delivered");
    assert_eq!(client.reconnects(), 1);
    assert_eq!(client.last_push_epoch(), Some(2));

    // live pushes resume on the new connection, still translated
    feed(&ev(3, 1, 3.5), 3);
    let live = client.next_push().expect("live push after reconnect");
    let Frame::Push { id, epoch, rows } = live else {
        panic!("expected a live push, got {live:?}");
    };
    assert_eq!((id, epoch), (handle, 3));
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].tag, TagId(1));

    proxy.stop();
    server.shutdown();
}
