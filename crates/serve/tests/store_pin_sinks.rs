//! Pins `EventStore` answers **bit-identical** to the in-process
//! `TrailSink`/`SnapshotSink` on the same event streams — including
//! the edge cases the sinks themselves are tested for: an empty
//! stream, a tag going silent (tombstone) mid-window, and duplicate
//! events inside one epoch.
//!
//! The root `tests/serving_queries.rs` pins the same contract on a
//! real engine trace with ingestion running concurrently; this suite
//! keeps the contract debuggable on hand-built streams.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rfid_geom::Point3;
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_stream::pipeline::sinks::{SnapshotSink, TrailSink};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};

fn ev(epoch: u64, tag: u64, x: f64, y: f64) -> LocationEvent {
    LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, y, 0.0))
}

/// One hand-built stream: events grouped per completed epoch, plus an
/// end-of-stream flush batch (delivered after the last completion).
struct Replay {
    epochs: Vec<(u64, Vec<LocationEvent>)>,
    flush: Vec<LocationEvent>,
}

/// Replays the stream into all three consumers exactly as the pipeline
/// would (events, then the epoch completion; flush events, then
/// finish), and pins the store's Trail/SnapshotAt answers to the
/// sinks' outputs bit-for-bit.
fn assert_store_matches_sinks(replay: &Replay) {
    let mut trail = TrailSink::new(1 << 20);
    let mut snap = SnapshotSink::new(1);
    let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(4));
    let mut tags: Vec<TagId> = Vec::new();

    for (epoch, events) in &replay.epochs {
        for e in events {
            trail.on_event(e);
            snap.on_event(e);
            store.on_event(e);
            tags.push(e.tag);
        }
        trail.on_epoch_complete(Epoch(*epoch));
        snap.on_epoch_complete(Epoch(*epoch));
        store.on_epoch_complete(Epoch(*epoch));
    }
    for e in &replay.flush {
        trail.on_event(e);
        snap.on_event(e);
        store.on_event(e);
        tags.push(e.tag);
    }
    trail.on_finish();
    snap.on_finish();
    store.on_finish();
    tags.sort_unstable();
    tags.dedup();

    // Trail: the store's full-range trail per tag must equal the
    // sink's retained rows, element-wise, bit-for-bit
    for &tag in &tags {
        let from_sink: Vec<(Epoch, Point3)> = trail.trail(tag).copied().collect();
        let from_store: Vec<(Epoch, Point3)> = store
            .trail(tag, Epoch(0), Epoch(u64::MAX))
            .unwrap()
            .into_iter()
            .map(|s| (s.event.epoch, s.event.location))
            .collect();
        assert_eq!(from_sink.len(), from_store.len(), "trail length of {tag}");
        for (i, (a, b)) in from_sink.iter().zip(&from_store).enumerate() {
            assert_eq!(a.0, b.0, "trail epoch {i} of {tag}");
            assert_eq!(a.1.x.to_bits(), b.1.x.to_bits(), "trail x {i} of {tag}");
            assert_eq!(a.1.y.to_bits(), b.1.y.to_bits(), "trail y {i} of {tag}");
            assert_eq!(a.1.z.to_bits(), b.1.z.to_bits(), "trail z {i} of {tag}");
        }
    }
    assert_eq!(trail.num_tags(), tags.len());

    // SnapshotAt: every cadence emission of the sink must equal the
    // store's answer at that epoch; the final emission (which may be
    // the flush snapshot) must equal the store's current relation
    let emissions = snap.emissions();
    assert!(!emissions.is_empty(), "every-epoch sink always emits");
    for (i, (time, relation)) in emissions.iter().enumerate() {
        let at = if i + 1 == emissions.len() {
            Epoch(u64::MAX) // the post-stream relation
        } else {
            Epoch(*time as u64)
        };
        let rows = store.snapshot_at(at).expect("unbounded retention");
        assert_eq!(
            relation.len(),
            rows.len(),
            "snapshot arity at emission {i} (t={time})"
        );
        for ((tag_a, loc_a), row) in relation.iter().zip(&rows) {
            assert_eq!(*tag_a, row.tag, "snapshot tag order at emission {i}");
            assert_eq!(loc_a.x.to_bits(), row.location.x.to_bits());
            assert_eq!(loc_a.y.to_bits(), row.location.y.to_bits());
            assert_eq!(loc_a.z.to_bits(), row.location.z.to_bits());
        }
    }
}

#[test]
fn empty_stream_matches_sinks() {
    // no events at all — and no completed epochs either
    assert_store_matches_sinks(&Replay {
        epochs: vec![],
        flush: vec![],
    });
    // completed epochs with zero events
    assert_store_matches_sinks(&Replay {
        epochs: vec![(0, vec![]), (1, vec![]), (2, vec![])],
        flush: vec![],
    });
}

#[test]
fn tombstoned_tag_matches_sinks() {
    // tag 2 departs (goes silent) after epoch 2; tag 1 keeps
    // reporting — the sinks report tag 2's last location forever, and
    // with default (unlimited-staleness) config so does the store
    let epochs = (0..10u64)
        .map(|e| {
            let mut evs = vec![ev(e, 1, e as f64, 0.0)];
            if e <= 2 {
                evs.push(ev(e, 2, -1.0, e as f64));
            }
            (e, evs)
        })
        .collect();
    assert_store_matches_sinks(&Replay {
        epochs,
        flush: vec![],
    });
}

#[test]
fn duplicate_events_in_one_epoch_match_sinks() {
    // the same tag reports twice in epoch 1 (e.g. merged shard
    // streams); last arrival wins the snapshot, the trail keeps both
    assert_store_matches_sinks(&Replay {
        epochs: vec![
            (0, vec![ev(0, 1, 0.5, 0.5)]),
            (1, vec![ev(1, 1, 1.0, 0.0), ev(1, 1, 2.0, 0.0)]),
            (2, vec![ev(2, 2, 3.0, 3.0)]),
        ],
        flush: vec![],
    });
}

#[test]
fn delayed_flush_events_match_sinks() {
    // events delivered by the end-of-stream flush carry old epochs —
    // the store must index them by arrival, as the sinks do
    assert_store_matches_sinks(&Replay {
        epochs: vec![
            (0, vec![ev(0, 1, 1.0, 1.0)]),
            (1, vec![]),
            (2, vec![ev(2, 2, 2.0, 2.0)]),
        ],
        flush: vec![ev(1, 1, 9.0, 9.0), ev(2, 3, 4.0, 4.0)],
    });
}

#[test]
fn randomized_streams_match_sinks() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..25 {
        let num_epochs = rng.gen_range(1..30u64);
        let num_tags = rng.gen_range(1..8u64);
        let epochs: Vec<(u64, Vec<LocationEvent>)> = (0..num_epochs)
            .map(|e| {
                let n = rng.gen_range(0..4usize);
                let evs = (0..n)
                    .map(|_| {
                        ev(
                            e,
                            rng.gen_range(0..num_tags),
                            rng.gen_range(-10.0..10.0),
                            rng.gen_range(-10.0..10.0),
                        )
                    })
                    .collect();
                (e, evs)
            })
            .collect();
        let flush = (0..rng.gen_range(0..3usize))
            .map(|_| {
                ev(
                    rng.gen_range(0..num_epochs),
                    rng.gen_range(0..num_tags),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                )
            })
            .collect();
        let replay = Replay { epochs, flush };
        assert_store_matches_sinks(&replay);
        let _ = case;
    }
}
