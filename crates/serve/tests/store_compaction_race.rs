//! Regression test: historical queries racing concurrent retention
//! compaction must answer **consistently** — a trail or snapshot whose
//! range reaches behind the (moving) horizon returns
//! `BeyondRetention`, never a silently shortened or later-state
//! answer, no matter when compaction lands relative to the query.
//!
//! The feed gives tag 1 exactly one event per epoch with event epoch
//! == arrival epoch, so a full-range trail answer is verifiable from
//! the outside: it must be the contiguous prefix `0..=k`. Any gap at
//! the front would be a compaction-truncated answer leaking through.

use rfid_serve::store::{EventStore, StoreConfig, StoreError};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

const EPOCHS: u64 = 2_000;

#[test]
fn queries_racing_compaction_refuse_instead_of_shortening() {
    let cfg = StoreConfig::default()
        .with_segment_epochs(8)
        .with_retention(32);
    let store = Arc::new(RwLock::new(EventStore::new(cfg)));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for e in 0..EPOCHS {
                let mut guard = store.write().unwrap();
                guard.on_event(&LocationEvent::new(
                    Epoch(e),
                    TagId(1),
                    rfid_geom::Point3::new(e as f64, 0.0, 0.0),
                ));
                guard.on_epoch_complete(Epoch(e));
                drop(guard);
                // slow-start through the pre-compaction epochs (the
                // first compaction lands near epoch 40) so the reader
                // provably observes Ok answers before refusals begin,
                // regardless of scheduling
                if e < 64 && e % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(500));
                } else if e % 16 == 0 {
                    std::thread::yield_now();
                }
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let mut trail_ok = 0u64;
    let mut trail_refused = 0u64;
    let mut snap_ok = 0u64;
    let mut snap_refused = 0u64;
    while !done.load(Ordering::SeqCst) {
        let guard = store.read().unwrap();

        // full-range trail: either the verifiably complete prefix or
        // a refusal — never a quietly shortened trail
        match guard.trail(TagId(1), Epoch(0), Epoch(u64::MAX)) {
            Ok(events) => {
                trail_ok += 1;
                for (i, s) in events.iter().enumerate() {
                    assert_eq!(
                        s.event.epoch.0, i as u64,
                        "trail answered Ok but is missing its prefix"
                    );
                }
            }
            Err(StoreError::BeyondRetention { requested, horizon }) => {
                trail_refused += 1;
                assert_eq!(requested, 0);
                assert!(horizon > 0, "refusal implies something was compacted");
            }
        }

        // epoch-0 snapshot: exactly the epoch-0 state or a refusal —
        // never later state standing in for the compacted instant
        match guard.snapshot_at(Epoch(0)) {
            Ok(rows) => {
                snap_ok += 1;
                for r in &rows {
                    assert_eq!(r.epoch, Epoch(0), "epoch-0 snapshot shows later state");
                }
            }
            Err(StoreError::BeyondRetention { requested, .. }) => {
                snap_refused += 1;
                assert_eq!(requested, 0);
            }
        }
        drop(guard);
        std::thread::yield_now();
    }
    writer.join().unwrap();

    // the loop must have actually raced both phases: answers before
    // the first compaction, refusals after
    assert!(trail_ok > 0, "no pre-compaction trail answers observed");
    assert!(trail_refused > 0, "no post-compaction trail refusals");
    assert!(snap_ok > 0, "no pre-compaction snapshot answers");
    assert!(snap_refused > 0, "no post-compaction snapshot refusals");

    // and the final state refuses deterministically
    let guard = store.read().unwrap();
    assert!(matches!(
        guard.trail(TagId(1), Epoch(0), Epoch(u64::MAX)),
        Err(StoreError::BeyondRetention { .. })
    ));
    let horizon = guard.retention_horizon();
    let full = guard
        .trail(TagId(1), Epoch(horizon + 1), Epoch(u64::MAX))
        .expect("fully-retained range answers");
    assert_eq!(full.last().unwrap().event.epoch.0, EPOCHS - 1);
}
