//! The connection-bound contract: with
//! `ServerConfig::max_connections`, an accept past the bound receives
//! one typed `ERR OVERLOADED` frame and a clean close — never a silent
//! hang — and closing an admitted connection frees its slot for the
//! next client.

use rfid_serve::query::{ErrorCode, Frame};
use rfid_serve::server::{read_frame, serve_with, QueryClient, ServerConfig};
use rfid_serve::store::EventStore;
use rfid_serve::{Query, QueryResponse, SubscriptionHub};
use rfid_stream::Epoch;
use std::net::TcpStream;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

#[test]
fn overflow_connections_get_a_typed_error_and_slots_recycle() {
    let store = Arc::new(RwLock::new(EventStore::default()));
    let server = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::default(),
        ServerConfig::default()
            .with_workers(2)
            .with_max_connections(2),
    )
    .expect("bind");

    let connect = || {
        QueryClient::connect(server.addr())
            .timeout(Duration::from_secs(2))
            .establish()
    };
    // fill the bound
    let mut c1 = connect().expect("first connection fits");
    let _c2 = connect().expect("second connection fits");
    // both admitted connections actually serve queries
    let resp = c1.query(&Query::SnapshotAt(Epoch(0))).expect("query");
    assert!(matches!(resp, QueryResponse::Rows(_)));

    // the third is refused with the typed error. A raw stream (which
    // writes nothing first) reads the refusal frame deterministically.
    let mut raw = TcpStream::connect(server.addr()).expect("tcp connect");
    raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let payload = read_frame(&mut raw)
        .expect("refusal frame readable")
        .expect("a frame, not bare EOF");
    let frame = Frame::parse(&payload).expect("refusal frame parses");
    let Frame::Err { id: 0, error } = frame else {
        panic!("expected ERR, got {frame:?}");
    };
    assert_eq!(error.code, ErrorCode::Overloaded);
    assert!(error.message.contains("limit"), "got {:?}", error.message);
    // ...followed by a clean close
    assert_eq!(read_frame(&mut raw).expect("clean EOF"), None);

    // a handshaking client sees the refusal as a failed establish
    assert!(connect().is_err(), "over-limit establish must fail");

    // dropping an admitted connection frees its slot (the worker
    // notices the close within its poll interval)
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut readmitted = None;
    while Instant::now() < deadline {
        match connect() {
            Ok(c) => {
                readmitted = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let mut c3 = readmitted.expect("slot recycles after a close");
    let resp = c3.query(&Query::SnapshotAt(Epoch(0))).expect("query");
    assert!(matches!(resp, QueryResponse::Rows(_)));

    server.shutdown();
}
