//! Regression test for the store under population churn
//! (`tag_churn_trace`: 4 mid-stream arrivals, tags 1 and 5 depart —
//! the GroundTruth-tombstone scenario from the accuracy library).
//!
//! The contract: with a finite `snapshot_staleness`, a departed tag
//! must drop out of `SnapshotAt` for epochs sufficiently far past its
//! last event, while staying **fully answerable** via `Trail` (and
//! `CurrentLocation`) within retention. Without staleness, the store
//! reports last-known-location forever — the `SnapshotSink`-identical
//! default that the pin tests rely on.

use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_sim::scenario;
use rfid_stream::pipeline::sinks::StoreSink;
use rfid_stream::{Epoch, Pipeline, TagId};
use std::sync::{Arc, RwLock};

/// Tags the scenario departs mid-stream (see
/// `rfid_sim::scenario::tag_churn_trace`).
const DEPARTED: [TagId; 2] = [TagId(1), TagId(5)];

/// Runs the engine over the churn trace through the pipeline into a
/// store with the given config.
fn ingest_churn(cfg: StoreConfig) -> Arc<RwLock<EventStore>> {
    let sc = scenario::tag_churn_trace(4004);
    let mut fcfg = FilterConfig::full_default();
    fcfg.particles_per_object = 150;
    fcfg.report_delay_epochs = 30;
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    let engine = InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), fcfg)
        .expect("valid config");
    let store = Arc::new(RwLock::new(EventStore::new(cfg)));
    let mut pipeline = Pipeline::new(
        sc.trace.epoch_len,
        engine,
        StoreSink::new(Arc::clone(&store)),
    );
    pipeline.run_to_completion(&mut sc.trace.stream());
    store
}

#[test]
fn departed_tags_age_out_of_snapshots_but_keep_their_trails() {
    // pass 1, unlimited store: learn where the departed tags' event
    // streams actually end, so the staleness bound is not guessed
    let probe = ingest_churn(StoreConfig::default());
    let (final_epoch, last_event, full_trails) = {
        let probe = probe.read().unwrap();
        let final_epoch = probe.latest_epoch();
        let last_event: Vec<u64> = DEPARTED
            .iter()
            .map(|&tag| {
                let trail = probe.trail(tag, Epoch(0), Epoch(u64::MAX)).unwrap();
                assert!(!trail.is_empty(), "{tag} must have pre-departure events");
                trail.last().unwrap().event.epoch.0
            })
            .collect();
        let full_trails: Vec<usize> = DEPARTED
            .iter()
            .map(|&tag| probe.trail(tag, Epoch(0), Epoch(u64::MAX)).unwrap().len())
            .collect();
        (final_epoch, last_event, full_trails)
    };
    let last_max = *last_event.iter().max().unwrap();
    let gap = final_epoch - last_max;
    assert!(
        gap >= 2,
        "departure must precede end of trace by enough to age out (gap {gap})"
    );
    let staleness = (gap / 2).max(1);

    // pass 2: same trace, staleness configured, retention covering the
    // whole trace (so "within retention" is the full history here)
    let store = ingest_churn(
        StoreConfig::default()
            .with_segment_epochs(32)
            .with_snapshot_staleness(staleness)
            .with_retention(final_epoch + 64),
    );
    let store = store.read().unwrap();
    assert_eq!(store.stats().events_compacted, 0, "retention covers all");

    for (i, &tag) in DEPARTED.iter().enumerate() {
        // while its events are fresh, the tag is in the snapshot…
        let fresh: Vec<TagId> = store
            .snapshot_at(Epoch(last_event[i]))
            .unwrap()
            .iter()
            .map(|r| r.tag)
            .collect();
        assert!(fresh.contains(&tag), "{tag} missing while fresh");
        // …for later epochs it has dropped out…
        let late: Vec<TagId> = store
            .snapshot_at(Epoch(final_epoch))
            .unwrap()
            .iter()
            .map(|r| r.tag)
            .collect();
        assert!(
            !late.contains(&tag),
            "{tag} departed at epoch {} but still in the epoch-{final_epoch} snapshot",
            last_event[i]
        );
        // …while its full trail stays answerable within retention
        let trail = store.trail(tag, Epoch(0), Epoch(u64::MAX)).unwrap();
        assert_eq!(trail.len(), full_trails[i], "{tag} trail truncated");
        assert_eq!(trail.last().unwrap().event.epoch.0, last_event[i]);
        // and CurrentLocation still reports the last known fix
        let current = store.current_location(tag).expect("last known location");
        assert_eq!(current.epoch.0, last_event[i]);
    }

    // live tags (the engine keeps reporting them) stay in the final
    // snapshot — staleness must not age out the whole relation
    let late = store.snapshot_at(Epoch(final_epoch)).unwrap();
    assert!(
        !late.is_empty(),
        "live tags must survive the staleness filter"
    );
    assert!(late.iter().all(|r| !DEPARTED.contains(&r.tag)));
}
