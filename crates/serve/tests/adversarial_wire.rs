//! Adversarial peers against a live query server: oversized length
//! prefixes, frames truncated at every byte boundary, garbage after a
//! valid frame, non-UTF-8 payloads, and a poisoned store lock. The
//! server must answer with a typed `ERR BAD_REQUEST` where a reply is
//! possible, close the connection cleanly, and keep serving everyone
//! else. The stream-level twins of these tests live in
//! `rfid_stream::wire`; this file checks the server glue.

use rfid_geom::Point3;
use rfid_serve::server::{read_frame, write_frame};
use rfid_serve::store::{EventStore, StoreConfig};
use rfid_serve::{serve, serve_with, HubConfig, Query, QueryClient, ServerConfig, SubscriptionHub};
use rfid_stream::{Epoch, LocationEvent, TagId};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, RwLock};
use std::time::Duration;

fn seeded_store(tags: u64, epochs: u64) -> EventStore {
    let mut store = EventStore::new(StoreConfig::default().with_segment_epochs(8));
    for e in 0..epochs {
        for t in 0..tags {
            store.push(&LocationEvent::new(
                Epoch(e),
                TagId(t),
                Point3::new(t as f64, e as f64, 0.0),
            ));
        }
        store.complete_epoch(Epoch(e));
    }
    store
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Reads until EOF, asserting the connection was closed by the server.
fn assert_closed(stream: &mut TcpStream) {
    let mut rest = Vec::new();
    stream
        .read_to_end(&mut rest)
        .expect("read to EOF after the error reply");
    assert!(
        rest.is_empty(),
        "no frames may follow the error reply: {rest:?}"
    );
}

#[test]
fn oversized_prefix_gets_typed_error_then_clean_close() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::new(HubConfig::default()),
        ServerConfig::default().with_max_frame_len(64),
    )
    .expect("bind");

    let mut raw = connect(handle.addr());
    // announce 16 MiB against a 64-byte cap; never send the payload
    raw.write_all(&(16u32 << 20).to_be_bytes()).unwrap();
    let reply = read_frame(&mut raw).unwrap().expect("an error reply");
    assert!(
        reply.starts_with("ERR 0 BAD_REQUEST"),
        "oversized prefix answered {reply:?}"
    );
    assert!(
        reply.contains("exceeds") && reply.contains("64"),
        "the reply names the cap: {reply:?}"
    );
    assert_closed(&mut raw);

    // an in-cap frame on a fresh connection still works
    let mut ok = connect(handle.addr());
    write_frame(&mut ok, "CURRENT 1").unwrap();
    let resp = read_frame(&mut ok).unwrap().expect("a reply");
    assert!(resp.starts_with("OK "), "{resp:?}");
    handle.shutdown();
}

#[test]
fn truncation_at_every_byte_boundary_never_wedges_the_server() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");

    let mut wire = Vec::new();
    write_frame(&mut wire, "CURRENT 1").unwrap();
    for cut in 0..wire.len() {
        let mut raw = connect(handle.addr());
        raw.write_all(&wire[..cut]).unwrap();
        raw.shutdown(Shutdown::Write).unwrap();
        // the server drops the half-frame without replying or dying
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("server closes its side");
        assert!(
            rest.is_empty(),
            "cut at byte {cut}: no reply to a half-frame, got {rest:?}"
        );
    }

    // after every truncation the server still answers a whole frame
    let mut client = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect");
    let rows = client
        .query(&Query::CurrentLocation(TagId(1)))
        .expect("query after truncation storm")
        .into_rows()
        .expect("rows");
    assert_eq!(rows.len(), 1);
    handle.shutdown();
}

#[test]
fn garbage_after_valid_frame_answers_then_closes() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");

    let mut raw = connect(handle.addr());
    let mut wire = Vec::new();
    write_frame(&mut wire, "CURRENT 1").unwrap();
    // 0xFFFFFFFF reads as a 4 GiB announcement — over any sane cap
    wire.extend_from_slice(&[0xFF; 32]);
    raw.write_all(&wire).unwrap();

    // the valid frame is answered first…
    let first = read_frame(&mut raw).unwrap().expect("query reply");
    assert!(first.starts_with("OK "), "{first:?}");
    // …then the garbage draws the typed error and the close
    let err = read_frame(&mut raw).unwrap().expect("error reply");
    assert!(err.starts_with("ERR 0 BAD_REQUEST"), "{err:?}");
    assert_closed(&mut raw);
    handle.shutdown();
}

#[test]
fn non_utf8_payload_is_bad_request_not_a_dead_worker() {
    let store = Arc::new(RwLock::new(seeded_store(2, 4)));
    let handle = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");

    let mut raw = connect(handle.addr());
    let payload = [0xC3u8, 0x28, 0xA0, 0xA1]; // invalid UTF-8 sequences
    raw.write_all(&(payload.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let err = read_frame(&mut raw).unwrap().expect("error reply");
    assert!(err.starts_with("ERR 0 BAD_REQUEST"), "{err:?}");
    assert!(err.contains("UTF-8"), "{err:?}");
    assert_closed(&mut raw);
    handle.shutdown();
}

#[test]
fn poisoned_store_lock_recovers_instead_of_cascading() {
    let store = Arc::new(RwLock::new(seeded_store(3, 4)));
    let handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&store),
        SubscriptionHub::new(HubConfig::default()),
        ServerConfig::default().with_workers(1),
    )
    .expect("bind");

    // a writer dies while holding the guard: the lock is now poisoned
    {
        let poisoner = Arc::clone(&store);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("writer dies mid-update");
        })
        .join();
    }
    assert!(store.is_poisoned(), "the store lock must be poisoned");

    // v2 and v1 queries both still answer from the recovered guard
    let mut v2 = QueryClient::connect(handle.addr())
        .timeout(Duration::from_secs(10))
        .establish()
        .expect("connect v2");
    let rows = v2
        .query(&Query::CurrentLocation(TagId(2)))
        .expect("query a poisoned store")
        .into_rows()
        .expect("rows");
    assert_eq!(rows.len(), 1, "data survives the poisoning");

    let mut v1 = connect(handle.addr());
    write_frame(&mut v1, "CURRENT 0").unwrap();
    let resp = read_frame(&mut v1).unwrap().expect("v1 reply");
    assert!(resp.starts_with("OK "), "{resp:?}");
    handle.shutdown();
}
