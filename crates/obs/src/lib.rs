//! Zero-cost observability for the RFID inference stack: a metrics
//! registry, mergeable snapshots, a Prometheus-style text exposition,
//! and a span-style trace ring for slow epochs and slow queries.
//!
//! ## Design constraints
//!
//! The registry instruments the inference hot path, whose contracts
//! are strict: the steady-state object step performs **zero heap
//! allocations** and the emitted event stream is **bit-identical**
//! with or without instrumentation. The registry therefore separates
//! *registration* from *recording*:
//!
//! * [`Registry::counter`] / [`Registry::gauge`] /
//!   [`Registry::histogram`] take a mutex and may allocate — call them
//!   once, at construction time, and keep the returned handle;
//! * the handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//!   `Arc`-shared atomics: [`Counter::add`], [`Gauge::record_max`],
//!   and [`Histogram::record`] are single relaxed atomic RMW ops —
//!   lock-free, allocation-free, and RNG-free (pinned by
//!   `rfid-core/tests/alloc_free.rs` and the golden-trace digests).
//!
//! Histograms use 64 fixed power-of-two buckets (bucket `i` covers
//! `[2^(i-1), 2^i - 1]`, bucket 0 holds zeros), so recording is a
//! `leading_zeros` and one atomic add, and merging two histograms is
//! element-wise addition — associative and commutative, which makes
//! cluster-wide aggregation order-insensitive (pinned by
//! `tests/registry_prop.rs`).
//!
//! ## Process-global surfaces
//!
//! [`global()`] is the process-wide registry every component records
//! into; a server scrapes it live via the `TELEMETRY` verb, cluster
//! workers snapshot it once per epoch and piggyback the snapshot on
//! their report frames, and benchmarks diff it around a run to embed
//! per-run metric deltas in their JSON output. [`trace()`] is the
//! process-wide [`TraceLog`]: a fixed-capacity ring of
//! [`TraceEntry`]s recorded by threshold-gated call sites (slow
//! epochs, slow queries), dumpable via `TELEMETRY TRACE`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Fixed bucket count of every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`
/// (clamped), so bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter handle (clone = same counter).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (tests, placeholders).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lock-free, allocation-free hot-path increment.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last/max-value gauge handle (clone = same gauge).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (tests, placeholders).
    pub fn detached() -> Self {
        Self(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Ratchets the gauge upward (high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log-scale histogram handle (clone = same histogram).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry (tests, placeholders).
    pub fn detached() -> Self {
        Self(Arc::new(HistogramCore::new()))
    }

    /// Lock-free, allocation-free hot-path recording: one
    /// `leading_zeros` and three relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &*self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of every recorded value — for stage timers this is the
    /// exact same `u64` total the legacy stat structs accumulate.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // load count before the buckets: a racing `record` then at
        // worst shows in a bucket but not in `count`, never the
        // reverse, keeping `count <= sum(buckets)` violations out
        let count = self.0.count.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Registration (the `counter` /
/// `gauge` / `histogram` getters) takes a mutex and is idempotent:
/// the same name always resolves to the same underlying metric, so
/// components constructed at different times share handles.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or fetches) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Registers (or fetches) the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Registers (or fetches) the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().expect("registry poisoned");
        Snapshot {
            entries: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => Value::Counter(c.get()),
                        Metric::Gauge(g) => Value::Gauge(g.get()),
                        Metric::Histogram(h) => Value::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// The process-global registry (every component records here).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-global trace ring (slow epochs, slow queries).
pub fn trace() -> &'static TraceLog {
    static TRACE: OnceLock<TraceLog> = OnceLock::new();
    TRACE.get_or_init(TraceLog::new)
}

// ---------------------------------------------------------------------
// snapshots
// ---------------------------------------------------------------------

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

/// A frozen histogram: per-bucket counts plus total count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `HISTOGRAM_BUCKETS` per-bucket counts (not cumulative).
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise addition — associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile estimate (`0.0..=1.0`): the inclusive upper
    /// bound of the bucket holding the rank-`ceil(q*count)` value, so
    /// the estimate `e` of a true quantile `v >= 1` satisfies
    /// `v <= e < 2v` (one power-of-two bucket of slack). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time, name-sorted copy of a registry's metrics.
/// Snapshots are plain data: they merge (cluster aggregation), diff
/// (per-run deltas), and render (text exposition) without touching
/// any live registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Sorted by name, names unique.
    entries: Vec<(String, Value)>,
}

impl Snapshot {
    /// Builds a snapshot from raw entries (wire decode); sorts by
    /// name and keeps the first of any duplicated name.
    pub fn from_entries(mut entries: Vec<(String, Value)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|b, a| a.0 == b.0);
        Self { entries }
    }

    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name (0 when absent or of another kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Value::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0 when absent or of another kind).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Value::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram by name (`None` when absent or of another kind).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(Value::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merges `other` into `self`, name by name: counters and
    /// histogram buckets add, gauges take the max — every rule
    /// associative and commutative, so a cluster-wide merge gives one
    /// answer regardless of arrival order. Names only in `other` are
    /// inserted; a name registered with different kinds on different
    /// peers keeps `self`'s value.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.entries {
            match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => match (&mut self.entries[i].1, theirs) {
                    (Value::Counter(a), Value::Counter(b)) => *a += b,
                    (Value::Gauge(a), Value::Gauge(b)) => *a = (*a).max(*b),
                    (Value::Histogram(a), Value::Histogram(b)) => a.merge(b),
                    _ => {}
                },
                Err(i) => self.entries.insert(i, (name.clone(), theirs.clone())),
            }
        }
    }

    /// What happened between `baseline` and `self`: counters and
    /// histograms subtract (saturating — a restarted peer reads as
    /// zero progress, never as underflow), gauges keep `self`'s
    /// value. Names absent from `baseline` pass through unchanged.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, now)| {
                let value = match (now, baseline.get(name)) {
                    (Value::Counter(a), Some(Value::Counter(b))) => {
                        Value::Counter(a.saturating_sub(*b))
                    }
                    (Value::Histogram(a), Some(Value::Histogram(b))) => {
                        let mut h = a.clone();
                        for (x, y) in h.buckets.iter_mut().zip(&b.buckets) {
                            *x = x.saturating_sub(*y);
                        }
                        h.count = h.count.saturating_sub(b.count);
                        h.sum = h.sum.saturating_sub(b.sum);
                        Value::Histogram(h)
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }

    /// Prometheus-style text exposition: `# TYPE` lines, scalar
    /// samples, and cumulative `_bucket{le="…"}` / `_sum` / `_count`
    /// series for histograms (empty buckets are elided; `+Inf` is
    /// always present).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                Value::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        if *b == 0 {
                            continue;
                        }
                        cum += b;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// stage tracing
// ---------------------------------------------------------------------

/// One trace-ring entry. Labels are `&'static str` so recording never
/// allocates; `detail` carries up to three label-specific values (for
/// `slow_epoch`: the ingest/infer/emit stage micros).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// What kind of span this is (`"slow_epoch"`, `"slow_query"`).
    pub label: &'static str,
    /// Label-specific detail (the query verb, the pipeline stage).
    pub what: &'static str,
    /// Epoch the span covered (0 when not epoch-scoped).
    pub epoch: u64,
    /// Connection id (0 when not connection-scoped).
    pub conn: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Label-specific breakdown values.
    pub detail: [u64; 3],
}

impl TraceEntry {
    /// An entry with only a label and duration; set the rest by field.
    pub fn new(label: &'static str, dur_us: u64) -> Self {
        Self {
            label,
            what: "",
            epoch: 0,
            conn: 0,
            dur_us,
            detail: [0; 3],
        }
    }

    /// One exposition line (the `TELEMETRY TRACE` format).
    pub fn render(&self) -> String {
        format!(
            "{} what={} epoch={} conn={} dur_us={} detail={}/{}/{}",
            self.label,
            if self.what.is_empty() { "-" } else { self.what },
            self.epoch,
            self.conn,
            self.dur_us,
            self.detail[0],
            self.detail[1],
            self.detail[2],
        )
    }
}

struct TraceRing {
    /// Preallocated to [`TraceLog::CAPACITY`]; once full, `next`
    /// wraps and old entries are overwritten.
    buf: Vec<TraceEntry>,
    next: usize,
}

/// A fixed-capacity ring of [`TraceEntry`]s plus the shared
/// slow-epoch threshold. Recording takes a mutex but never allocates
/// (the ring is preallocated), and call sites are threshold-gated, so
/// the steady-state cost is one relaxed atomic load per epoch.
pub struct TraceLog {
    ring: Mutex<TraceRing>,
    /// Epochs slower than this (µs) are recorded; 0 disables.
    slow_epoch_us: AtomicU64,
    dropped: AtomicU64,
}

impl TraceLog {
    /// Entries retained before the ring overwrites the oldest.
    pub const CAPACITY: usize = 256;

    pub fn new() -> Self {
        Self {
            ring: Mutex::new(TraceRing {
                buf: Vec::with_capacity(Self::CAPACITY),
                next: 0,
            }),
            slow_epoch_us: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The slow-epoch sampling threshold in µs (0 = disabled).
    #[inline]
    pub fn slow_epoch_us(&self) -> u64 {
        self.slow_epoch_us.load(Ordering::Relaxed)
    }

    /// Sets the slow-epoch sampling threshold (0 disables).
    pub fn set_slow_epoch_us(&self, v: u64) {
        self.slow_epoch_us.store(v, Ordering::Relaxed);
    }

    /// Appends one entry, overwriting the oldest once full.
    pub fn record(&self, entry: TraceEntry) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() < Self::CAPACITY {
            ring.buf.push(entry);
        } else {
            let i = ring.next;
            ring.buf[i] = entry;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.next = (ring.next + 1) % Self::CAPACITY;
    }

    /// Entries overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() < Self::CAPACITY {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(Self::CAPACITY);
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// One line per retained entry, oldest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.entries() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Empties the ring (tests, post-dump resets).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.buf.clear();
        ring.next = 0;
    }
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // every value lands in the bucket whose bound brackets it
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn registry_handles_share_state_and_snapshot() {
        let reg = Registry::new();
        let c1 = reg.counter("requests_total");
        let c2 = reg.counter("requests_total");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        let g = reg.gauge("queue_depth");
        g.set(7);
        g.record_max(3); // below current: no-op
        assert_eq!(g.get(), 7);
        let h = reg.histogram("latency_us");
        h.record(100);
        h.record(300);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests_total"), 4);
        assert_eq!(snap.gauge("queue_depth"), 7);
        let hist = snap.histogram("latency_us").expect("histogram present");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 400);
        // snapshot entries are name-sorted
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let a = Registry::new();
        a.counter("n").add(2);
        a.gauge("hw").set(5);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("n").add(3);
        b.gauge("hw").set(4);
        b.histogram("h").record(1000);
        b.counter("only_b").inc();
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("n"), 5);
        assert_eq!(m.gauge("hw"), 5);
        assert_eq!(m.counter("only_b"), 1);
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
    }

    #[test]
    fn diff_isolates_a_run() {
        let reg = Registry::new();
        let c = reg.counter("events");
        let h = reg.histogram("us");
        c.add(10);
        h.record(50);
        let before = reg.snapshot();
        c.add(7);
        h.record(200);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("events"), 7);
        let hd = delta.histogram("us").unwrap();
        assert_eq!(hd.count, 1);
        assert_eq!(hd.sum, 200);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let s = {
            let r = Registry::new();
            let rh = r.histogram("h");
            for v in [1u64, 2, 3, 100] {
                rh.record(v);
            }
            r.snapshot()
        };
        let hs = s.histogram("h").unwrap();
        // rank 1 of 4 -> value 1 -> bucket 1 (bound 1)
        assert_eq!(hs.quantile(0.25), 1);
        // rank 4 of 4 -> value 100 -> bucket 7 (bound 127)
        assert_eq!(hs.quantile(1.0), 127);
        assert_eq!(hs.quantile(0.0), 1, "q=0 clamps to the first rank");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn exposition_renders_all_three_kinds() {
        let reg = Registry::new();
        reg.counter("a_total").add(2);
        reg.gauge("b_depth").set(9);
        let h = reg.histogram("c_us");
        h.record(0);
        h.record(3);
        let text = reg.snapshot().render();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"));
        assert!(text.contains("# TYPE b_depth gauge\nb_depth 9\n"));
        assert!(text.contains("# TYPE c_us histogram\n"));
        assert!(text.contains("c_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("c_us_bucket{le=\"3\"} 2\n"), "{text}");
        assert!(text.contains("c_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("c_us_sum 3\n"));
        assert!(text.contains("c_us_count 2\n"));
    }

    #[test]
    fn trace_ring_wraps_and_orders_oldest_first() {
        let log = TraceLog::new();
        assert_eq!(log.slow_epoch_us(), 0, "sampling is off by default");
        log.set_slow_epoch_us(500);
        assert_eq!(log.slow_epoch_us(), 500);
        for i in 0..TraceLog::CAPACITY as u64 + 10 {
            let mut e = TraceEntry::new("slow_epoch", i);
            e.epoch = i;
            log.record(e);
        }
        let entries = log.entries();
        assert_eq!(entries.len(), TraceLog::CAPACITY);
        assert_eq!(entries[0].epoch, 10, "the 10 oldest were overwritten");
        assert_eq!(entries.last().unwrap().epoch, TraceLog::CAPACITY as u64 + 9);
        assert_eq!(log.dropped(), 10);
        let text = log.render();
        assert!(text.lines().count() == TraceLog::CAPACITY);
        assert!(text.starts_with("slow_epoch what=- epoch=10"));
        log.clear();
        assert!(log.entries().is_empty());
    }

    #[test]
    fn global_registry_and_trace_are_singletons() {
        let c = global().counter("obs_selftest_total");
        c.inc();
        assert_eq!(global().snapshot().counter("obs_selftest_total"), 1);
        trace().record(TraceEntry::new("selftest", 1));
        assert!(trace().entries().iter().any(|e| e.label == "selftest"));
    }
}
