//! Metamorphic properties of the metrics registry:
//!
//! 1. histogram merge is associative and commutative (the cluster
//!    aggregation rule is order-insensitive);
//! 2. quantile estimates are bounded by bucket width: for a true
//!    quantile `v >= 1` the estimate `e` satisfies `v <= e < 2v`;
//! 3. snapshot-then-merge equals single-registry recording: splitting
//!    a value stream across registries and merging their snapshots
//!    reproduces the snapshot of one registry fed everything.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_obs::{Registry, Snapshot, Value};

/// Random values spanning the full bucket range (log-uniform-ish).
fn random_values(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let shift = rng.gen_range(0u32..40);
            rng.gen_range(0u64..1 << 20) >> shift.min(20) << (shift / 2)
        })
        .collect()
}

/// Builds a registry holding one counter, one gauge, and one
/// histogram fed from `values`.
fn build(values: &[u64]) -> Registry {
    let reg = Registry::new();
    let c = reg.counter("events_total");
    let g = reg.gauge("high_water");
    let h = reg.histogram("latency_us");
    for v in values {
        c.add(v % 7);
        g.record_max(*v);
        h.record(*v);
    }
    reg
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative_and_commutative(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let snaps: Vec<Snapshot> = (0..3)
            .map(|_| {
                let n = rng.gen_range(0usize..50);
                build(&random_values(&mut rng, n)).snapshot()
            })
            .collect();
        let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);
        // commutative
        prop_assert_eq!(merged(a, b), merged(b, a));
        // associative
        prop_assert_eq!(merged(&merged(a, b), c), merged(a, &merged(b, c)));
    }

    #[test]
    fn quantile_estimates_are_bounded_by_bucket_width(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..80);
        let mut values = random_values(&mut rng, n);
        let reg = Registry::new();
        let h = reg.histogram("q");
        for v in &values {
            h.record(*v);
        }
        values.sort_unstable();
        let snap = reg.snapshot();
        let hist = snap.histogram("q").expect("histogram registered");
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let est = hist.quantile(q);
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = values[rank - 1];
            if truth == 0 {
                prop_assert_eq!(est, 0);
            } else {
                prop_assert!(
                    truth <= est && est < truth.saturating_mul(2),
                    "q={q}: true {truth}, estimate {est}"
                );
            }
        }
    }

    #[test]
    fn snapshot_then_merge_equals_single_registry(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..60);
        let values = random_values(&mut rng, n);
        let split = if values.is_empty() { 0 } else { rng.gen_range(0..values.len()) };
        let (left, right) = values.split_at(split);
        let combined = merged(&build(left).snapshot(), &build(right).snapshot());
        let single = build(&values).snapshot();
        // counters and histograms agree exactly; the gauge merge rule
        // is max, which also matches single-registry record_max
        prop_assert_eq!(combined, single);
    }

    #[test]
    fn diff_then_merge_roundtrips(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_before = rng.gen_range(0usize..30);
        let before_vals = random_values(&mut rng, n_before);
        let reg = Registry::new();
        let c = reg.counter("events_total");
        let h = reg.histogram("latency_us");
        for v in &before_vals {
            c.add(*v % 7);
            h.record(*v);
        }
        let before = reg.snapshot();
        let n_extra = rng.gen_range(0usize..30);
        let extra = random_values(&mut rng, n_extra);
        for v in &extra {
            c.add(*v % 7);
            h.record(*v);
        }
        let after = reg.snapshot();
        let delta = after.diff(&before);
        // merging the delta back onto the baseline reproduces `after`
        // for every additive metric (no gauges here)
        prop_assert_eq!(merged(&before, &delta), after);
        for (name, v) in delta.entries() {
            match v {
                Value::Counter(_) | Value::Histogram(_) => {}
                other => prop_assert!(false, "unexpected kind for {name}: {other:?}"),
            }
        }
    }
}
