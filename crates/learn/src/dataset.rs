//! Training rows for the sensor-model fit.

use rfid_geom::{Point3, Pose};
use rfid_model::SensorParams;

/// One weighted observation for logistic regression: the feature vector
/// `[1, d, d², θ, θ²]`, the binary outcome (read / missed), and an
/// importance weight (posterior mass of the hidden state that produced
/// the geometry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorRow {
    pub features: [f64; 5],
    pub read: bool,
    pub weight: f64,
}

impl SensorRow {
    /// Builds a row from reader pose and tag location.
    pub fn from_geometry(reader: &Pose, tag: &Point3, read: bool, weight: f64) -> Self {
        let (d, th) = reader.range_bearing(tag);
        Self {
            features: SensorParams::features(d, th),
            read,
            weight,
        }
    }

    /// Builds a row directly from distance and angle.
    pub fn from_dt(d: f64, theta: f64, read: bool, weight: f64) -> Self {
        Self {
            features: SensorParams::features(d, theta),
            read,
            weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_row_matches_dt_row() {
        let pose = Pose::new(Point3::new(0.0, 0.0, 0.0), 0.0);
        let tag = Point3::new(3.0, 0.0, 0.0);
        let a = SensorRow::from_geometry(&pose, &tag, true, 1.0);
        let b = SensorRow::from_dt(3.0, 0.0, true, 1.0);
        assert_eq!(a, b);
        assert_eq!(a.features, [1.0, 3.0, 9.0, 0.0, 0.0]);
    }
}
