//! Self-calibration of the probabilistic model (§III-C).
//!
//! "An important benefit of having a flexible parametric model is that
//! we can automatically learn the model parameters using a small
//! training data set collected from the same environment in which the
//! system is to be fielded." The training data is a short trace with a
//! handful of *shelf tags with known locations*; everything else is
//! hidden, so estimation is Expectation–Maximization:
//!
//! * **E-step** — run the particle filter (the `rfid-core` engine) under
//!   the current parameters to obtain distributions over the hidden
//!   reader poses and object locations, and convert them into weighted
//!   training rows.
//! * **M-step** — refit the logistic sensor coefficients by weighted
//!   logistic regression ([`logistic`], IRLS), and re-estimate the
//!   motion and location-sensing Gaussians by weighted moments
//!   ([`motion_fit`]).
//!
//! [`em::calibrate`] runs the loop; a few iterations on a 20-tag trace
//! recover sensor models close to the ground truth (Fig. 5(b)), and the
//! quality degrades gracefully as known tags are removed (Fig. 5(e)).

pub mod dataset;
pub mod em;
pub mod logistic;
pub mod motion_fit;

pub use dataset::SensorRow;
pub use em::{calibrate, EmConfig, EmResult};
pub use logistic::{fit_logistic, fit_logistic_signed};
