//! Moment-based estimation of the motion and location-sensing
//! Gaussians.
//!
//! Given the E-step's posterior-mean reader trajectory, the M-step for
//! the Gaussian components is in closed form:
//!
//! * motion: `Δ̂` is the mean per-epoch displacement and `Σ̂_m` the
//!   per-axis variance of the displacement residuals (relative to the
//!   odometry increment when odometry is available, since the filter
//!   proposes from odometry-conditioned motion);
//! * sensing: `µ̂_s` is the mean of `reported − estimated` and `Σ̂_s`
//!   the per-axis variance of those residuals.

use rfid_geom::{Point3, Vec3};
use rfid_model::params::{MotionParams, SensingParams};

/// Per-axis mean of a vector sample.
fn mean(vs: &[Vec3]) -> Vec3 {
    if vs.is_empty() {
        return Vec3::zero();
    }
    let mut m = Vec3::zero();
    for v in vs {
        m += *v;
    }
    m / vs.len() as f64
}

/// Per-axis standard deviation around `m`.
fn std(vs: &[Vec3], m: &Vec3) -> Vec3 {
    if vs.len() < 2 {
        return Vec3::zero();
    }
    let mut s = Vec3::zero();
    for v in vs {
        let d = *v - *m;
        s += Vec3::new(d.x * d.x, d.y * d.y, d.z * d.z);
    }
    let n = vs.len() as f64;
    Vec3::new((s.x / n).sqrt(), (s.y / n).sqrt(), (s.z / n).sqrt())
}

/// Estimates motion parameters from the inferred true trajectory.
/// `estimated` is the per-epoch posterior-mean reader position;
/// `odometry` the per-epoch odometry increment when available (same
/// length as `estimated.len() - 1`, entries `None` when no report
/// arrived). `floor` lower-bounds the stds so the filter never
/// degenerates to zero proposal noise.
pub fn fit_motion(
    estimated: &[Point3],
    odometry: &[Option<Vec3>],
    heading_std: f64,
    floor: f64,
) -> MotionParams {
    let mut deltas = Vec::new();
    let mut residuals = Vec::new();
    for t in 1..estimated.len() {
        let d = estimated[t] - estimated[t - 1];
        deltas.push(d);
        if let Some(Some(o)) = odometry.get(t - 1) {
            residuals.push(d - *o);
        }
    }
    let delta = mean(&deltas);
    // residuals vs odometry when present, else around the mean delta
    let sigma = if residuals.is_empty() {
        std(&deltas, &delta)
    } else {
        let rm = mean(&residuals);
        std(&residuals, &rm)
    };
    MotionParams {
        delta,
        sigma: Vec3::new(sigma.x.max(floor), sigma.y.max(floor), sigma.z.max(0.0)),
        heading_std,
    }
}

/// Estimates location-sensing parameters from `reported − estimated`
/// residuals. `floor` lower-bounds the stds (a zero sensing std would
/// make the filter trust reports absolutely).
pub fn fit_sensing(residuals: &[Vec3], heading_std: f64, floor: f64) -> SensingParams {
    let mu = mean(residuals);
    let sigma = std(residuals, &mu);
    SensingParams {
        mu,
        sigma: Vec3::new(sigma.x.max(floor), sigma.y.max(floor), sigma.z.max(0.0)),
        heading_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_motion_recovers_drift() {
        // trajectory drifting 0.1/epoch along y with known odometry of
        // 0.08 (systematically under-reporting)
        let n = 200;
        let estimated: Vec<Point3> = (0..n)
            .map(|t| Point3::new(0.0, t as f64 * 0.1, 0.0))
            .collect();
        let odometry: Vec<Option<Vec3>> = (0..n - 1)
            .map(|_| Some(Vec3::new(0.0, 0.08, 0.0)))
            .collect();
        let m = fit_motion(&estimated, &odometry, 0.0, 0.005);
        assert!((m.delta.y - 0.1).abs() < 1e-9);
        // residual vs odometry is constant 0.02 => tiny std, floored
        assert!(m.sigma.y >= 0.005);
        assert_eq!(m.sigma.z, 0.0);
    }

    #[test]
    fn fit_motion_without_odometry_uses_delta_spread() {
        let estimated = vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(0.0, 0.1, 0.0),
            Point3::new(0.0, 0.3, 0.0),
            Point3::new(0.0, 0.4, 0.0),
        ];
        let odometry = vec![None, None, None];
        let m = fit_motion(&estimated, &odometry, 0.0, 0.001);
        assert!((m.delta.y - 0.4 / 3.0).abs() < 1e-9);
        assert!(m.sigma.y > 0.0);
    }

    #[test]
    fn fit_sensing_recovers_bias() {
        let residuals: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new(0.0, 0.5 + 0.01 * ((i % 5) as f64 - 2.0), 0.0))
            .collect();
        let s = fit_sensing(&residuals, 0.0, 0.001);
        assert!((s.mu.y - 0.5).abs() < 1e-9);
        assert!(s.sigma.y >= 0.001);
        assert!(s.mu.x.abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_floor_gracefully() {
        let m = fit_motion(&[], &[], 0.0, 0.01);
        assert_eq!(m.delta, Vec3::zero());
        assert_eq!(m.sigma.x, 0.01);
        let s = fit_sensing(&[], 0.0, 0.01);
        assert_eq!(s.mu, Vec3::zero());
        assert_eq!(s.sigma.y, 0.01);
    }
}
