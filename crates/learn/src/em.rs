//! The Monte-Carlo EM calibration loop (§III-C).
//!
//! Each iteration runs the particle-filter engine under the current
//! parameters (the E-step approximates the posterior over hidden reader
//! poses and object locations with particles), converts the filter
//! state into weighted logistic-regression rows and Gaussian residuals,
//! and refits all parameters (M-step).
//!
//! Shelf tags with known locations anchor the geometry: their rows use
//! exact tag positions, so distance/angle features are only as
//! uncertain as the reader pose. Object tags contribute rows through
//! their particle clouds. With zero shelf tags nothing pins the
//! geometry and EM converges to a local maximum — exactly the failure
//! the paper reports for the 0-shelf-tag point of Fig. 5(e).

use crate::dataset::SensorRow;
use crate::logistic::fit_logistic_signed;
use crate::motion_fit::{fit_motion, fit_sensing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_geom::{Point3, Vec3};
use rfid_model::object::LocationPrior;
use rfid_model::{JointModel, ModelParams};
use rfid_stream::{EpochBatch, TagId};
use std::collections::BTreeSet;

/// Calibration configuration.
#[derive(Debug, Clone, Copy)]
pub struct EmConfig {
    /// EM iterations (the outer loop).
    pub iterations: usize,
    /// Particles per object during the E-step.
    pub particles_per_object: usize,
    /// Reader particles during the E-step.
    pub reader_particles: usize,
    /// Object particles subsampled into rows per (epoch, object).
    pub rows_per_object: usize,
    /// L2 ridge for the logistic fit.
    pub ridge: f64,
    /// Lower bound on fitted noise stds, feet.
    pub noise_floor: f64,
    /// Whether to refit motion/sensing Gaussians (sensor-only
    /// calibration keeps the initial ones).
    pub fit_motion_params: bool,
    /// E-step exploration floor on the sensing std (feet). During
    /// calibration the filter must not trust the location reports
    /// absolutely, or the posterior collapses onto the (possibly
    /// biased) reports and the bias can never be learned. The *fitted*
    /// parameters are not floored by this.
    pub estep_sensing_sigma_floor: f64,
    /// E-step exploration floor on the motion std (feet): reader
    /// particles need spread to discover a systematic report bias.
    pub estep_motion_sigma_floor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            iterations: 4,
            particles_per_object: 400,
            reader_particles: 60,
            rows_per_object: 25,
            ridge: 1e-3,
            noise_floor: 0.005,
            fit_motion_params: true,
            estep_sensing_sigma_floor: 0.25,
            estep_motion_sigma_floor: 0.05,
            seed: 0xca1b,
        }
    }
}

/// Calibration output.
#[derive(Debug, Clone)]
pub struct EmResult {
    /// The learned parameter bundle.
    pub params: ModelParams,
    /// Training-rows negative log-likelihood per iteration (should be
    /// non-increasing up to Monte-Carlo noise).
    pub nll_history: Vec<f64>,
    /// Rows collected in the final E-step (diagnostics).
    pub final_rows: usize,
}

/// Runs Monte-Carlo EM over a training trace.
///
/// * `batches` — the synchronized training trace;
/// * `shelf_tags` — reference tags with known locations (may be empty,
///   in which case expect a local maximum);
/// * `prior` — the legal object space (shelf layout);
/// * `init` — starting parameters (a generic cone-like model works).
pub fn calibrate<P: LocationPrior + Clone>(
    batches: &[EpochBatch],
    shelf_tags: &[(TagId, Point3)],
    prior: &P,
    init: ModelParams,
    cfg: &EmConfig,
) -> EmResult {
    let mut params = init;
    let mut nll_history = Vec::new();
    let mut final_rows = 0usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for it in 0..cfg.iterations {
        // ---------------- E-step ----------------------------------
        let mut engine_cfg = FilterConfig::factored_default();
        engine_cfg.particles_per_object = cfg.particles_per_object;
        engine_cfg.reader_particles = cfg.reader_particles;
        engine_cfg.report_delay_epochs = u64::MAX; // no events needed
        engine_cfg.seed = cfg.seed ^ (it as u64) << 32;
        // E-step exploration: weaken report trust and widen motion
        // noise so reader particles can discover systematic report bias
        let mut estep_params = params;
        estep_params.sensing.sigma.x = estep_params
            .sensing
            .sigma
            .x
            .max(cfg.estep_sensing_sigma_floor);
        estep_params.sensing.sigma.y = estep_params
            .sensing
            .sigma
            .y
            .max(cfg.estep_sensing_sigma_floor);
        estep_params.motion.sigma.x = estep_params
            .motion
            .sigma
            .x
            .max(cfg.estep_motion_sigma_floor);
        estep_params.motion.sigma.y = estep_params
            .motion
            .sigma
            .y
            .max(cfg.estep_motion_sigma_floor);
        let model = JointModel::new(estep_params);
        let mut engine =
            InferenceEngine::new(model, prior.clone(), shelf_tags.to_vec(), engine_cfg)
                .expect("valid E-step config");

        let shelf_ids: BTreeSet<TagId> = shelf_tags.iter().map(|(t, _)| *t).collect();
        let mut rows: Vec<SensorRow> = Vec::new();
        let mut est_traj: Vec<Point3> = Vec::new();
        let mut reader_poses: Vec<Option<rfid_geom::Pose>> = Vec::new();
        let mut odometry: Vec<Option<Vec3>> = Vec::new();
        let mut sensing_residuals: Vec<Vec3> = Vec::new();
        let mut last_report: Option<Point3> = None;

        // --- pass 1: filter the whole trace --------------------------
        // Objects are (nearly) static, so the *final* particle cloud —
        // which has integrated every reading and miss — is the smoothed
        // posterior for every epoch. Collecting rows against the final
        // clouds instead of the filtered (time-t) clouds breaks the
        // positive feedback where a diffuse initial cloud teaches the
        // model that far-away reads are common.
        for batch in batches {
            engine.process_batch(batch);
            let reader_est = engine.reader_estimate();
            reader_poses.push(reader_est);
            let Some(reader_est) = reader_est else {
                odometry.push(None);
                continue;
            };
            if let Some(rep) = batch.reader_report {
                odometry.push(last_report.map(|prev| rep.pos - prev));
                last_report = Some(rep.pos);
                sensing_residuals.push(rep.pos - reader_est.pos);
            } else {
                odometry.push(None);
            }
            est_traj.push(reader_est.pos);
        }

        // final smoothed object clouds (subsampled)
        type Cloud = Vec<(f64, Point3)>;
        let mut clouds: Vec<(TagId, Point3, Cloud)> = Vec::new();
        for tag in engine.tracked_objects().collect::<Vec<_>>() {
            let Some((est, _)) = engine.object_estimate(tag) else {
                continue;
            };
            let Some(ps) = engine.object_particles(tag) else {
                continue;
            };
            let step = (ps.len() / cfg.rows_per_object).max(1);
            let sub: Vec<(f64, Point3)> = ps
                .iter()
                .step_by(step)
                .map(|p| (p.log_w.exp() * step as f64, p.loc))
                .filter(|(w, _)| *w > 1e-9)
                .collect();
            if !sub.is_empty() {
                clouds.push((tag, est, sub));
            }
        }

        // --- pass 2: rows against known tags and smoothed clouds -----
        for (batch, reader_est) in batches.iter().zip(&reader_poses) {
            let Some(reader_est) = reader_est else {
                continue;
            };
            let read_set: BTreeSet<TagId> = batch.readings.iter().copied().collect();

            // shelf-tag rows: known geometry (up to reader uncertainty)
            for (tag, loc) in shelf_tags {
                let read = read_set.contains(tag);
                // far-miss rows carry no information and drown the fit
                let d = reader_est.pos.dist(loc);
                if read || d < 10.0 {
                    rows.push(SensorRow::from_geometry(reader_est, loc, read, 1.0));
                }
            }

            // Object rows through the smoothed clouds. In the first
            // iteration the clouds were produced by the uncalibrated
            // model and would poison the fit, so they are gated out as
            // long as shelf tags provide anchored rows (with zero shelf
            // tags there is nothing better — the local maximum the
            // paper observes).
            let use_object_rows = it > 0 || shelf_tags.is_empty();
            if use_object_rows {
                for (tag, est, sub) in &clouds {
                    if shelf_ids.contains(tag) {
                        continue;
                    }
                    let read = read_set.contains(tag);
                    if !read && reader_est.pos.dist(est) > 8.0 {
                        continue; // far misses: no information
                    }
                    for (w, loc) in sub {
                        rows.push(SensorRow::from_geometry(reader_est, loc, read, *w));
                    }
                }
            }
        }

        if rows.is_empty() {
            // a trace with no readings at all: nothing to learn from
            nll_history.push(f64::NAN);
            break;
        }
        // Subsample overly large row sets for M-step tractability.
        if rows.len() > 200_000 {
            let keep = 200_000;
            let mut sub = Vec::with_capacity(keep);
            for _ in 0..keep {
                sub.push(rows[rng.gen_range(0..rows.len())]);
            }
            rows = sub;
        }
        final_rows = rows.len();

        // ---------------- M-step ----------------------------------
        let fit = fit_logistic_signed(&rows, params.sensor, cfg.ridge, 50);
        params.sensor = fit.params;
        nll_history.push(fit.nll / rows.len() as f64);

        if cfg.fit_motion_params {
            params.motion = fit_motion(
                &est_traj,
                &odometry,
                params.motion.heading_std,
                cfg.noise_floor,
            );
            params.sensing = fit_sensing(
                &sensing_residuals,
                params.sensing.heading_std,
                cfg.noise_floor,
            );
        }
    }

    EmResult {
        params,
        nll_history,
        final_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_model::sensor::{ConeSensor, LogisticSensorModel, ReadRateModel};
    use rfid_sim::scenario;

    /// Mean |p_learned - p_true| over the cone's operating region.
    fn model_gap(learned: &rfid_model::SensorParams, truth: &ConeSensor) -> f64 {
        let m = LogisticSensorModel::new(*learned);
        let mut gap = 0.0;
        let mut n = 0;
        for di in 1..=10 {
            for ti in 0..=8 {
                let d = di as f64 * 0.5;
                let th = ti as f64 * 0.1;
                gap += (m.p_read_dt(d, th) - truth.p_read_dt(d, th)).abs();
                n += 1;
            }
        }
        gap / n as f64
    }

    #[test]
    fn learns_cone_from_20_tag_trace() {
        // Fig. 5(b): the sensor model learned from a 20-tag trace with
        // known shelf tags approximates the true cone.
        let sc = scenario::small_trace(16, 4, 21);
        let batches = sc.trace.epoch_batches();
        let mut init = ModelParams::default_warehouse();
        // start from a deliberately wrong, weakly-informed model
        init.sensor = rfid_model::SensorParams {
            a: [2.0, -0.2, -0.05],
            b: [-0.1, -0.5],
        };
        let cfg = EmConfig {
            iterations: 3,
            ..EmConfig::default()
        };
        let result = calibrate(&batches, &sc.trace.shelf_tags, &sc.layout, init, &cfg);
        let truth = ConeSensor::paper_default();
        let gap_init = model_gap(&init.sensor, &truth);
        let gap_learned = model_gap(&result.params.sensor, &truth);
        assert!(
            gap_learned < gap_init,
            "learning should improve the model: {gap_init} -> {gap_learned}"
        );
        assert!(
            gap_learned < 0.25,
            "learned model too far off: {gap_learned}"
        );
        assert!(result.final_rows > 100);
    }

    #[test]
    fn learned_model_reads_near_not_far() {
        let sc = scenario::small_trace(16, 4, 22);
        let batches = sc.trace.epoch_batches();
        let init = ModelParams::default_warehouse();
        let cfg = EmConfig {
            iterations: 2,
            ..EmConfig::default()
        };
        let result = calibrate(&batches, &sc.trace.shelf_tags, &sc.layout, init, &cfg);
        let m = LogisticSensorModel::new(result.params.sensor);
        // assertions stay within the training data's geometric support:
        // tags sit ~2 ft off the aisle, so observed (d, θ) pairs range
        // from (2, 0) head-on to roughly (4.5, 1.1) down the shelf
        assert!(
            m.p_read_dt(2.1, 0.05) > 0.5,
            "head-on shelf-face read rate too low"
        );
        assert!(
            m.p_read_dt(3.5, 0.9) < m.p_read_dt(2.1, 0.05),
            "wide-angle rate should be below head-on rate"
        );
    }

    #[test]
    fn sensing_bias_learned_from_biased_trace() {
        // Fig. 5(g) "model On - learned": the systematic y bias of the
        // location reports is recovered by the sensing fit.
        let sc = scenario::location_noise_trace(0.6, 0.05, 23);
        let batches = sc.trace.epoch_batches();
        let init = ModelParams::default_warehouse();
        let cfg = EmConfig {
            iterations: 3,
            ..EmConfig::default()
        };
        let result = calibrate(&batches, &sc.trace.shelf_tags, &sc.layout, init, &cfg);
        let mu_y = result.params.sensing.mu.y;
        assert!(
            mu_y > 0.15,
            "learned sensing bias should be positive, got {mu_y}"
        );
    }
}
