//! Weighted logistic regression by IRLS (Newton's method).
//!
//! The M-step of the calibration fits the five sensor coefficients to
//! weighted (features, read?) rows. Iteratively reweighted least
//! squares converges in a handful of iterations on this small, convex
//! problem; a small L2 ridge keeps the Hessian invertible when the
//! data does not identify every coefficient (e.g. traces with almost
//! no angle variation).

use crate::dataset::SensorRow;
use rfid_model::sensor::sigmoid;
use rfid_model::SensorParams;

/// Result of a logistic fit.
#[derive(Debug, Clone, Copy)]
pub struct FitReport {
    pub params: SensorParams,
    /// Final weighted negative log-likelihood (without the ridge term).
    pub nll: f64,
    /// Newton iterations taken.
    pub iterations: usize,
}

/// Solves the 5x5 system `A x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` for (numerically) singular systems.
#[allow(clippy::needless_range_loop)] // textbook index form
fn solve5(mut a: [[f64; 5]; 5], mut b: [f64; 5]) -> Option<[f64; 5]> {
    for col in 0..5 {
        // pivot
        let mut piv = col;
        for row in col + 1..5 {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        // eliminate
        for row in col + 1..5 {
            let f = a[row][col] / a[col][col];
            for k in col..5 {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // back substitution
    let mut x = [0.0; 5];
    for col in (0..5).rev() {
        let mut s = b[col];
        for k in col + 1..5 {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// Weighted negative log-likelihood of the rows under `w`.
pub fn nll(rows: &[SensorRow], params: &SensorParams) -> f64 {
    let w = params.as_flat();
    let mut total = 0.0;
    for r in rows {
        let u: f64 = r.features.iter().zip(&w).map(|(x, c)| x * c).sum();
        let lp = if r.read {
            // log sigmoid(u)
            if u >= 0.0 {
                -(-u).exp().ln_1p()
            } else {
                u - u.exp().ln_1p()
            }
        } else if u >= 0.0 {
            -u - (-u).exp().ln_1p()
        } else {
            -u.exp().ln_1p()
        };
        total -= r.weight * lp;
    }
    total
}

/// Fits the logistic sensor model by IRLS, warm-started at `init`.
///
/// `ridge` is the L2 regularization strength (0.0 disables it; the EM
/// loop uses a small positive value). Stops when the coefficient change
/// drops below `1e-8` or after `max_iter` iterations, with step
/// halving when a Newton step fails to decrease the objective.
#[allow(clippy::needless_range_loop)] // textbook index form
pub fn fit_logistic(
    rows: &[SensorRow],
    init: SensorParams,
    ridge: f64,
    max_iter: usize,
) -> FitReport {
    assert!(!rows.is_empty(), "cannot fit on an empty dataset");
    let mut w = init.as_flat();
    let mut best_nll = nll(rows, &SensorParams::from_flat(w)) + 0.5 * ridge * l2(&w);
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // gradient and Hessian of the regularized NLL
        let mut g = [0.0f64; 5];
        let mut h = [[0.0f64; 5]; 5];
        for r in rows {
            let u: f64 = r.features.iter().zip(&w).map(|(x, c)| x * c).sum();
            let p = sigmoid(u);
            let y = if r.read { 1.0 } else { 0.0 };
            let err = p - y; // d(NLL)/du
            let s = (p * (1.0 - p)).max(1e-9);
            for i in 0..5 {
                g[i] += r.weight * err * r.features[i];
                for j in 0..5 {
                    h[i][j] += r.weight * s * r.features[i] * r.features[j];
                }
            }
        }
        for i in 0..5 {
            g[i] += ridge * w[i];
            h[i][i] += ridge + 1e-9;
        }
        let Some(step) = solve5(h, g) else { break };
        // step halving line search
        let mut alpha = 1.0;
        let mut improved = false;
        for _ in 0..20 {
            let mut cand = w;
            for i in 0..5 {
                cand[i] -= alpha * step[i];
            }
            let cand_nll = nll(rows, &SensorParams::from_flat(cand)) + 0.5 * ridge * l2(&cand);
            if cand_nll <= best_nll {
                let delta: f64 = step.iter().map(|s| (alpha * s).abs()).sum();
                w = cand;
                best_nll = cand_nll;
                improved = true;
                if delta < 1e-8 {
                    return FitReport {
                        params: SensorParams::from_flat(w),
                        nll: nll(rows, &SensorParams::from_flat(w)),
                        iterations,
                    };
                }
                break;
            }
            alpha *= 0.5;
        }
        if !improved {
            break;
        }
    }
    FitReport {
        params: SensorParams::from_flat(w),
        nll: nll(rows, &SensorParams::from_flat(w)),
        iterations,
    }
}

fn l2(w: &[f64; 5]) -> f64 {
    w.iter().map(|x| x * x).sum()
}

/// Sign-constrained fit: like [`fit_logistic`] but with the decay
/// coefficients `a1, a2, b1, b2` constrained non-positive (the paper:
/// "coefficients that we expect to be negative" — read rate must not
/// *increase* with distance or angle).
///
/// This matters because calibration traces have strongly correlated
/// `(d, θ)` geometry (far tags are always seen at wide angles), which
/// leaves the distance direction under-identified; the unconstrained
/// MLE can then turn the distance coefficient positive and predict
/// reads at 50+ feet. Projected gradient descent from the projected
/// IRLS solution enforces the physical prior.
#[allow(clippy::needless_range_loop)] // textbook index form
pub fn fit_logistic_signed(
    rows: &[SensorRow],
    init: SensorParams,
    ridge: f64,
    max_iter: usize,
) -> FitReport {
    let unconstrained = fit_logistic(rows, init, ridge, max_iter);
    let w = unconstrained.params.as_flat();
    if w[1] <= 0.0 && w[2] <= 0.0 && w[3] <= 0.0 && w[4] <= 0.0 {
        return unconstrained;
    }
    // project and polish with backtracking projected gradient descent
    let project = |w: &mut [f64; 5]| {
        for wi in w.iter_mut().skip(1) {
            *wi = wi.min(0.0);
        }
    };
    let obj =
        |w: &[f64; 5]| -> f64 { nll(rows, &SensorParams::from_flat(*w)) + 0.5 * ridge * l2(w) };
    let mut w = {
        let mut p = unconstrained.params.as_flat();
        project(&mut p);
        p
    };
    let mut best = obj(&w);
    let mut step = 1.0;
    let mut iterations = 0usize;
    for it in 0..500 {
        iterations = it + 1;
        // gradient of the regularized NLL
        let mut g = [0.0f64; 5];
        for r in rows {
            let u: f64 = r.features.iter().zip(&w).map(|(x, c)| x * c).sum();
            let p = sigmoid(u);
            let y = if r.read { 1.0 } else { 0.0 };
            for i in 0..5 {
                g[i] += r.weight * (p - y) * r.features[i];
            }
        }
        let wsum: f64 = rows.iter().map(|r| r.weight).sum();
        for i in 0..5 {
            g[i] = g[i] / wsum.max(1.0) + ridge * w[i];
        }
        // backtracking projected step
        let mut improved = false;
        for _ in 0..30 {
            let mut cand = w;
            for i in 0..5 {
                cand[i] -= step * g[i];
            }
            project(&mut cand);
            let c = obj(&cand);
            if c < best - 1e-12 {
                let delta: f64 = cand.iter().zip(&w).map(|(a, b)| (a - b).abs()).sum();
                w = cand;
                best = c;
                improved = true;
                step *= 1.5;
                if delta < 1e-9 {
                    improved = false; // converged
                }
                break;
            }
            step *= 0.5;
        }
        if !improved {
            break;
        }
    }
    FitReport {
        params: SensorParams::from_flat(w),
        nll: nll(rows, &SensorParams::from_flat(w)),
        iterations: unconstrained.iterations + iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rfid_model::sensor::{LogisticSensorModel, ReadRateModel};

    /// Synthesizes rows from known coefficients over a (d, θ) grid.
    fn synthesize(truth: &SensorParams, n_per_cell: usize, seed: u64) -> Vec<SensorRow> {
        let model = LogisticSensorModel::new(*truth);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for di in 0..20 {
            for ti in 0..10 {
                let d = di as f64 * 0.4;
                let th = ti as f64 * 0.15;
                let p = model.p_read_dt(d, th);
                for _ in 0..n_per_cell {
                    rows.push(SensorRow::from_dt(d, th, rng.gen::<f64>() < p, 1.0));
                }
            }
        }
        rows
    }

    fn max_prob_gap(a: &SensorParams, b: &SensorParams) -> f64 {
        let ma = LogisticSensorModel::new(*a);
        let mb = LogisticSensorModel::new(*b);
        let mut worst = 0.0f64;
        for di in 0..30 {
            for ti in 0..15 {
                let d = di as f64 * 0.25;
                let th = ti as f64 * 0.1;
                worst = worst.max((ma.p_read_dt(d, th) - mb.p_read_dt(d, th)).abs());
            }
        }
        worst
    }

    #[test]
    fn solve5_identity() {
        let mut a = [[0.0; 5]; 5];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 2.0;
        }
        let x = solve5(a, [2.0, 4.0, 6.0, 8.0, 10.0]).unwrap();
        assert_eq!(x, [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn solve5_singular_is_none() {
        let a = [[1.0; 5]; 5];
        assert!(solve5(a, [1.0; 5]).is_none());
    }

    #[test]
    fn recovers_known_model_from_clean_data() {
        let truth = SensorParams::default_cone_like();
        let rows = synthesize(&truth, 60, 1);
        let init = SensorParams {
            a: [1.0, 0.0, 0.0],
            b: [0.0, 0.0],
        };
        let fit = fit_logistic(&rows, init, 1e-4, 100);
        let gap = max_prob_gap(&fit.params, &truth);
        assert!(gap < 0.08, "max probability gap {gap}");
    }

    #[test]
    fn warm_start_converges_faster() {
        let truth = SensorParams::default_cone_like();
        let rows = synthesize(&truth, 30, 2);
        let cold = fit_logistic(
            &rows,
            SensorParams {
                a: [0.0, 0.0, 0.0],
                b: [0.0, 0.0],
            },
            1e-4,
            100,
        );
        let warm = fit_logistic(&rows, truth, 1e-4, 100);
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.nll <= cold.nll + 1e-6);
    }

    #[test]
    fn weighted_rows_dominate() {
        // two contradictory observations at the same geometry; the one
        // with overwhelming weight wins
        let mut rows = vec![
            SensorRow::from_dt(1.0, 0.0, true, 100.0),
            SensorRow::from_dt(1.0, 0.0, false, 1.0),
        ];
        // anchor the far field so the problem is identified
        rows.push(SensorRow::from_dt(10.0, 0.0, false, 10.0));
        let fit = fit_logistic(
            &rows,
            SensorParams {
                a: [0.0, 0.0, 0.0],
                b: [0.0, 0.0],
            },
            1e-3,
            100,
        );
        let m = LogisticSensorModel::new(fit.params);
        assert!(m.p_read_dt(1.0, 0.0) > 0.8, "p {}", m.p_read_dt(1.0, 0.0));
    }

    #[test]
    fn ridge_keeps_degenerate_data_finite() {
        // all rows identical: without a ridge the separator diverges
        let rows = vec![SensorRow::from_dt(1.0, 0.0, true, 1.0); 50];
        let fit = fit_logistic(
            &rows,
            SensorParams {
                a: [0.0, 0.0, 0.0],
                b: [0.0, 0.0],
            },
            1e-2,
            200,
        );
        for c in fit.params.as_flat() {
            assert!(c.is_finite());
            assert!(c.abs() < 100.0, "coefficient blew up: {c}");
        }
    }

    #[test]
    fn nll_lower_for_true_model() {
        let truth = SensorParams::default_cone_like();
        let rows = synthesize(&truth, 40, 3);
        let wrong = SensorParams {
            a: [0.0, -1.0, 0.0],
            b: [0.0, 0.0],
        };
        assert!(nll(&rows, &truth) < nll(&rows, &wrong));
    }
}
