//! The paper's two example queries (§II-B), runnable against the
//! cleaned event stream.
//!
//! Both queries "require reliable knowledge of the object location,
//! which is unavailable without processing and transforming the raw
//! data streams" — they are the demonstration that the inference
//! engine's output is readily queriable.

use crate::event::{LocationEvent, TagId};
use crate::operators::{group_sum, having, ChangeDetector, RangeWindow, Rstream};
use rfid_geom::Point3;
use std::collections::BTreeMap;

/// Query 1 — location updates:
///
/// ```text
/// Select Istream(E.tag_id, E.(x, y, z))
/// From EventStream E [Partition By tag_id Row 1]
/// ```
///
/// Emits `(tag, location)` whenever a tag's most recent location moved
/// by more than `threshold` feet from its previously-reported one
/// (threshold 0 reproduces exact CQL semantics; a small positive value
/// suppresses estimator jitter).
#[derive(Debug, Clone)]
pub struct LocationChangeQuery {
    detector: ChangeDetector<TagId, Point3>,
    threshold: f64,
}

impl LocationChangeQuery {
    /// Creates the query with a movement threshold in feet.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0);
        Self {
            detector: ChangeDetector::new(),
            threshold,
        }
    }

    /// Feeds one event; returns the output tuple if the query fires.
    pub fn push(&mut self, event: &LocationEvent) -> Option<(TagId, Point3)> {
        let th = self.threshold;
        self.detector
            .push_with(event.tag, event.location, move |prev, new| {
                prev.dist(new) <= th
            })
            .map(|loc| (event.tag, loc))
    }

    /// The last reported location of a tag, if any.
    pub fn last_location(&self, tag: TagId) -> Option<Point3> {
        self.detector.last(&tag).copied()
    }

    /// Number of distinct tags reported so far.
    pub fn num_tags(&self) -> usize {
        self.detector.num_partitions()
    }
}

/// A square-foot area identifier: the integer-floored `(x, y)` cell of
/// a location — the paper's `SquareFtArea(E.(x, y, z))` function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SquareFtArea {
    pub x: i64,
    pub y: i64,
}

impl SquareFtArea {
    /// The cell containing `p`.
    pub fn of(p: &Point3) -> Self {
        Self {
            x: p.x.floor() as i64,
            y: p.y.floor() as i64,
        }
    }
}

/// Query 2 — fire-code violations:
///
/// ```text
/// Select Rstream(E2.area, sum(E2.weight))
/// From (Select Rstream(*, SquareFtArea(E.(x,y,z)) As area,
///                         Weight(E.tag_id) As weight)
///       From EventStream E [Now]) E2 [Range 5 seconds]
/// Group By E2.area
/// Having sum(E2.weight) > 200 pounds
/// ```
///
/// The inner query annotates each event with its square-foot area and
/// object weight; the outer query sums weights per area over a 5-second
/// window and reports areas exceeding the limit.
pub struct FireCodeQuery<W: Fn(TagId) -> f64> {
    window: RangeWindow<(TagId, SquareFtArea, f64)>,
    weight_fn: W,
    limit: f64,
    output: Rstream<(SquareFtArea, f64)>,
}

impl<W: Fn(TagId) -> f64> FireCodeQuery<W> {
    /// Creates the query with a window length in seconds, a weight
    /// lookup (the paper's `Weight(E.tag_id)` function), and the limit
    /// in pounds (200 in the paper).
    pub fn new(window_seconds: f64, weight_fn: W, limit: f64) -> Self {
        Self {
            window: RangeWindow::new(window_seconds),
            weight_fn,
            limit,
            output: Rstream::new(),
        }
    }

    /// Feeds one event at wall-clock `time` seconds.
    pub fn push(&mut self, time: f64, event: &LocationEvent) {
        let area = SquareFtArea::of(&event.location);
        let weight = (self.weight_fn)(event.tag);
        self.window.push(time, (event.tag, area, weight));
    }

    /// Evaluates the query at `time`: returns every `(area, total)`
    /// whose summed weight exceeds the limit, and records the emission.
    ///
    /// Within the window, an object contributes its weight once per
    /// area (the most recent report wins) — summing duplicates would
    /// double-count stationary objects re-reported within the window.
    pub fn evaluate(&mut self, time: f64) -> Vec<(SquareFtArea, f64)> {
        self.window.advance(time);
        // newest report per tag wins
        let mut latest: BTreeMap<TagId, (SquareFtArea, f64)> = BTreeMap::new();
        for (_, (tag, area, weight)) in self.window.iter() {
            latest.insert(*tag, (*area, *weight));
        }
        let groups = group_sum(latest.into_values(), |(a, _)| *a, |(_, w)| *w);
        let limit = self.limit;
        let violations: Vec<(SquareFtArea, f64)> =
            having(groups, |v| v > limit).into_iter().collect();
        self.output.emit(time, violations.clone());
        violations
    }

    /// The emission log (one entry per [`FireCodeQuery::evaluate`] call).
    pub fn emissions(&self) -> &[(f64, Vec<(SquareFtArea, f64)>)] {
        self.output.emissions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::Epoch;

    fn event(tag: u64, x: f64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(0), TagId(tag), Point3::new(x, y, 0.0))
    }

    #[test]
    fn location_query_emits_on_first_and_change() {
        let mut q = LocationChangeQuery::new(0.1);
        assert!(q.push(&event(1, 0.0, 0.0)).is_some());
        assert!(q.push(&event(1, 0.05, 0.0)).is_none()); // jitter suppressed
        assert!(q.push(&event(1, 0.5, 0.0)).is_some()); // real move
        assert_eq!(q.num_tags(), 1);
        assert_eq!(q.last_location(TagId(1)).unwrap().x, 0.5);
    }

    #[test]
    fn location_query_zero_threshold_is_exact() {
        let mut q = LocationChangeQuery::new(0.0);
        assert!(q.push(&event(1, 1.0, 1.0)).is_some());
        assert!(q.push(&event(1, 1.0, 1.0)).is_none());
        assert!(q.push(&event(1, 1.0, 1.0000001)).is_some());
    }

    #[test]
    fn square_ft_area_floors() {
        assert_eq!(
            SquareFtArea::of(&Point3::new(1.7, -0.3, 0.0)),
            SquareFtArea { x: 1, y: -1 }
        );
    }

    #[test]
    fn fire_code_detects_violation() {
        // two 150-lb objects in the same square foot: 300 > 200
        let mut q = FireCodeQuery::new(5.0, |_| 150.0, 200.0);
        q.push(0.0, &event(1, 3.2, 3.3));
        q.push(1.0, &event(2, 3.8, 3.9));
        let v = q.evaluate(1.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, SquareFtArea { x: 3, y: 3 });
        assert!((v[0].1 - 300.0).abs() < 1e-12);
    }

    #[test]
    fn fire_code_objects_in_different_cells_no_violation() {
        let mut q = FireCodeQuery::new(5.0, |_| 150.0, 200.0);
        q.push(0.0, &event(1, 3.2, 3.3));
        q.push(1.0, &event(2, 10.0, 3.9));
        assert!(q.evaluate(1.0).is_empty());
    }

    #[test]
    fn fire_code_window_expiry_clears_violation() {
        let mut q = FireCodeQuery::new(5.0, |_| 150.0, 200.0);
        q.push(0.0, &event(1, 3.2, 3.3));
        q.push(0.0, &event(2, 3.8, 3.9));
        assert_eq!(q.evaluate(0.0).len(), 1);
        // ten seconds later both reports expired
        assert!(q.evaluate(10.0).is_empty());
        assert_eq!(q.emissions().len(), 2);
    }

    #[test]
    fn fire_code_dedups_repeated_reports_of_same_object() {
        // one object reported five times within the window must count once
        let mut q = FireCodeQuery::new(5.0, |_| 250.0, 200.0);
        for i in 0..5 {
            q.push(i as f64 * 0.5, &event(1, 3.2, 3.3));
        }
        let v = q.evaluate(2.5);
        assert_eq!(v.len(), 1);
        assert!((v[0].1 - 250.0).abs() < 1e-12, "got {}", v[0].1);
    }

    #[test]
    fn fire_code_object_moving_between_cells_counts_in_latest() {
        let mut q = FireCodeQuery::new(5.0, |_| 250.0, 200.0);
        q.push(0.0, &event(1, 3.5, 3.5));
        q.push(1.0, &event(1, 8.5, 8.5)); // moved
        let v = q.evaluate(1.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, SquareFtArea { x: 8, y: 8 });
    }
}
