//! [`EventSink`] adapters for the CQL-like operators and the paper's
//! example queries, so they compose directly onto the pipeline's event
//! stream instead of being driven by hand-written loops.
//!
//! * [`FnSink`] — any closure over events (printing, custom logs);
//! * [`TrailSink`] — `[Partition By tag Row n]` ([`PartitionedRowWindow`]);
//! * [`SnapshotSink`] — `Rstream` of the latest-location relation;
//! * [`LocationChangeSink`] — query 1, `Istream` over a row-1 partition
//!   ([`LocationChangeQuery`]);
//! * [`FireCodeSink`] — query 2, windowed `Group By ... Having`
//!   ([`FireCodeQuery`]), evaluated at every completed epoch;
//! * [`StoreSink`] — shares any sink behind `Arc<RwLock<_>>` so a
//!   serving layer (e.g. `rfid_serve`'s `EventStore`) can answer
//!   queries concurrently with live ingestion.
//!
//! Fan one stream into several sinks with the tuple impl:
//! `(collector, (LocationChangeSink::new(..), FireCodeSink::new(..)))`.

use super::EventSink;
use crate::epoch::Epoch;
use crate::event::{LocationEvent, TagId};
use crate::operators::{PartitionedRowWindow, Rstream};
use crate::queries::{FireCodeQuery, LocationChangeQuery, SquareFtArea};
use rfid_geom::Point3;
use std::sync::{Arc, RwLock};

/// Wraps a closure as an event sink (the blanket impl a plain `FnMut`
/// cannot have without conflicting with other sink impls).
#[derive(Debug, Clone)]
pub struct FnSink<F: FnMut(&LocationEvent)>(pub F);

impl<F: FnMut(&LocationEvent)> EventSink for FnSink<F> {
    fn on_event(&mut self, event: &LocationEvent) {
        (self.0)(event);
    }
}

/// `EventStream [Partition By tag_id Row n]` as a sink: keeps the `n`
/// most recent `(epoch, location)` rows per tag.
#[derive(Debug, Clone)]
pub struct TrailSink {
    window: PartitionedRowWindow<TagId, (Epoch, Point3)>,
}

impl TrailSink {
    /// Keeps the last `n >= 1` reports per tag.
    pub fn new(n: usize) -> Self {
        Self {
            window: PartitionedRowWindow::new(n),
        }
    }

    /// The retained trail of a tag, oldest first.
    pub fn trail(&self, tag: TagId) -> impl Iterator<Item = &(Epoch, Point3)> {
        self.window.partition(&tag)
    }

    /// The most recent report of a tag.
    pub fn latest(&self, tag: TagId) -> Option<&(Epoch, Point3)> {
        self.window.latest(&tag)
    }

    /// Number of tags seen.
    pub fn num_tags(&self) -> usize {
        self.window.num_partitions()
    }
}

impl EventSink for TrailSink {
    fn on_event(&mut self, event: &LocationEvent) {
        self.window.push(event.tag, (event.epoch, event.location));
    }
}

/// `Rstream` over the latest-location relation: at every `every`-th
/// completed epoch, emits the full `(tag, location)` relation (sorted
/// by tag for determinism) into an emission log.
#[derive(Debug, Clone)]
pub struct SnapshotSink {
    latest: PartitionedRowWindow<TagId, Point3>,
    output: Rstream<(TagId, Point3)>,
    every: u64,
    last_epoch: Option<Epoch>,
    /// Events arrived since the last snapshot (so the final snapshot
    /// is skipped when it would duplicate the last cadence one).
    dirty: bool,
}

impl SnapshotSink {
    /// Snapshots the relation every `every >= 1` epochs, plus a final
    /// snapshot at end of stream when flush-time events arrived after
    /// the last cadence snapshot.
    pub fn new(every: u64) -> Self {
        assert!(every >= 1, "snapshot cadence must be >= 1 epoch");
        Self {
            latest: PartitionedRowWindow::new(1),
            output: Rstream::new(),
            every,
            last_epoch: None,
            dirty: false,
        }
    }

    /// The emission log: one `(time, relation)` entry per snapshot.
    pub fn emissions(&self) -> &[(f64, Vec<(TagId, Point3)>)] {
        self.output.emissions()
    }

    fn snapshot(&mut self, time: f64) {
        let mut relation: Vec<(TagId, Point3)> = self
            .latest
            .iter_latest()
            .map(|(tag, loc)| (*tag, *loc))
            .collect();
        relation.sort_by_key(|(tag, _)| *tag);
        self.output.emit(time, relation);
        self.dirty = false;
    }
}

impl EventSink for SnapshotSink {
    fn on_event(&mut self, event: &LocationEvent) {
        self.latest.push(event.tag, event.location);
        self.dirty = true;
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.last_epoch = Some(epoch);
        if epoch.0 % self.every == 0 {
            self.snapshot(epoch.0 as f64);
        }
    }

    fn on_finish(&mut self) {
        if self.dirty || self.output.emissions().is_empty() {
            let time = self.last_epoch.map(|e| e.0 as f64).unwrap_or(0.0);
            self.snapshot(time);
        }
    }
}

/// Adapts a shared `Arc<RwLock<S>>` sink so the pipeline can feed a
/// store that other threads query concurrently: the pipeline thread
/// takes the write lock per delivery, readers (e.g. a TCP query
/// server) take read locks between deliveries. The adapter is the
/// bridge between live ingestion and the serving layer —
/// `rfid_serve::EventStore` implements [`EventSink`] exactly so it can
/// sit behind this.
#[derive(Debug)]
pub struct StoreSink<S> {
    shared: Arc<RwLock<S>>,
}

impl<S> StoreSink<S> {
    /// Wraps a shared sink.
    pub fn new(shared: Arc<RwLock<S>>) -> Self {
        Self { shared }
    }

    /// Another handle to the shared sink (for query threads).
    pub fn handle(&self) -> Arc<RwLock<S>> {
        Arc::clone(&self.shared)
    }
}

impl<S> Clone for StoreSink<S> {
    fn clone(&self) -> Self {
        Self::new(self.handle())
    }
}

impl<S: EventSink> EventSink for StoreSink<S> {
    fn on_event(&mut self, event: &LocationEvent) {
        self.shared
            .write()
            .expect("shared sink lock poisoned")
            .on_event(event);
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.shared
            .write()
            .expect("shared sink lock poisoned")
            .on_epoch_complete(epoch);
    }

    fn on_finish(&mut self) {
        self.shared
            .write()
            .expect("shared sink lock poisoned")
            .on_finish();
    }
}

/// One fired location update of query 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationUpdate {
    pub epoch: Epoch,
    pub tag: TagId,
    pub location: Point3,
}

/// Query 1 (`Istream` location changes) as a sink: records every
/// update the query fires.
#[derive(Debug, Clone)]
pub struct LocationChangeSink {
    query: LocationChangeQuery,
    updates: Vec<LocationUpdate>,
}

impl LocationChangeSink {
    /// Creates the sink with a movement threshold in feet.
    pub fn new(threshold: f64) -> Self {
        Self {
            query: LocationChangeQuery::new(threshold),
            updates: Vec::new(),
        }
    }

    /// Every update fired so far, in stream order.
    pub fn updates(&self) -> &[LocationUpdate] {
        &self.updates
    }

    /// Takes every update fired since the last drain, in stream order
    /// — the consumption API for fan-out layers (e.g. `rfid_serve`'s
    /// subscription hub) that forward fired changes instead of
    /// accumulating them.
    pub fn drain_updates(&mut self) -> Vec<LocationUpdate> {
        std::mem::take(&mut self.updates)
    }

    /// The underlying query (last locations, tag count).
    pub fn query(&self) -> &LocationChangeQuery {
        &self.query
    }
}

impl EventSink for LocationChangeSink {
    fn on_event(&mut self, event: &LocationEvent) {
        if let Some((tag, location)) = self.query.push(event) {
            self.updates.push(LocationUpdate {
                epoch: event.epoch,
                tag,
                location,
            });
        }
    }
}

/// One fire-code violation: `(time, area, total pounds)`.
pub type FireCodeViolation = (f64, SquareFtArea, f64);

/// Query 2 (windowed weight-per-square-foot) as a sink: feeds every
/// event into the window and evaluates the query once per completed
/// epoch — the stream-relation-stream cycle at epoch granularity.
pub struct FireCodeSink<W: Fn(TagId) -> f64> {
    query: FireCodeQuery<W>,
    epoch_len: f64,
    violations: Vec<FireCodeViolation>,
    /// Latest event time fed to the window (the evaluation instant for
    /// the final flush).
    last_time: f64,
    /// Events arrived since the last evaluation (so end-of-stream
    /// flush events still get evaluated).
    dirty: bool,
}

impl<W: Fn(TagId) -> f64> FireCodeSink<W> {
    /// Creates the sink. `epoch_len` converts epochs to the query's
    /// wall-clock seconds; `window_seconds`, `weight_fn`, and `limit`
    /// are the query parameters (the paper uses 5 s and 200 lb).
    pub fn new(epoch_len: f64, window_seconds: f64, weight_fn: W, limit: f64) -> Self {
        assert!(epoch_len > 0.0);
        Self {
            query: FireCodeQuery::new(window_seconds, weight_fn, limit),
            epoch_len,
            violations: Vec::new(),
            last_time: 0.0,
            dirty: false,
        }
    }

    /// Every violation reported so far (an area re-fires at each
    /// evaluation instant while it stays over the limit).
    pub fn violations(&self) -> &[FireCodeViolation] {
        &self.violations
    }

    /// The underlying query (emission log).
    pub fn query(&self) -> &FireCodeQuery<W> {
        &self.query
    }
}

impl<W: Fn(TagId) -> f64> EventSink for FireCodeSink<W> {
    fn on_event(&mut self, event: &LocationEvent) {
        let time = event.epoch.0 as f64 * self.epoch_len;
        self.query.push(time, event);
        self.last_time = self.last_time.max(time);
        self.dirty = true;
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        let time = epoch.0 as f64 * self.epoch_len;
        self.last_time = self.last_time.max(time);
        for (area, total) in self.query.evaluate(time) {
            self.violations.push((time, area, total));
        }
        self.dirty = false;
    }

    fn on_finish(&mut self) {
        // events delivered by the end-of-stream flush arrive after the
        // last completed epoch; give them their evaluation instant
        if self.dirty {
            let time = self.last_time;
            for (area, total) in self.query.evaluate(time) {
                self.violations.push((time, area, total));
            }
            self.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(epoch: u64, tag: u64, x: f64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, y, 0.0))
    }

    #[test]
    fn store_sink_shares_a_locked_sink() {
        let shared = Arc::new(RwLock::new(Vec::<LocationEvent>::new()));
        let mut sink = StoreSink::new(Arc::clone(&shared));
        sink.on_event(&event(0, 1, 1.0, 2.0));
        sink.on_epoch_complete(Epoch(0));
        sink.on_finish();
        // a reader on another handle sees the delivery
        let handle = sink.handle();
        assert_eq!(handle.read().unwrap().len(), 1);
        assert_eq!(shared.read().unwrap()[0].tag, TagId(1));
    }

    #[test]
    fn trail_sink_keeps_last_n() {
        let mut s = TrailSink::new(2);
        s.on_event(&event(0, 1, 0.0, 0.0));
        s.on_event(&event(1, 1, 0.0, 1.0));
        s.on_event(&event(2, 1, 0.0, 2.0));
        assert_eq!(s.trail(TagId(1)).count(), 2);
        assert_eq!(s.latest(TagId(1)).unwrap().0, Epoch(2));
        assert_eq!(s.num_tags(), 1);
    }

    #[test]
    fn snapshot_sink_emits_sorted_relation() {
        let mut s = SnapshotSink::new(2);
        s.on_event(&event(0, 5, 1.0, 1.0));
        s.on_event(&event(0, 2, 2.0, 2.0));
        s.on_epoch_complete(Epoch(0));
        s.on_epoch_complete(Epoch(1)); // off-cadence: no emission
        s.on_event(&event(2, 5, 9.0, 9.0));
        s.on_epoch_complete(Epoch(2));
        let em = s.emissions();
        assert_eq!(em.len(), 2);
        let tags: Vec<u64> = em[0].1.iter().map(|(t, _)| t.0).collect();
        assert_eq!(tags, vec![2, 5], "relation sorted by tag");
        // the second snapshot sees tag 5's newest location
        assert_eq!(em[1].1.iter().find(|(t, _)| t.0 == 5).unwrap().1.x, 9.0);
    }

    #[test]
    fn snapshot_sink_final_emit_skipped_when_nothing_changed() {
        let mut s = SnapshotSink::new(1);
        s.on_event(&event(0, 1, 1.0, 1.0));
        s.on_epoch_complete(Epoch(0)); // cadence snapshot covers everything
        s.on_finish();
        assert_eq!(s.emissions().len(), 1, "no duplicate final snapshot");
        // but flush-time events after the last cadence snapshot do emit
        let mut s = SnapshotSink::new(1);
        s.on_event(&event(0, 1, 1.0, 1.0));
        s.on_epoch_complete(Epoch(0));
        s.on_event(&event(0, 2, 2.0, 2.0)); // finalize-flush event
        s.on_finish();
        assert_eq!(s.emissions().len(), 2);
        assert_eq!(s.emissions()[1].1.len(), 2);
    }

    #[test]
    fn location_change_sink_records_updates() {
        let mut s = LocationChangeSink::new(0.1);
        s.on_event(&event(0, 1, 0.0, 0.0));
        s.on_event(&event(1, 1, 0.0, 0.05)); // jitter: suppressed
        s.on_event(&event(2, 1, 0.0, 1.0)); // real move
        assert_eq!(s.updates().len(), 2);
        assert_eq!(s.updates()[1].epoch, Epoch(2));
        assert_eq!(s.query().num_tags(), 1);
        // draining empties the log but keeps the query state: the next
        // jitter is still suppressed against the drained location
        assert_eq!(s.drain_updates().len(), 2);
        assert!(s.updates().is_empty());
        s.on_event(&event(3, 1, 0.0, 1.04));
        assert!(s.drain_updates().is_empty(), "jitter after drain");
    }

    #[test]
    fn fire_code_sink_fires_on_epoch_completion() {
        let mut s = FireCodeSink::new(1.0, 5.0, |_| 150.0, 200.0);
        s.on_event(&event(0, 1, 3.2, 3.3));
        s.on_event(&event(0, 2, 3.8, 3.9));
        assert!(s.violations().is_empty(), "no evaluation before epoch end");
        s.on_epoch_complete(Epoch(0));
        assert_eq!(s.violations().len(), 1);
        let (time, area, total) = s.violations()[0];
        assert_eq!(time, 0.0);
        assert_eq!(area, SquareFtArea { x: 3, y: 3 });
        assert!((total - 300.0).abs() < 1e-12);
    }

    #[test]
    fn fire_code_sink_evaluates_flush_time_events() {
        // both events arrive in the end-of-stream flush (after the
        // last on_epoch_complete): on_finish must still evaluate them
        let mut s = FireCodeSink::new(1.0, 5.0, |_| 150.0, 200.0);
        s.on_epoch_complete(Epoch(3));
        assert!(s.violations().is_empty());
        s.on_event(&event(3, 1, 3.2, 3.3));
        s.on_event(&event(3, 2, 3.8, 3.9));
        s.on_finish();
        assert_eq!(s.violations().len(), 1, "flush events must be evaluated");
        assert_eq!(s.violations()[0].0, 3.0);
        // idempotent: a second finish adds nothing
        s.on_finish();
        assert_eq!(s.violations().len(), 1);
    }
}
