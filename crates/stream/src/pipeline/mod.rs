//! The staged streaming pipeline: source → synchronizer → inference →
//! sinks.
//!
//! The paper frames inference as an *online* operation over unbounded
//! streams: readings and reader-location reports arrive continuously
//! and events must be emitted incrementally (§II-A). This module wires
//! the existing pieces into that shape:
//!
//! ```text
//! raw readings ──┐
//!                ├─► StreamSynchronizer ─► EpochBatch ─► InferenceStage ─► LocationEvent ─► EventSink(s)
//! reports  ──────┘    (watermarks,           (one           (engine,          (operators,
//!                      bounded buffer)        epoch)          shards)           queries, logs)
//! ```
//!
//! * a [`ReadingSource`] produces the interleaved raw items one at a
//!   time — no whole-trace `Vec` is ever required;
//! * the [`Pipeline`] pushes them through a [`StreamSynchronizer`],
//!   draining *ready* epochs as soon as both watermarks pass them
//!   (never [`crate::sync::synchronize_traces`]);
//! * each completed [`EpochBatch`] is handed to an [`InferenceStage`]
//!   (the engine), whose events are routed into an [`EventSink`];
//! * [`PipelineStats`] records the high-water marks of every internal
//!   buffer, so bounded memory is a *measured* property: the
//!   synchronizer holds O(open epochs) regardless of trace length.
//!
//! Sinks compose: see [`sinks`] for adapters that turn the CQL-like
//! operators and the paper's two queries into [`EventSink`]s, and the
//! tuple impl for fan-out.

pub mod sinks;

use crate::epoch::Epoch;
use crate::event::{LocationEvent, ReaderLocationReport, RfidReading};
use crate::sync::{EpochBatch, StreamSynchronizer};

/// One raw input item: the union of the two §II-A streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamItem {
    /// An RFID reading `(time, tag_id)`.
    Reading(RfidReading),
    /// A reader location report `(time, pose)`.
    Report(ReaderLocationReport),
}

/// An incremental producer of raw stream items. Implemented for every
/// `Iterator<Item = StreamItem>`, so any merge of the two raw streams
/// (e.g. `rfid_sim`'s trace sources) plugs in directly.
pub trait ReadingSource {
    /// The next raw item, or `None` at end of stream.
    fn next_item(&mut self) -> Option<StreamItem>;
}

impl<I: Iterator<Item = StreamItem>> ReadingSource for I {
    fn next_item(&mut self) -> Option<StreamItem> {
        self.next()
    }
}

/// The inference stage of the pipeline: epoch batches in, location
/// events out. Implemented by `rfid_core`'s engine (and the baselines),
/// kept as a trait here so the stream crate stays independent of the
/// inference crates.
pub trait InferenceStage {
    /// Processes one synchronized epoch batch, appending the events due
    /// this epoch to `out` (which the pipeline reuses across epochs).
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>);
    /// Flushes pending reports at end of stream.
    fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>);
}

/// A consumer of the cleaned event stream. All methods but
/// [`EventSink::on_event`] have defaults, so simple sinks stay simple.
pub trait EventSink {
    /// Called for every emitted event, in stream order.
    fn on_event(&mut self, event: &LocationEvent);
    /// Called after all of `epoch`'s events were delivered — the
    /// evaluation instant for relation-style operators (`Rstream`).
    fn on_epoch_complete(&mut self, _epoch: Epoch) {}
    /// Called once, after the final flush.
    fn on_finish(&mut self) {}
}

/// Collecting sink: the cleaned stream as a `Vec`.
impl EventSink for Vec<LocationEvent> {
    fn on_event(&mut self, event: &LocationEvent) {
        self.push(*event);
    }
}

/// Fan-out: one event stream feeding two sinks (nest tuples for more).
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    fn on_event(&mut self, event: &LocationEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }
    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.0.on_epoch_complete(epoch);
        self.1.on_epoch_complete(epoch);
    }
    fn on_finish(&mut self) {
        self.0.on_finish();
        self.1.on_finish();
    }
}

/// Counters and buffer high-water marks of one pipeline run. The
/// `*_high_water` fields are the bounded-memory evidence: they depend
/// on the number of *concurrently open* epochs, not on trace length.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Raw readings pushed into the synchronizer.
    pub readings_in: u64,
    /// Raw reader-location reports pushed into the synchronizer.
    pub reports_in: u64,
    /// Epoch batches handed to the inference stage.
    pub epochs: u64,
    /// Deduplicated per-epoch readings processed by the stage (the
    /// denominator of readings/sec throughput, matching the batch API).
    pub batch_readings: u64,
    /// Events delivered to the sink.
    pub events: u64,
    /// Items dropped by the synchronizer because they arrived for an
    /// already-emitted epoch — stream skew beyond the configured bound.
    /// Zero for every in-order source; nonzero makes data loss visible
    /// instead of silent.
    pub late_dropped: u64,
    /// Most epochs ever buffered inside the synchronizer at once.
    pub sync_pending_high_water: usize,
    /// Most drained-but-unprocessed batches ever held at once.
    pub batch_buffer_high_water: usize,
    /// Largest per-epoch event batch handed to the sink.
    pub event_buffer_high_water: usize,
}

/// Registry handles mirroring [`PipelineStats`] (see `rfid_obs`):
/// counters for the flow totals, ratcheting gauges for the buffer
/// high-water marks. Handles are registered once at pipeline
/// construction; per-batch mirroring is a handful of relaxed atomic
/// adds.
#[derive(Debug)]
struct PipelineMetrics {
    last: PipelineStats,
    readings: rfid_obs::Counter,
    reports: rfid_obs::Counter,
    epochs: rfid_obs::Counter,
    batch_readings: rfid_obs::Counter,
    events: rfid_obs::Counter,
    late_dropped: rfid_obs::Counter,
    sync_pending_hw: rfid_obs::Gauge,
    batch_buffer_hw: rfid_obs::Gauge,
    event_buffer_hw: rfid_obs::Gauge,
}

impl PipelineMetrics {
    fn registered() -> Self {
        let r = rfid_obs::global();
        Self {
            last: PipelineStats::default(),
            readings: r.counter("pipeline_readings_total"),
            reports: r.counter("pipeline_reports_total"),
            epochs: r.counter("pipeline_epochs_total"),
            batch_readings: r.counter("pipeline_batch_readings_total"),
            events: r.counter("pipeline_events_total"),
            late_dropped: r.counter("pipeline_late_dropped_total"),
            sync_pending_hw: r.gauge("pipeline_sync_pending_high_water"),
            batch_buffer_hw: r.gauge("pipeline_batch_buffer_high_water"),
            event_buffer_hw: r.gauge("pipeline_event_buffer_high_water"),
        }
    }

    /// Records the progress since the last observation.
    fn observe(&mut self, stats: &PipelineStats) {
        let last = self.last;
        self.last = *stats;
        self.readings.add(stats.readings_in - last.readings_in);
        self.reports.add(stats.reports_in - last.reports_in);
        self.epochs.add(stats.epochs - last.epochs);
        self.batch_readings
            .add(stats.batch_readings - last.batch_readings);
        self.events.add(stats.events - last.events);
        self.late_dropped
            .add(stats.late_dropped - last.late_dropped);
        self.sync_pending_hw
            .record_max(stats.sync_pending_high_water as u64);
        self.batch_buffer_hw
            .record_max(stats.batch_buffer_high_water as u64);
        self.event_buffer_hw
            .record_max(stats.event_buffer_high_water as u64);
    }
}

/// The pipeline driver: pulls raw items from a source, synchronizes
/// them into epochs, runs the inference stage, and routes events into
/// the sink — all incrementally, with reused internal buffers.
#[derive(Debug)]
pub struct Pipeline<Stage, Sink> {
    sync: StreamSynchronizer,
    stage: Stage,
    sink: Sink,
    stats: PipelineStats,
    metrics: PipelineMetrics,
    batch_buf: Vec<EpochBatch>,
    event_buf: Vec<LocationEvent>,
    last_epoch: Option<Epoch>,
    finished: bool,
}

/// Default synchronizer skew bound (epochs). The paper's raw streams
/// are "slightly out-of-sync" within an epoch; 4 leaves generous room
/// while keeping the buffer O(1) even when one stream goes silent for
/// thousands of epochs (e.g. a reader crossing a tag-free stretch).
pub const DEFAULT_MAX_SKEW_EPOCHS: u64 = 4;

impl<Stage: InferenceStage, Sink: EventSink> Pipeline<Stage, Sink> {
    /// Creates a pipeline with the given epoch length in seconds and
    /// the default synchronizer skew bound
    /// ([`DEFAULT_MAX_SKEW_EPOCHS`]).
    pub fn new(epoch_len: f64, stage: Stage, sink: Sink) -> Self {
        Self::with_synchronizer(
            StreamSynchronizer::new(epoch_len).with_max_skew(DEFAULT_MAX_SKEW_EPOCHS),
            stage,
            sink,
        )
    }

    /// Creates a pipeline around a custom-configured synchronizer
    /// (e.g. a different skew bound, or pure min-watermark semantics).
    pub fn with_synchronizer(sync: StreamSynchronizer, stage: Stage, sink: Sink) -> Self {
        Self {
            sync,
            stage,
            sink,
            stats: PipelineStats::default(),
            metrics: PipelineMetrics::registered(),
            batch_buf: Vec::new(),
            event_buf: Vec::new(),
            last_epoch: None,
            finished: false,
        }
    }

    /// Pushes one raw item and processes every epoch it completes.
    pub fn push(&mut self, item: StreamItem) {
        debug_assert!(!self.finished, "push after finish");
        match item {
            StreamItem::Reading(r) => {
                self.sync.push_reading(r);
                self.stats.readings_in += 1;
            }
            StreamItem::Report(r) => {
                self.sync.push_report(r);
                self.stats.reports_in += 1;
            }
        }
        self.stats.sync_pending_high_water = self
            .stats
            .sync_pending_high_water
            .max(self.sync.pending_epochs());
        self.stats.late_dropped = self.sync.late_dropped();
        self.sync.drain_ready_into(&mut self.batch_buf);
        self.process_buffered();
    }

    /// Drains a source to exhaustion through [`Pipeline::push`].
    pub fn run<Src: ReadingSource>(&mut self, source: &mut Src) {
        while let Some(item) = source.next_item() {
            self.push(item);
        }
    }

    /// End of stream: flushes the synchronizer, finalizes the stage,
    /// and notifies the sink. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.sync.flush_into(&mut self.batch_buf);
        self.process_buffered();
        let last = self.last_epoch.unwrap_or(Epoch(0));
        self.event_buf.clear();
        self.stage.finalize_into(last, &mut self.event_buf);
        self.route_events();
        self.sink.on_finish();
        self.metrics.observe(&self.stats);
    }

    /// Runs a source to exhaustion and finishes the pipeline, returning
    /// the run's statistics.
    pub fn run_to_completion<Src: ReadingSource>(&mut self, source: &mut Src) -> PipelineStats {
        self.run(source);
        self.finish();
        self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The inference stage (e.g. to read engine statistics).
    pub fn stage(&self) -> &Stage {
        &self.stage
    }

    /// The sink (e.g. to read collected events or query output).
    pub fn sink(&self) -> &Sink {
        &self.sink
    }

    /// Decomposes the pipeline after a run.
    pub fn into_parts(self) -> (Stage, Sink, PipelineStats) {
        (self.stage, self.sink, self.stats)
    }

    fn process_buffered(&mut self) {
        self.stats.batch_buffer_high_water =
            self.stats.batch_buffer_high_water.max(self.batch_buf.len());
        if self.batch_buf.is_empty() {
            return;
        }
        // drain without freeing: the buffer is reused every epoch
        for i in 0..self.batch_buf.len() {
            let batch = &self.batch_buf[i];
            self.stats.epochs += 1;
            self.stats.batch_readings += batch.readings.len() as u64;
            self.last_epoch = Some(batch.epoch);
            self.event_buf.clear();
            self.stage.process_batch_into(batch, &mut self.event_buf);
            let epoch = batch.epoch;
            self.route_events();
            self.sink.on_epoch_complete(epoch);
        }
        self.batch_buf.clear();
        self.metrics.observe(&self.stats);
    }

    fn route_events(&mut self) {
        self.stats.event_buffer_high_water =
            self.stats.event_buffer_high_water.max(self.event_buf.len());
        self.stats.events += self.event_buf.len() as u64;
        for e in &self.event_buf {
            self.sink.on_event(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TagId;
    use rfid_geom::{Point3, Pose};

    /// A toy stage: echoes one event per reading in the batch.
    struct Echo;
    impl InferenceStage for Echo {
        fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
            for tag in &batch.readings {
                out.push(LocationEvent::new(batch.epoch, *tag, Point3::origin()));
            }
        }
        fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>) {
            out.push(LocationEvent::new(last_epoch, TagId(999), Point3::origin()));
        }
    }

    fn items(n: u64) -> Vec<StreamItem> {
        let mut v = Vec::new();
        for t in 0..n {
            let sec = t as f64;
            v.push(StreamItem::Report(ReaderLocationReport {
                time: sec,
                pose: Pose::new(Point3::new(0.0, sec, 0.0), 0.0),
            }));
            v.push(StreamItem::Reading(RfidReading {
                time: sec + 0.5,
                tag: TagId(t),
            }));
        }
        v
    }

    #[test]
    fn pipeline_processes_incrementally_with_bounded_buffers() {
        let mut p = Pipeline::new(1.0, Echo, Vec::new());
        let stats = p.run_to_completion(&mut items(50).into_iter());
        assert_eq!(stats.readings_in, 50);
        assert_eq!(stats.reports_in, 50);
        assert_eq!(stats.epochs, 50);
        // 50 echoes + 1 finalize marker
        assert_eq!(stats.events, 51);
        assert_eq!(p.sink().len(), 51);
        // watermark semantics keep at most the open epochs buffered,
        // independent of the trace length
        assert!(
            stats.sync_pending_high_water <= 2,
            "high water {}",
            stats.sync_pending_high_water
        );
        assert!(stats.batch_buffer_high_water <= 2);
    }

    #[test]
    fn high_water_is_flat_in_trace_length() {
        let run = |n: u64| {
            let mut p = Pipeline::new(1.0, Echo, Vec::new());
            p.run_to_completion(&mut items(n).into_iter())
        };
        let short = run(20);
        let long = run(200);
        assert_eq!(
            short.sync_pending_high_water, long.sync_pending_high_water,
            "synchronizer buffer must not grow with trace length"
        );
        assert_eq!(short.batch_buffer_high_water, long.batch_buffer_high_water);
    }

    #[test]
    fn finish_is_idempotent_and_flushes_tail() {
        let mut p = Pipeline::new(1.0, Echo, Vec::new());
        p.run(&mut items(3).into_iter());
        // the last epoch is still open (watermarks have not passed it)
        let before = p.stats().epochs;
        p.finish();
        p.finish();
        assert!(p.stats().epochs > before, "flush must emit the tail");
        assert_eq!(p.stats().epochs, 3);
        // exactly one finalize marker despite double finish
        let markers = p.sink().iter().filter(|e| e.tag == TagId(999)).count();
        assert_eq!(markers, 1);
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut p = Pipeline::new(1.0, Echo, (Vec::new(), Vec::new()));
        p.run_to_completion(&mut items(4).into_iter());
        let (a, b) = p.sink();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 5);
    }
}
