//! Low-level synchronization of the two raw streams into epoch batches.
//!
//! "These streams may be slightly out-of-sync in time. In our model,
//! however, a time step (also called an epoch) is fairly coarse-grained
//! ... This allows us to generate synchronized streams via simple
//! low-level processing, such as assigning the same time to RFID
//! readings produced in one epoch and taking average of multiple
//! location updates in an epoch to produce a single update." (§II-A)
//!
//! [`StreamSynchronizer`] implements exactly that: push raw readings and
//! location reports in any interleaving that is non-decreasing in time
//! per stream, and pull completed [`EpochBatch`]es.

use crate::epoch::Epoch;
use crate::event::{ReaderLocationReport, RfidReading, TagId};
use rfid_geom::{Point3, Pose};
use std::collections::BTreeMap;

/// All observations of one epoch, synchronized.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochBatch {
    pub epoch: Epoch,
    /// Deduplicated tag ids read during the epoch (objects and shelves
    /// mixed; the consumer separates them).
    pub readings: Vec<TagId>,
    /// The averaged reader location report for the epoch, if any report
    /// arrived. Heading is averaged on the unit circle.
    pub reader_report: Option<Pose>,
}

#[derive(Debug, Default, Clone)]
struct PendingEpoch {
    readings: Vec<TagId>,
    // accumulated location reports
    pos_sum: (f64, f64, f64),
    sin_sum: f64,
    cos_sum: f64,
    report_count: usize,
}

impl PendingEpoch {
    fn finish(mut self, epoch: Epoch) -> EpochBatch {
        self.readings.sort_unstable();
        self.readings.dedup();
        let reader_report = if self.report_count > 0 {
            let n = self.report_count as f64;
            let pos = Point3::new(self.pos_sum.0 / n, self.pos_sum.1 / n, self.pos_sum.2 / n);
            let phi = self.sin_sum.atan2(self.cos_sum);
            Some(Pose::new(pos, phi))
        } else {
            None
        };
        EpochBatch {
            epoch,
            readings: self.readings,
            reader_report,
        }
    }
}

/// Streaming epoch synchronizer. An epoch is considered *complete* once
/// both input streams have advanced past its end (watermark semantics),
/// or when [`StreamSynchronizer::flush`] is called at end of trace.
///
/// Pure min-watermark semantics buffer without bound while one stream
/// goes silent (e.g. a reader crossing a tag-free stretch produces
/// reports but no readings). [`StreamSynchronizer::with_max_skew`]
/// bounds that: an epoch also completes once the *faster* stream has
/// advanced more than `max_skew` epochs past it. For sources whose
/// merged items arrive in time order (every trace source here), a skew
/// bound never changes the emitted batches — an epoch's items all
/// arrive before either watermark passes the epoch — it only caps the
/// buffer at O(`max_skew`) epochs.
#[derive(Debug)]
pub struct StreamSynchronizer {
    epoch_len: f64,
    pending: BTreeMap<u64, PendingEpoch>,
    /// Watermarks: the latest time seen per input stream.
    reading_watermark: f64,
    report_watermark: f64,
    /// Epochs strictly below this have been emitted.
    emitted_below: u64,
    /// Allowed inter-stream lag in epochs (`None` = unbounded, pure
    /// min-watermark semantics).
    max_skew_epochs: Option<u64>,
    /// Items that arrived for an already-emitted epoch and were
    /// dropped.
    late_dropped: u64,
}

impl StreamSynchronizer {
    /// Creates a synchronizer with the given epoch length in seconds
    /// (the paper default is 1.0) and pure min-watermark semantics.
    pub fn new(epoch_len: f64) -> Self {
        assert!(epoch_len > 0.0, "epoch length must be positive");
        Self {
            epoch_len,
            pending: BTreeMap::new(),
            reading_watermark: 0.0,
            report_watermark: 0.0,
            emitted_below: 0,
            max_skew_epochs: None,
            late_dropped: 0,
        }
    }

    /// Bounds the buffer: epochs more than `epochs` behind the faster
    /// stream's watermark are emitted without waiting for the slower
    /// stream. Items for an already-emitted epoch are dropped, so pick
    /// a bound above the real inter-stream skew (the paper's streams
    /// are "slightly out-of-sync" within an epoch or two).
    pub fn with_max_skew(mut self, epochs: u64) -> Self {
        self.max_skew_epochs = Some(epochs);
        self
    }

    /// The configured epoch length in seconds.
    pub fn epoch_len(&self) -> f64 {
        self.epoch_len
    }

    /// Number of epochs currently buffered (open, not yet emitted).
    /// Under watermark semantics this is bounded by the stream skew in
    /// epochs, independent of how long the streams run — the pipeline
    /// records its high-water mark as the bounded-memory evidence.
    pub fn pending_epochs(&self) -> usize {
        self.pending.len()
    }

    /// Raw readings currently buffered across all open epochs.
    pub fn pending_readings(&self) -> usize {
        self.pending.values().map(|p| p.readings.len()).sum()
    }

    /// Items dropped because they arrived for an already-emitted epoch
    /// (late data beyond the skew bound, or malformed traces). A
    /// nonzero count means the stream skew exceeded
    /// [`StreamSynchronizer::with_max_skew`]'s bound — data loss is
    /// observable, never silent.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Pushes one raw RFID reading.
    pub fn push_reading(&mut self, r: RfidReading) {
        let e = Epoch::from_seconds(r.time, self.epoch_len).0;
        if e < self.emitted_below {
            // Late data for an already-emitted epoch is dropped (and
            // counted); the paper's epochs are coarse enough that this
            // only happens with malformed traces or skew beyond the
            // configured bound.
            self.late_dropped += 1;
            return;
        }
        self.pending.entry(e).or_default().readings.push(r.tag);
        self.reading_watermark = self.reading_watermark.max(r.time);
    }

    /// Pushes one raw reader-location report.
    pub fn push_report(&mut self, r: ReaderLocationReport) {
        let e = Epoch::from_seconds(r.time, self.epoch_len).0;
        if e < self.emitted_below {
            self.late_dropped += 1;
            return;
        }
        let p = self.pending.entry(e).or_default();
        p.pos_sum.0 += r.pose.pos.x;
        p.pos_sum.1 += r.pose.pos.y;
        p.pos_sum.2 += r.pose.pos.z;
        p.sin_sum += r.pose.phi.sin();
        p.cos_sum += r.pose.phi.cos();
        p.report_count += 1;
        self.report_watermark = self.report_watermark.max(r.time);
    }

    /// Pops every epoch that both watermarks have passed, in order.
    /// Epochs with no data at all are skipped (not fabricated).
    pub fn drain_ready(&mut self) -> Vec<EpochBatch> {
        let mut out = Vec::new();
        self.drain_ready_into(&mut out);
        out
    }

    /// [`StreamSynchronizer::drain_ready`] into a caller-owned buffer,
    /// so a long-running pipeline reuses one allocation. **Appends** to
    /// `out` (does not clear it) — unlike the policy-layer `*_into`
    /// methods, ready batches accumulate across calls until the caller
    /// consumes them.
    pub fn drain_ready_into(&mut self, out: &mut Vec<EpochBatch>) {
        let watermark = self.reading_watermark.min(self.report_watermark);
        let mut ready_below = Epoch::from_seconds(watermark, self.epoch_len).0;
        if let Some(skew) = self.max_skew_epochs {
            let fast = self.reading_watermark.max(self.report_watermark);
            let by_skew = Epoch::from_seconds(fast, self.epoch_len)
                .0
                .saturating_sub(skew);
            ready_below = ready_below.max(by_skew);
        }
        while let Some((&e, _)) = self.pending.iter().next() {
            if e >= ready_below {
                break;
            }
            let p = self.pending.remove(&e).expect("key just observed");
            out.push(p.finish(Epoch(e)));
        }
        self.emitted_below = self.emitted_below.max(ready_below);
    }

    /// Emits every remaining epoch (end of trace).
    pub fn flush(&mut self) -> Vec<EpochBatch> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// [`StreamSynchronizer::flush`] into a caller-owned buffer.
    /// **Appends** to `out` (does not clear it), like
    /// [`StreamSynchronizer::drain_ready_into`].
    pub fn flush_into(&mut self, out: &mut Vec<EpochBatch>) {
        let pending = std::mem::take(&mut self.pending);
        for (e, p) in pending {
            self.emitted_below = self.emitted_below.max(e + 1);
            out.push(p.finish(Epoch(e)));
        }
    }
}

/// Convenience: synchronize two complete in-memory traces.
pub fn synchronize_traces(
    readings: &[RfidReading],
    reports: &[ReaderLocationReport],
    epoch_len: f64,
) -> Vec<EpochBatch> {
    let mut sync = StreamSynchronizer::new(epoch_len);
    for r in readings {
        sync.push_reading(*r);
    }
    for r in reports {
        sync.push_report(*r);
    }
    let mut out = sync.drain_ready();
    out.extend(sync.flush());
    out.sort_by_key(|b| b.epoch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(t: f64, id: u64) -> RfidReading {
        RfidReading {
            time: t,
            tag: TagId(id),
        }
    }

    fn report(t: f64, x: f64, y: f64) -> ReaderLocationReport {
        ReaderLocationReport {
            time: t,
            pose: Pose::new(Point3::new(x, y, 0.0), 0.0),
        }
    }

    #[test]
    fn batches_group_by_epoch() {
        let batches = synchronize_traces(
            &[reading(0.1, 1), reading(0.7, 2), reading(1.2, 3)],
            &[report(0.5, 0.0, 0.0), report(1.5, 0.0, 0.1)],
            1.0,
        );
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].epoch, Epoch(0));
        assert_eq!(batches[0].readings, vec![TagId(1), TagId(2)]);
        assert_eq!(batches[1].epoch, Epoch(1));
        assert_eq!(batches[1].readings, vec![TagId(3)]);
    }

    #[test]
    fn duplicate_readings_deduplicated() {
        let batches = synchronize_traces(
            &[reading(0.1, 5), reading(0.2, 5), reading(0.3, 5)],
            &[report(0.5, 1.0, 2.0)],
            1.0,
        );
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].readings, vec![TagId(5)]);
    }

    #[test]
    fn multiple_reports_averaged() {
        let batches = synchronize_traces(
            &[reading(0.1, 1)],
            &[report(0.2, 0.0, 0.0), report(0.8, 1.0, 2.0)],
            1.0,
        );
        let pose = batches[0].reader_report.unwrap();
        assert!((pose.pos.x - 0.5).abs() < 1e-12);
        assert!((pose.pos.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_average_on_circle() {
        // averaging +170° and -170° must give 180°, not 0°.
        let mut sync = StreamSynchronizer::new(1.0);
        let phi1 = 170f64.to_radians();
        let phi2 = -170f64.to_radians();
        sync.push_report(ReaderLocationReport {
            time: 0.1,
            pose: Pose::new(Point3::origin(), phi1),
        });
        sync.push_report(ReaderLocationReport {
            time: 0.2,
            pose: Pose::new(Point3::origin(), phi2),
        });
        let batches = sync.flush();
        let phi = batches[0].reader_report.unwrap().phi;
        assert!((phi.abs() - std::f64::consts::PI).abs() < 1e-9, "phi {phi}");
    }

    #[test]
    fn watermark_holds_back_open_epoch() {
        let mut sync = StreamSynchronizer::new(1.0);
        sync.push_reading(reading(0.5, 1));
        sync.push_report(report(0.5, 0.0, 0.0));
        // Neither stream has passed epoch 0's end yet.
        assert!(sync.drain_ready().is_empty());
        sync.push_reading(reading(1.1, 2));
        // Reading watermark passed, report watermark has not.
        assert!(sync.drain_ready().is_empty());
        sync.push_report(report(1.1, 0.0, 0.1));
        let ready = sync.drain_ready();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].epoch, Epoch(0));
    }

    #[test]
    fn late_data_for_emitted_epoch_dropped_and_counted() {
        let mut sync = StreamSynchronizer::new(1.0);
        sync.push_reading(reading(0.5, 1));
        sync.push_report(report(0.5, 0.0, 0.0));
        sync.push_reading(reading(2.1, 2));
        sync.push_report(report(2.1, 0.0, 0.0));
        let first = sync.drain_ready();
        assert_eq!(first.len(), 1);
        assert_eq!(sync.late_dropped(), 0);
        // now a reading arrives for the already-emitted epoch 0
        sync.push_reading(reading(0.9, 9));
        assert_eq!(sync.late_dropped(), 1, "the drop must be observable");
        let rest = sync.flush();
        assert!(rest.iter().all(|b| !b.readings.contains(&TagId(9))));
    }

    #[test]
    fn skew_bound_emits_past_a_silent_stream() {
        // reports flow every epoch; readings go silent after epoch 0.
        // Pure min-watermark semantics would buffer forever; the skew
        // bound caps the buffer and emits.
        let mut sync = StreamSynchronizer::new(1.0).with_max_skew(3);
        sync.push_reading(reading(0.5, 1));
        for t in 0..10 {
            sync.push_report(report(t as f64 + 0.1, 0.0, t as f64));
            sync.drain_ready();
            assert!(
                sync.pending_epochs() <= 4,
                "buffer must stay within skew+1: {} at t={t}",
                sync.pending_epochs()
            );
        }
        let rest = sync.flush();
        // every report-bearing epoch was eventually emitted exactly once
        assert!(rest.len() <= 4);
    }

    #[test]
    fn skew_bound_preserves_batches_for_time_ordered_input() {
        // merged-in-time-order input: the bounded synchronizer must
        // produce exactly the batches of the unbounded one-shot helper
        let readings: Vec<_> = (0..20).map(|t| reading(t as f64 + 0.5, t)).collect();
        let reports: Vec<_> = (0..20).map(|t| report(t as f64, 0.0, t as f64)).collect();
        let expect = synchronize_traces(&readings, &reports, 1.0);

        let mut sync = StreamSynchronizer::new(1.0).with_max_skew(2);
        let mut got = Vec::new();
        let (mut ri, mut pi) = (0usize, 0usize);
        while ri < readings.len() || pi < reports.len() {
            let tr = readings.get(ri).map(|r| r.time).unwrap_or(f64::INFINITY);
            let tp = reports.get(pi).map(|r| r.time).unwrap_or(f64::INFINITY);
            if tr <= tp {
                sync.push_reading(readings[ri]);
                ri += 1;
            } else {
                sync.push_report(reports[pi]);
                pi += 1;
            }
            got.extend(sync.drain_ready());
        }
        got.extend(sync.flush());
        assert_eq!(expect, got);
    }

    #[test]
    fn empty_epochs_skipped() {
        let batches = synchronize_traces(
            &[reading(0.1, 1), reading(5.1, 2)],
            &[report(0.1, 0.0, 0.0), report(5.1, 0.0, 0.0)],
            1.0,
        );
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].epoch, Epoch(0));
        assert_eq!(batches[1].epoch, Epoch(5));
    }

    #[test]
    fn reading_only_epoch_has_no_report() {
        let batches = synchronize_traces(&[reading(0.4, 1)], &[], 1.0);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].reader_report.is_none());
    }
}
