//! `Group By` aggregation and `Having` filtering.

use std::collections::BTreeMap;

/// Groups items by `key_fn` and sums `val_fn` within each group —
/// the `Group By E2.area ... sum(E2.weight)` step of the fire-code
/// query. `BTreeMap` keeps output deterministic.
pub fn group_sum<T, K, FK, FV>(
    items: impl IntoIterator<Item = T>,
    key_fn: FK,
    val_fn: FV,
) -> BTreeMap<K, f64>
where
    K: Ord,
    FK: Fn(&T) -> K,
    FV: Fn(&T) -> f64,
{
    let mut out: BTreeMap<K, f64> = BTreeMap::new();
    for item in items {
        let k = key_fn(&item);
        let v = val_fn(&item);
        *out.entry(k).or_insert(0.0) += v;
    }
    out
}

/// Keeps groups whose aggregate satisfies `pred` — the `Having` clause.
pub fn having<K: Ord, F>(groups: BTreeMap<K, f64>, pred: F) -> BTreeMap<K, f64>
where
    F: Fn(f64) -> bool,
{
    groups.into_iter().filter(|(_, v)| pred(*v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sum_basic() {
        let items = vec![("a", 1.0), ("b", 2.0), ("a", 3.0)];
        let g = group_sum(items, |t| t.0, |t| t.1);
        assert_eq!(g.len(), 2);
        assert_eq!(g["a"], 4.0);
        assert_eq!(g["b"], 2.0);
    }

    #[test]
    fn group_sum_empty() {
        let g = group_sum(Vec::<(u8, f64)>::new(), |t| t.0, |t| t.1);
        assert!(g.is_empty());
    }

    #[test]
    fn having_filters() {
        let items = vec![(1, 10.0), (2, 5.0), (1, 10.0)];
        let g = having(group_sum(items, |t| t.0, |t| t.1), |v| v > 15.0);
        assert_eq!(g.len(), 1);
        assert_eq!(g[&1], 20.0);
    }
}
