//! A small CQL-like operator algebra over event streams.
//!
//! Just enough of CQL (Arasu et al.) to run the paper's two example
//! queries against the cleaned event stream:
//!
//! * `[Partition By k Row n]` — [`window::PartitionedRowWindow`]
//! * `[Range d seconds]` / `[Now]` — [`window::RangeWindow`]
//! * `Istream(...)` over a partitioned row window —
//!   [`istream::ChangeDetector`] (emits only when the newest tuple of a
//!   partition differs from the previous one)
//! * `Rstream(...)` — [`rstream::Rstream`] (emits the full relation at
//!   each evaluation instant)
//! * `Group By ... Having sum(...) > c` — [`groupby`] helpers.

pub mod groupby;
pub mod istream;
pub mod rstream;
pub mod window;

pub use groupby::{group_sum, having};
pub use istream::ChangeDetector;
pub use rstream::Rstream;
pub use window::{PartitionedRowWindow, RangeWindow};
