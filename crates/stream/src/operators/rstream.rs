//! `Rstream`: emit the full relation at each evaluation instant.
//!
//! CQL's `Rstream(R)` streams the entire contents of relation `R` at
//! every time instant. In this mini-algebra an [`Rstream`] wraps an
//! evaluation function applied to a windowed relation and records each
//! instant's emission, which is what the fire-code query's outer
//! `Select Rstream(...)` needs.

/// Streams snapshots of a derived relation.
#[derive(Debug, Clone, Default)]
pub struct Rstream<T> {
    emissions: Vec<(f64, Vec<T>)>,
}

impl<T> Rstream<T> {
    /// Creates an empty Rstream log.
    pub fn new() -> Self {
        Self {
            emissions: Vec::new(),
        }
    }

    /// Emits the relation contents computed at `time`. Empty relations
    /// are recorded too (an instant can legitimately produce nothing).
    pub fn emit(&mut self, time: f64, relation: Vec<T>) {
        self.emissions.push((time, relation));
    }

    /// All emissions so far, in order.
    pub fn emissions(&self) -> &[(f64, Vec<T>)] {
        &self.emissions
    }

    /// Tuples of the latest emission.
    pub fn latest(&self) -> Option<&(f64, Vec<T>)> {
        self.emissions.last()
    }

    /// Total tuples streamed across all instants.
    pub fn total_tuples(&self) -> usize {
        self.emissions.iter().map(|(_, r)| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut r = Rstream::new();
        r.emit(1.0, vec!["a"]);
        r.emit(2.0, vec![]);
        r.emit(3.0, vec!["b", "c"]);
        assert_eq!(r.emissions().len(), 3);
        assert_eq!(r.latest().unwrap().0, 3.0);
        assert_eq!(r.total_tuples(), 3);
    }
}
