//! `Istream` over a partitioned row-1 window: change detection.
//!
//! The paper's first example query is
//!
//! ```text
//! Select Istream(E.tag_id, E.(x, y, z))
//! From EventStream E [Partition By tag_id Row 1]
//! ```
//!
//! i.e. emit a tuple whenever the most recent location of a tag differs
//! from its previous one. [`ChangeDetector`] implements that pattern
//! generically: it remembers the last value per key and reports
//! insertions that change it.

use std::collections::HashMap;
use std::hash::Hash;

/// Emits values that differ from the previous value of their partition.
#[derive(Debug, Clone, Default)]
pub struct ChangeDetector<K: Eq + Hash + Clone, V: PartialEq + Clone> {
    last: HashMap<K, V>,
}

impl<K: Eq + Hash + Clone, V: PartialEq + Clone> ChangeDetector<K, V> {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self {
            last: HashMap::new(),
        }
    }

    /// Pushes a tuple. Returns `Some(value)` when the partition is new
    /// or the value differs from the stored one (the `Istream` output),
    /// `None` when unchanged.
    pub fn push(&mut self, key: K, value: V) -> Option<V> {
        match self.last.get(&key) {
            Some(prev) if *prev == value => None,
            _ => {
                self.last.insert(key, value.clone());
                Some(value)
            }
        }
    }

    /// Pushes with a custom equivalence, for fuzzy change detection
    /// (e.g. "location changed by more than 0.1 ft"). `same(prev, new)`
    /// returning true suppresses the emission *and keeps the previous
    /// value* as the reference, so drift accumulates until it crosses
    /// the threshold once.
    pub fn push_with<F>(&mut self, key: K, value: V, same: F) -> Option<V>
    where
        F: Fn(&V, &V) -> bool,
    {
        match self.last.get(&key) {
            Some(prev) if same(prev, &value) => None,
            _ => {
                self.last.insert(key, value.clone());
                Some(value)
            }
        }
    }

    /// The last emitted value of a partition.
    pub fn last(&self, key: &K) -> Option<&V> {
        self.last.get(key)
    }

    /// Number of partitions seen.
    pub fn num_partitions(&self) -> usize {
        self.last.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_always_emits() {
        let mut d = ChangeDetector::new();
        assert_eq!(d.push("a", 1), Some(1));
    }

    #[test]
    fn repeat_suppressed_change_emits() {
        let mut d = ChangeDetector::new();
        d.push("a", 1);
        assert_eq!(d.push("a", 1), None);
        assert_eq!(d.push("a", 2), Some(2));
        assert_eq!(d.push("a", 1), Some(1)); // going back is a change too
    }

    #[test]
    fn partitions_do_not_interfere() {
        let mut d = ChangeDetector::new();
        d.push(1u32, 'x');
        assert_eq!(d.push(2u32, 'x'), Some('x'));
        assert_eq!(d.num_partitions(), 2);
    }

    #[test]
    fn fuzzy_threshold_accumulates_from_reference() {
        let mut d: ChangeDetector<&str, f64> = ChangeDetector::new();
        let same = |a: &f64, b: &f64| (a - b).abs() < 0.5;
        assert_eq!(d.push_with("a", 0.0, same), Some(0.0));
        assert_eq!(d.push_with("a", 0.3, same), None); // within threshold of 0.0
        assert_eq!(d.push_with("a", 0.4, same), None); // still measured from 0.0
        assert_eq!(d.push_with("a", 0.6, same), Some(0.6)); // crossed
        assert_eq!(d.last(&"a"), Some(&0.6));
    }
}
