//! Window operators: partitioned row windows and time-range windows.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// `S [Partition By key Row n]`: for each partition key, the window
/// holds the `n` most recent tuples.
#[derive(Debug, Clone)]
pub struct PartitionedRowWindow<K: Eq + Hash + Clone, V> {
    n: usize,
    rows: HashMap<K, VecDeque<V>>,
}

impl<K: Eq + Hash + Clone, V> PartitionedRowWindow<K, V> {
    /// Creates a window keeping `n >= 1` rows per partition.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "row window must keep at least one row");
        Self {
            n,
            rows: HashMap::new(),
        }
    }

    /// Inserts a tuple into its partition; returns the tuple evicted to
    /// make room, if any.
    pub fn push(&mut self, key: K, value: V) -> Option<V> {
        let q = self.rows.entry(key).or_default();
        q.push_back(value);
        if q.len() > self.n {
            q.pop_front()
        } else {
            None
        }
    }

    /// The rows currently held for `key`, oldest first.
    pub fn partition<'a>(&'a self, key: &K) -> impl Iterator<Item = &'a V> {
        self.rows.get(key).into_iter().flat_map(|q| q.iter())
    }

    /// The most recent row for `key`.
    pub fn latest(&self, key: &K) -> Option<&V> {
        self.rows.get(key).and_then(|q| q.back())
    }

    /// Number of non-empty partitions.
    pub fn num_partitions(&self) -> usize {
        self.rows.len()
    }

    /// Iterates over `(key, newest_row)` pairs.
    pub fn iter_latest(&self) -> impl Iterator<Item = (&K, &V)> {
        self.rows
            .iter()
            .filter_map(|(k, q)| q.back().map(|v| (k, v)))
    }
}

/// `S [Range d]`: holds every tuple whose timestamp lies within the
/// last `d` seconds of the current watermark. `d == 0` gives `[Now]`
/// semantics (only tuples bearing exactly the current timestamp).
#[derive(Debug, Clone)]
pub struct RangeWindow<V> {
    range: f64,
    items: VecDeque<(f64, V)>,
    watermark: f64,
}

impl<V> RangeWindow<V> {
    /// Creates a window of `range` seconds (`0.0` for `[Now]`).
    pub fn new(range: f64) -> Self {
        assert!(range >= 0.0);
        Self {
            range,
            items: VecDeque::new(),
            watermark: f64::NEG_INFINITY,
        }
    }

    /// Inserts a timestamped tuple; timestamps must be non-decreasing.
    /// Advances the watermark and evicts expired tuples.
    pub fn push(&mut self, time: f64, value: V) {
        debug_assert!(
            time >= self.watermark || self.watermark == f64::NEG_INFINITY,
            "out-of-order tuple at {time} behind watermark {}",
            self.watermark
        );
        self.items.push_back((time, value));
        self.advance(time);
    }

    /// Advances the watermark without inserting, evicting expired
    /// tuples (e.g. on a timer tick with no data).
    pub fn advance(&mut self, time: f64) {
        self.watermark = self.watermark.max(time);
        let cutoff = self.watermark - self.range;
        while let Some((t, _)) = self.items.front() {
            if *t < cutoff {
                self.items.pop_front();
            } else {
                break;
            }
        }
    }

    /// Current contents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, V)> {
        self.items.iter()
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current watermark.
    pub fn watermark(&self) -> f64 {
        self.watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_window_keeps_last_n() {
        let mut w = PartitionedRowWindow::new(2);
        assert_eq!(w.push("a", 1), None);
        assert_eq!(w.push("a", 2), None);
        assert_eq!(w.push("a", 3), Some(1));
        assert_eq!(w.latest(&"a"), Some(&3));
        assert_eq!(w.partition(&"a").count(), 2);
        assert_eq!(w.partition(&"a").copied().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(w.latest(&"b"), None);
    }

    #[test]
    fn row_window_partitions_independent() {
        let mut w = PartitionedRowWindow::new(1);
        w.push(1u32, "x");
        w.push(2u32, "y");
        assert_eq!(w.num_partitions(), 2);
        assert_eq!(w.latest(&1), Some(&"x"));
        assert_eq!(w.latest(&2), Some(&"y"));
        let mut latest: Vec<_> = w.iter_latest().map(|(k, v)| (*k, *v)).collect();
        latest.sort();
        assert_eq!(latest, vec![(1, "x"), (2, "y")]);
    }

    #[test]
    #[should_panic]
    fn row_window_rejects_zero() {
        let _ = PartitionedRowWindow::<u32, u32>::new(0);
    }

    #[test]
    fn range_window_evicts_old() {
        let mut w = RangeWindow::new(5.0);
        w.push(0.0, 'a');
        w.push(3.0, 'b');
        w.push(6.0, 'c');
        // cutoff = 6 - 5 = 1 => 'a' evicted
        let live: Vec<char> = w.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec!['b', 'c']);
    }

    #[test]
    fn range_window_boundary_inclusive() {
        let mut w = RangeWindow::new(5.0);
        w.push(1.0, 'a');
        w.push(6.0, 'b');
        // tuple at exactly watermark - range stays
        assert_eq!(w.len(), 2);
        w.advance(6.000001);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn now_window_keeps_only_current_instant() {
        let mut w = RangeWindow::new(0.0);
        w.push(1.0, 'a');
        w.push(1.0, 'b');
        assert_eq!(w.len(), 2);
        w.push(2.0, 'c');
        let live: Vec<char> = w.iter().map(|(_, v)| *v).collect();
        assert_eq!(live, vec!['c']);
    }

    #[test]
    fn advance_without_data_evicts() {
        let mut w = RangeWindow::new(2.0);
        w.push(0.0, 1);
        w.advance(10.0);
        assert!(w.is_empty());
        assert_eq!(w.watermark(), 10.0);
    }
}
