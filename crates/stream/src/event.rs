//! The stream tuple types of the pipeline: raw readings, reader
//! location reports, and cleaned location events.

use crate::epoch::Epoch;
use rfid_geom::{Point3, Pose};
use std::fmt;

/// An RFID tag identifier (EPC code abstracted to a u64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u64);

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag:{:06}", self.0)
    }
}

/// One raw reading from the RFID reading stream: `(time, tag_id)`. The
/// tag may be an object tag or a shelf tag — the consumer decides using
/// its registry of known shelf tags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfidReading {
    /// Wall-clock seconds since trace start.
    pub time: f64,
    pub tag: TagId,
}

/// One raw report from the reader location stream:
/// `(time, (x, y, z))` plus the reported heading (a robotic reader's
/// odometry reports orientation along with position; see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReaderLocationReport {
    /// Wall-clock seconds since trace start.
    pub time: f64,
    pub pose: Pose,
}

/// Summary statistics optionally attached to an output event —
/// "the optional statistics field can be used to report summary
/// information of the estimated location distribution".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EventStats {
    /// Per-axis variance of the location estimate, in square feet.
    pub var: [f64; 3],
    /// Effective number of particles (or samples) behind the estimate.
    pub support: f64,
}

impl EventStats {
    /// Radius of a ~95% circular confidence region in the XY plane,
    /// from the per-axis variances (2-sigma of the larger axis).
    pub fn confidence_radius_xy(&self) -> f64 {
        2.0 * self.var[0].max(self.var[1]).max(0.0).sqrt()
    }
}

/// One cleaned output event:
/// `(time, tag_id, (x, y, z), (statistics)?)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationEvent {
    pub epoch: Epoch,
    pub tag: TagId,
    pub location: Point3,
    pub stats: Option<EventStats>,
}

impl LocationEvent {
    /// Creates an event without statistics.
    pub fn new(epoch: Epoch, tag: TagId, location: Point3) -> Self {
        Self {
            epoch,
            tag,
            location,
            stats: None,
        }
    }

    /// Attaches statistics.
    pub fn with_stats(mut self, stats: EventStats) -> Self {
        self.stats = Some(stats);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_display() {
        assert_eq!(TagId(7).to_string(), "tag:000007");
    }

    #[test]
    fn confidence_radius_uses_worst_axis() {
        let s = EventStats {
            var: [0.01, 0.04, 0.0],
            support: 100.0,
        };
        assert!((s.confidence_radius_xy() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn event_builder() {
        let e = LocationEvent::new(Epoch(3), TagId(1), Point3::new(1.0, 2.0, 0.0))
            .with_stats(EventStats::default());
        assert_eq!(e.epoch, Epoch(3));
        assert!(e.stats.is_some());
    }
}
