//! Binary wire format for stream items and location events.
//!
//! The cluster (router → worker → coordinator) moves readings and
//! events between processes over the same transport the query server
//! uses: 4-byte **big-endian** length-prefixed frames. Payloads here
//! are binary — integers little-endian, floats as raw IEEE-754 bits —
//! so a decoded event is *bit-identical* to the one encoded, which the
//! cluster's digest gate depends on.
//!
//! The module provides three layers:
//!
//! 1. byte framing ([`write_frame`] / [`read_frame`]) with an explicit
//!    `max_frame_len` — the length prefix is untrusted input, so the
//!    limit is checked *before* any allocation and an oversized prefix
//!    surfaces as a typed [`OversizedFrame`] error the caller can
//!    answer before closing;
//! 2. payload codecs for [`StreamItem`]s and [`LocationEvent`]s
//!    ([`PayloadReader`] plus the `encode_*`/`decode_*` pairs);
//! 3. pipeline adapters: [`WireItemSource`] (a
//!    [`ReadingSource`](crate::ReadingSource) reading item frames) and
//!    [`WireEventSink`] (an [`EventSink`] writing one frame per
//!    completed epoch), plus [`merge_events_by_tag`] — the
//!    coordinator's k-way merge with the same global-tag-order rule as
//!    `rfid_core`'s shard merge.

use crate::pipeline::{EventSink, StreamItem};
use crate::{Epoch, EventStats, LocationEvent, ReaderLocationReport, RfidReading, TagId};
use rfid_geom::{Point3, Pose};
use std::io::{self, Read, Write};

/// Default frame-size cap, matching the query server's.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 4 << 20;

/// A frame announced a length above the configured cap. Carried as the
/// source of an [`io::ErrorKind::InvalidData`] error so servers can
/// downcast and answer with a typed error before closing, instead of
/// allocating for (or silently dying on) a corrupt prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedFrame {
    pub len: u32,
    pub max: u32,
}

impl std::fmt::Display for OversizedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame of {} bytes exceeds the {}-byte limit",
            self.len, self.max
        )
    }
}

impl std::error::Error for OversizedFrame {}

impl OversizedFrame {
    /// Recovers the typed error from an [`io::Error`], if that is what
    /// it carries.
    pub fn from_io(err: &io::Error) -> Option<Self> {
        err.get_ref()?.downcast_ref::<Self>().copied()
    }

    /// Wraps into the [`io::Error`] that [`read_frame`] returns.
    pub fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, self)
    }
}

/// Writes one length-prefixed binary frame. Refuses payloads above
/// `max` (the peer would drop them).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: u32) -> io::Result<()> {
    if payload.len() > max as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {max}-byte limit",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed binary frame. Returns `Ok(None)` on a
/// clean EOF at a frame boundary; EOF inside a frame is
/// [`io::ErrorKind::UnexpectedEof`]; a length prefix above `max` is an
/// [`OversizedFrame`] error raised *before* any allocation.
pub fn read_frame<R: Read>(r: &mut R, max: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            // EOF *before* the prefix is a clean end of stream; EOF
            // *inside* it is a truncated frame and must be loud
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max {
        return Err(OversizedFrame { len, max }.into_io());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// payload codec
// ---------------------------------------------------------------------

/// A truncated or malformed payload (distinct from transport errors:
/// the frame arrived whole but its contents don't parse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormatError {
    /// The payload ended before the field being decoded.
    Truncated,
    /// An unknown discriminant byte.
    BadTag(u8),
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
    /// A length-prefixed string field held invalid UTF-8.
    BadString,
}

impl std::fmt::Display for WireFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFormatError::Truncated => write!(f, "payload truncated"),
            WireFormatError::BadTag(t) => write!(f, "unknown discriminant byte {t:#04x}"),
            WireFormatError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
            WireFormatError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireFormatError {}

impl From<WireFormatError> for io::Error {
    fn from(e: WireFormatError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Cursor over a received payload; every getter checks bounds.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireFormatError> {
        let end = self.pos.checked_add(N).ok_or(WireFormatError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(WireFormatError::Truncated)?;
        self.pos = end;
        Ok(bytes.try_into().expect("slice of length N"))
    }

    pub fn u8(&mut self) -> Result<u8, WireFormatError> {
        Ok(self.take::<1>()?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireFormatError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    pub fn u64(&mut self) -> Result<u64, WireFormatError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    /// Raw IEEE-754 bits — the decoded value is bit-identical.
    pub fn f64(&mut self) -> Result<f64, WireFormatError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn pose(&mut self) -> Result<Pose, WireFormatError> {
        let pos = Point3::new(self.f64()?, self.f64()?, self.f64()?);
        let phi = self.f64()?;
        // field construction, not Pose::new: re-normalizing phi could
        // flip the sign bit of an encoded -pi
        Ok(Pose { pos, phi })
    }

    /// The next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireFormatError> {
        let end = self.pos.checked_add(n).ok_or(WireFormatError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(WireFormatError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// A length-prefixed UTF-8 string (the [`put_str`] counterpart).
    pub fn str_field(&mut self) -> Result<&'a str, WireFormatError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.bytes(n)?).map_err(|_| WireFormatError::BadString)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireFormatError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireFormatError::TrailingBytes(n)),
        }
    }
}

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Raw IEEE-754 bits — round-trips bit-identically.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A length-prefixed UTF-8 string ([`PayloadReader::str_field`]
/// decodes it).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub fn put_pose(out: &mut Vec<u8>, p: &Pose) {
    put_f64(out, p.pos.x);
    put_f64(out, p.pos.y);
    put_f64(out, p.pos.z);
    put_f64(out, p.phi);
}

const ITEM_READING: u8 = 0;
const ITEM_REPORT: u8 = 1;

/// Encodes one raw stream item (reading or report).
pub fn encode_item(item: &StreamItem, out: &mut Vec<u8>) {
    match item {
        StreamItem::Reading(r) => {
            put_u8(out, ITEM_READING);
            put_f64(out, r.time);
            put_u64(out, r.tag.0);
        }
        StreamItem::Report(r) => {
            put_u8(out, ITEM_REPORT);
            put_f64(out, r.time);
            put_pose(out, &r.pose);
        }
    }
}

/// Decodes one raw stream item.
pub fn decode_item(r: &mut PayloadReader<'_>) -> Result<StreamItem, WireFormatError> {
    match r.u8()? {
        ITEM_READING => Ok(StreamItem::Reading(RfidReading {
            time: r.f64()?,
            tag: TagId(r.u64()?),
        })),
        ITEM_REPORT => Ok(StreamItem::Report(ReaderLocationReport {
            time: r.f64()?,
            pose: r.pose()?,
        })),
        t => Err(WireFormatError::BadTag(t)),
    }
}

/// Encodes one location event (bit-exact floats).
pub fn encode_event(e: &LocationEvent, out: &mut Vec<u8>) {
    put_u64(out, e.epoch.0);
    put_u64(out, e.tag.0);
    put_f64(out, e.location.x);
    put_f64(out, e.location.y);
    put_f64(out, e.location.z);
    match &e.stats {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_f64(out, s.support);
            put_f64(out, s.var[0]);
            put_f64(out, s.var[1]);
            put_f64(out, s.var[2]);
        }
    }
}

/// Decodes one location event.
pub fn decode_event(r: &mut PayloadReader<'_>) -> Result<LocationEvent, WireFormatError> {
    let epoch = Epoch(r.u64()?);
    let tag = TagId(r.u64()?);
    let location = Point3::new(r.f64()?, r.f64()?, r.f64()?);
    let stats = match r.u8()? {
        0 => None,
        1 => Some(EventStats {
            support: r.f64()?,
            var: [r.f64()?, r.f64()?, r.f64()?],
        }),
        t => return Err(WireFormatError::BadTag(t)),
    };
    Ok(LocationEvent {
        epoch,
        tag,
        location,
        stats,
    })
}

// ---------------------------------------------------------------------
// pipeline adapters
// ---------------------------------------------------------------------

/// Writes raw stream items as item frames (`count` + items each); the
/// producing half of [`WireItemSource`].
#[derive(Debug)]
pub struct WireItemWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    pending: u32,
    max_frame_len: u32,
}

impl<W: Write> WireItemWriter<W> {
    pub fn new(w: W) -> Self {
        Self {
            w,
            buf: Vec::new(),
            pending: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Buffers one item; call [`WireItemWriter::flush`] to frame what
    /// has accumulated.
    pub fn push(&mut self, item: &StreamItem) -> io::Result<()> {
        if self.pending == 0 {
            self.buf.clear();
            put_u32(&mut self.buf, 0); // count patched on flush
        }
        encode_item(item, &mut self.buf);
        self.pending += 1;
        // keep frames comfortably under the cap
        if self.buf.len() >= (self.max_frame_len / 2) as usize {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes the buffered items as one frame (no-op when empty).
    pub fn flush(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.buf[..4].copy_from_slice(&self.pending.to_le_bytes());
            write_frame(&mut self.w, &self.buf, self.max_frame_len)?;
            self.pending = 0;
            self.buf.clear();
        }
        self.w.flush()
    }
}

/// A [`ReadingSource`](crate::ReadingSource) decoding item frames from
/// a byte stream — the router's input when the trace arrives over a
/// socket or file instead of from the in-process simulator. Ends the
/// stream at EOF; a transport or format error also ends the stream and
/// is kept for [`WireItemSource::take_error`].
#[derive(Debug)]
pub struct WireItemSource<R: Read> {
    r: R,
    queue: std::collections::VecDeque<StreamItem>,
    error: Option<io::Error>,
    max_frame_len: u32,
    done: bool,
}

impl<R: Read> WireItemSource<R> {
    pub fn new(r: R) -> Self {
        Self {
            r,
            queue: std::collections::VecDeque::new(),
            error: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            done: false,
        }
    }

    /// The error that ended the stream early, if any.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    fn fail(&mut self, e: io::Error) -> Option<StreamItem> {
        self.error = Some(e);
        self.done = true;
        None
    }
}

impl<R: Read> Iterator for WireItemSource<R> {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        loop {
            if let Some(item) = self.queue.pop_front() {
                return Some(item);
            }
            if self.done {
                return None;
            }
            let payload = match read_frame(&mut self.r, self.max_frame_len) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    self.done = true;
                    return None;
                }
                Err(e) => return self.fail(e),
            };
            let mut rd = PayloadReader::new(&payload);
            let count = match rd.u32() {
                Ok(c) => c,
                Err(e) => return self.fail(e.into()),
            };
            for _ in 0..count {
                match decode_item(&mut rd) {
                    Ok(item) => self.queue.push_back(item),
                    Err(e) => return self.fail(e.into()),
                }
            }
            if let Err(e) = rd.finish() {
                return self.fail(e.into());
            }
        }
    }
}

/// Event-frame kinds written by [`WireEventSink`].
pub const EVENTS_EPOCH: u8 = 0;
pub const EVENTS_FINAL: u8 = 1;

/// An [`EventSink`] that writes one event frame per completed epoch —
/// `kind, epoch, count, events` — and a final frame on finish, even
/// when empty: the receiving coordinator uses the per-epoch frames as
/// barriers for its global tag-order merge. I/O errors are latched
/// (the [`EventSink`] methods are infallible) and surfaced via
/// [`WireEventSink::io_error`].
#[derive(Debug)]
pub struct WireEventSink<W: Write> {
    w: W,
    buf: Vec<u8>,
    pending: u32,
    last_epoch: u64,
    error: Option<io::Error>,
    max_frame_len: u32,
}

impl<W: Write> WireEventSink<W> {
    pub fn new(w: W) -> Self {
        Self {
            w,
            buf: Vec::new(),
            pending: 0,
            last_epoch: 0,
            error: None,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// The first I/O error, if any (the sink stops writing after it).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn write_events_frame(&mut self, kind: u8, epoch: Epoch) {
        if self.error.is_some() {
            return;
        }
        let mut frame = Vec::with_capacity(self.buf.len() + 16);
        put_u8(&mut frame, kind);
        put_u64(&mut frame, epoch.0);
        put_u32(&mut frame, self.pending);
        frame.extend_from_slice(&self.buf);
        let res =
            write_frame(&mut self.w, &frame, self.max_frame_len).and_then(|()| self.w.flush());
        if let Err(e) = res {
            self.error = Some(e);
        }
        self.buf.clear();
        self.pending = 0;
    }
}

impl<W: Write> EventSink for WireEventSink<W> {
    fn on_event(&mut self, event: &LocationEvent) {
        encode_event(event, &mut self.buf);
        self.pending += 1;
        self.last_epoch = self.last_epoch.max(event.epoch.0);
    }

    fn on_epoch_complete(&mut self, epoch: Epoch) {
        self.last_epoch = self.last_epoch.max(epoch.0);
        self.write_events_frame(EVENTS_EPOCH, epoch);
    }

    fn on_finish(&mut self) {
        self.write_events_frame(EVENTS_FINAL, Epoch(self.last_epoch));
    }
}

/// One decoded event frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EventFrame {
    pub kind: u8,
    pub epoch: Epoch,
    pub events: Vec<LocationEvent>,
}

/// Decodes one frame produced by [`WireEventSink`].
pub fn decode_event_frame(payload: &[u8]) -> Result<EventFrame, WireFormatError> {
    let mut r = PayloadReader::new(payload);
    let kind = r.u8()?;
    if kind != EVENTS_EPOCH && kind != EVENTS_FINAL {
        return Err(WireFormatError::BadTag(kind));
    }
    let epoch = Epoch(r.u64()?);
    let count = r.u32()?;
    let mut events = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        events.push(decode_event(&mut r)?);
    }
    r.finish()?;
    Ok(EventFrame {
        kind,
        epoch,
        events,
    })
}

/// K-way merges per-worker event lists by tag — the wire-level
/// equivalent of `rfid_core`'s shard merge rule. Each input list must
/// be sorted by tag (every per-epoch and final list the engine emits
/// is); the workers own disjoint tag sets, so the merged order is the
/// single-process emission order.
pub fn merge_events_by_tag(lists: &[Vec<LocationEvent>], out: &mut Vec<LocationEvent>) {
    let mut pos = vec![0usize; lists.len()];
    loop {
        let mut best: Option<usize> = None;
        for (i, list) in lists.iter().enumerate() {
            if pos[i] < list.len() && best.is_none_or(|b| list[pos[i]].tag < lists[b][pos[b]].tag) {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        out.push(lists[b][pos[b]]);
        pos[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u64, tag: u64, x: f64) -> LocationEvent {
        LocationEvent::new(
            Epoch(epoch),
            TagId(tag),
            Point3::new(x, -0.0, f64::MIN_POSITIVE),
        )
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc", 64).unwrap();
        write_frame(&mut buf, b"", 64).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some(&b"abc"[..])
        );
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some(&b""[..]));
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_typed_and_preallocation() {
        // a 3 GiB announcement must fail before any allocation
        let mut buf = Vec::new();
        buf.extend_from_slice(&(3u32 << 30).to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(
            OversizedFrame::from_io(&err),
            Some(OversizedFrame {
                len: 3 << 30,
                max: 1024
            })
        );
    }

    #[test]
    fn truncation_at_every_byte_boundary_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, b"payload", 64).unwrap();
        for cut in 0..full.len() {
            let mut r = io::Cursor::new(full[..cut].to_vec());
            match read_frame(&mut r, 64) {
                Ok(None) => assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
                Ok(Some(_)) => panic!("cut at {cut} produced a frame"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            }
        }
    }

    #[test]
    fn events_round_trip_bit_exact() {
        let events = vec![
            ev(3, 7, 1.5),
            LocationEvent::new(Epoch(4), TagId(8), Point3::new(0.1, 0.2, 0.3)).with_stats(
                EventStats {
                    var: [f64::EPSILON, 2.0, -0.0],
                    support: 123.456,
                },
            ),
        ];
        let mut buf = Vec::new();
        for e in &events {
            encode_event(e, &mut buf);
        }
        let mut r = PayloadReader::new(&buf);
        for e in &events {
            let d = decode_event(&mut r).unwrap();
            assert_eq!(d.epoch, e.epoch);
            assert_eq!(d.tag, e.tag);
            assert_eq!(d.location.x.to_bits(), e.location.x.to_bits());
            assert_eq!(d.location.y.to_bits(), e.location.y.to_bits());
            assert_eq!(d.location.z.to_bits(), e.location.z.to_bits());
            match (d.stats, e.stats) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.support.to_bits(), b.support.to_bits());
                    for k in 0..3 {
                        assert_eq!(a.var[k].to_bits(), b.var[k].to_bits());
                    }
                }
                _ => panic!("stats presence changed"),
            }
        }
        r.finish().unwrap();
    }

    #[test]
    fn item_source_round_trips_and_ends_cleanly() {
        let items = vec![
            StreamItem::Reading(RfidReading {
                time: 0.25,
                tag: TagId(42),
            }),
            StreamItem::Report(ReaderLocationReport {
                time: 0.5,
                pose: Pose {
                    pos: Point3::new(1.0, 2.0, 3.0),
                    phi: -std::f64::consts::PI,
                },
            }),
            StreamItem::Reading(RfidReading {
                time: 0.75,
                tag: TagId(43),
            }),
        ];
        let mut buf = Vec::new();
        {
            let mut w = WireItemWriter::new(&mut buf);
            for (i, item) in items.iter().enumerate() {
                w.push(item).unwrap();
                if i == 0 {
                    w.flush().unwrap(); // multiple frames on the stream
                }
            }
            w.flush().unwrap();
        }
        let mut src = WireItemSource::new(io::Cursor::new(buf));
        let decoded: Vec<StreamItem> = (&mut src).collect();
        assert!(src.take_error().is_none());
        assert_eq!(decoded.len(), items.len());
        for (d, i) in decoded.iter().zip(&items) {
            match (d, i) {
                (StreamItem::Reading(a), StreamItem::Reading(b)) => {
                    assert_eq!(a.tag, b.tag);
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                }
                (StreamItem::Report(a), StreamItem::Report(b)) => {
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                    assert_eq!(a.pose.pos.x.to_bits(), b.pose.pos.x.to_bits());
                    assert_eq!(a.pose.phi.to_bits(), b.pose.phi.to_bits());
                }
                _ => panic!("item kind changed"),
            }
        }
    }

    #[test]
    fn garbage_after_valid_frame_is_an_error() {
        let mut buf = Vec::new();
        {
            let mut w = WireItemWriter::new(&mut buf);
            w.push(&StreamItem::Reading(RfidReading {
                time: 0.0,
                tag: TagId(1),
            }))
            .unwrap();
            w.flush().unwrap();
        }
        // valid frame, then a frame whose payload is garbage
        write_frame(&mut buf, &[0xde, 0xad, 0xbe, 0xef, 0xff], 64).unwrap();
        let mut src = WireItemSource::new(io::Cursor::new(buf));
        let decoded: Vec<StreamItem> = (&mut src).collect();
        assert_eq!(decoded.len(), 1, "the valid frame still decodes");
        assert!(
            src.take_error().is_some(),
            "the garbage ends the stream loudly"
        );
    }

    #[test]
    fn event_sink_frames_per_epoch_with_final_marker() {
        let mut buf = Vec::new();
        {
            let mut sink = WireEventSink::new(&mut buf);
            sink.on_event(&ev(1, 5, 0.5));
            sink.on_event(&ev(1, 9, 1.5));
            sink.on_epoch_complete(Epoch(1));
            sink.on_epoch_complete(Epoch(2)); // empty barrier frame
            sink.on_event(&ev(3, 5, 2.5));
            sink.on_epoch_complete(Epoch(3));
            sink.on_finish();
            assert!(sink.io_error().is_none());
        }
        let mut r = io::Cursor::new(buf);
        let mut frames = Vec::new();
        while let Some(p) = read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap() {
            frames.push(decode_event_frame(&p).unwrap());
        }
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].events.len(), 2);
        assert_eq!(frames[1].events.len(), 0, "empty epochs still frame");
        assert_eq!(frames[2].events.len(), 1);
        assert_eq!(frames[3].kind, EVENTS_FINAL);
        assert_eq!(frames[3].epoch, Epoch(3));
    }

    #[test]
    fn merge_by_tag_reconstructs_global_order() {
        let lists = vec![
            vec![ev(1, 0, 0.0), ev(1, 3, 0.0), ev(1, 9, 0.0)],
            vec![ev(1, 1, 0.0), ev(1, 4, 0.0)],
            vec![],
            vec![ev(1, 2, 0.0)],
        ];
        let mut out = Vec::new();
        merge_events_by_tag(&lists, &mut out);
        let tags: Vec<u64> = out.iter().map(|e| e.tag.0).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4, 9]);
    }
}
