//! Epochs: the coarse time steps of the model.
//!
//! The paper uses "a fairly coarse-grained" time step, e.g. one second,
//! and synchronizes both raw streams to it. [`Epoch`] is a newtype over
//! the epoch counter; wall-clock seconds convert through an explicit
//! epoch length so tests can use non-unit epochs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete time step index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The first epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// Maps a wall-clock timestamp (seconds) to its epoch under the
    /// given epoch length (seconds). Negative timestamps clamp to 0.
    pub fn from_seconds(t: f64, epoch_len: f64) -> Self {
        debug_assert!(epoch_len > 0.0);
        if t <= 0.0 {
            Epoch(0)
        } else {
            Epoch((t / epoch_len).floor() as u64)
        }
    }

    /// The wall-clock start of this epoch.
    pub fn start_seconds(&self, epoch_len: f64) -> f64 {
        self.0 as f64 * epoch_len
    }

    /// The next epoch.
    #[inline]
    pub fn next(&self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Number of epochs elapsed since `earlier` (saturating).
    #[inline]
    pub fn since(&self, earlier: Epoch) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Epoch {
    type Output = Epoch;
    #[inline]
    fn add(self, rhs: u64) -> Epoch {
        Epoch(self.0 + rhs)
    }
}

impl AddAssign<u64> for Epoch {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Epoch> for Epoch {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Epoch) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seconds_floors() {
        assert_eq!(Epoch::from_seconds(0.0, 1.0), Epoch(0));
        assert_eq!(Epoch::from_seconds(0.99, 1.0), Epoch(0));
        assert_eq!(Epoch::from_seconds(1.0, 1.0), Epoch(1));
        assert_eq!(Epoch::from_seconds(2.49, 0.5), Epoch(4));
    }

    #[test]
    fn negative_time_clamps() {
        assert_eq!(Epoch::from_seconds(-3.0, 1.0), Epoch(0));
    }

    #[test]
    fn arithmetic() {
        let e = Epoch(10);
        assert_eq!(e + 5, Epoch(15));
        assert_eq!(e.next(), Epoch(11));
        assert_eq!(Epoch(15) - Epoch(10), 5);
        assert_eq!(Epoch(10) - Epoch(15), -5);
        assert_eq!(Epoch(15).since(Epoch(10)), 5);
        assert_eq!(Epoch(10).since(Epoch(15)), 0);
    }

    #[test]
    fn roundtrip_start() {
        let e = Epoch::from_seconds(7.3, 1.0);
        assert_eq!(e.start_seconds(1.0), 7.0);
    }

    #[test]
    fn display() {
        assert_eq!(Epoch(42).to_string(), "t42");
    }
}
