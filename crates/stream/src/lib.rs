//! Stream types and query operators for the RFID pipeline.
//!
//! The paper's pipeline has three stream layers (§II-A):
//!
//! 1. **raw input streams** from the mobile reader — an RFID reading
//!    stream `(time, tag_id)` and a reader location stream
//!    `(time, (x, y, z))`, possibly slightly out of sync;
//! 2. **synchronized epoch batches** — the coarse-grained time steps the
//!    model works in (default epoch = 1 s), produced by low-level
//!    processing that assigns readings to epochs and averages multiple
//!    location reports within an epoch;
//! 3. the **output event stream** `(time, tag_id, (x, y, z), stats?)`
//!    produced by inference, which is what applications query.
//!
//! §II-B's point is that layer 3 is "readily queriable": this crate also
//! implements a small CQL-like operator algebra ([`operators`]) and the
//! paper's two example queries ([`queries`]) — the location-change query
//! and the fire-code (weight per square foot) query.
//!
//! [`pipeline`] wires the layers into one incremental streaming run —
//! `ReadingSource` → [`StreamSynchronizer`] → `InferenceStage` →
//! composable `EventSink`s — with measured, bounded buffering
//! (`PipelineStats`).

pub mod digest;
pub mod epoch;
pub mod event;
pub mod operators;
pub mod pipeline;
pub mod queries;
pub mod sync;
pub mod wire;

pub use epoch::Epoch;
pub use event::{EventStats, LocationEvent, ReaderLocationReport, RfidReading, TagId};
pub use pipeline::{EventSink, InferenceStage, Pipeline, PipelineStats, ReadingSource, StreamItem};
pub use sync::{EpochBatch, StreamSynchronizer};
