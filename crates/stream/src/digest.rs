//! Bit-exact event-stream digests.
//!
//! [`event_digest`] is the fingerprint behind the golden-trace suite
//! (`rfid_bench::golden` renders the committed files) and the cluster's
//! bit-identical gate: a coordinator hashes the merged event stream and
//! the digest must equal the single-process engine's for every worker
//! count. It lives here, next to [`LocationEvent`], so both the bench
//! crate and the cluster binaries share one definition.

use crate::LocationEvent;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash over the full bit pattern of every event: epoch, tag,
/// location bits, and (when present) the statistics bits. Bit-exact —
/// two streams hash equal iff a bit-level comparison would pass.
pub fn event_digest(events: &[LocationEvent]) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(events.len() as u64).to_le_bytes());
    for e in events {
        h = fnv1a(h, &e.epoch.0.to_le_bytes());
        h = fnv1a(h, &e.tag.0.to_le_bytes());
        for v in [e.location.x, e.location.y, e.location.z] {
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
        match e.stats {
            None => h = fnv1a(h, &[0u8]),
            Some(s) => {
                h = fnv1a(h, &[1u8]);
                h = fnv1a(h, &s.support.to_bits().to_le_bytes());
                for v in s.var {
                    h = fnv1a(h, &v.to_bits().to_le_bytes());
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epoch, EventStats, TagId};
    use rfid_geom::Point3;

    fn ev(epoch: u64, tag: u64, y: f64) -> LocationEvent {
        LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(2.0, y, 0.0))
    }

    #[test]
    fn digest_is_bit_sensitive() {
        let a = vec![ev(1, 1, 3.0), ev(2, 2, 4.0)];
        let base = event_digest(&a);
        // any single-field change moves the hash
        let mut b = a.clone();
        b[1].location.y = f64::from_bits(b[1].location.y.to_bits() ^ 1);
        assert_ne!(base, event_digest(&b), "last-ulp drift must be caught");
        let mut c = a.clone();
        c[0].epoch = Epoch(7);
        assert_ne!(base, event_digest(&c));
        let mut d = a.clone();
        d[0].stats = Some(EventStats::default());
        assert_ne!(base, event_digest(&d));
        // order matters: the stream is an ordered contract
        let e = vec![a[1], a[0]];
        assert_ne!(base, event_digest(&e));
        // and equality holds for equal streams
        assert_eq!(base, event_digest(&a.clone()));
    }

    #[test]
    fn empty_and_len_prefix() {
        assert_ne!(event_digest(&[]), event_digest(&[ev(0, 0, 0.0)]));
    }
}
