//! Edge-case contracts of the query sinks — the behaviors the serving
//! layer's `EventStore` is pinned bit-identical against (see
//! `crates/serve/tests/store_pin_sinks.rs`): an empty event stream, a
//! tag that departs (tombstone) mid-window, and duplicate events
//! inside one epoch.

use rfid_geom::Point3;
use rfid_stream::pipeline::sinks::{SnapshotSink, TrailSink};
use rfid_stream::{Epoch, EventSink, LocationEvent, TagId};

fn ev(epoch: u64, tag: u64, x: f64, y: f64) -> LocationEvent {
    LocationEvent::new(Epoch(epoch), TagId(tag), Point3::new(x, y, 0.0))
}

#[test]
fn trail_sink_on_empty_stream() {
    let mut s = TrailSink::new(3);
    s.on_finish();
    assert_eq!(s.num_tags(), 0);
    assert_eq!(s.trail(TagId(0)).count(), 0);
    assert!(s.latest(TagId(0)).is_none());
}

#[test]
fn snapshot_sink_on_empty_stream_emits_one_empty_relation() {
    // even a stream with zero events must produce a (vacuous) final
    // snapshot, so downstream consumers always see >= 1 emission
    let mut s = SnapshotSink::new(5);
    s.on_finish();
    assert_eq!(s.emissions().len(), 1);
    assert_eq!(s.emissions()[0].0, 0.0);
    assert!(s.emissions()[0].1.is_empty());

    // epochs completing without events: cadence emissions are empty,
    // and no duplicate final snapshot is appended
    let mut s = SnapshotSink::new(1);
    s.on_epoch_complete(Epoch(0));
    s.on_epoch_complete(Epoch(1));
    s.on_finish();
    assert_eq!(s.emissions().len(), 2);
    assert!(s.emissions().iter().all(|(_, r)| r.is_empty()));
}

#[test]
fn departed_tag_tombstone_mid_window() {
    // tag 2 departs (its events stop) after epoch 2; tag 1 reports on
    let mut trail = TrailSink::new(4);
    let mut snap = SnapshotSink::new(1);
    for e in 0..8u64 {
        let mut events = vec![ev(e, 1, e as f64, 0.0)];
        if e <= 2 {
            events.push(ev(e, 2, -1.0, e as f64));
        }
        for event in &events {
            trail.on_event(event);
            snap.on_event(event);
        }
        trail.on_epoch_complete(Epoch(e));
        snap.on_epoch_complete(Epoch(e));
    }
    trail.on_finish();
    snap.on_finish();

    // the trail window retains the departed tag's last rows untouched
    let t2: Vec<u64> = trail.trail(TagId(2)).map(|(e, _)| e.0).collect();
    assert_eq!(t2, vec![0, 1, 2], "tombstoned tag keeps its history");
    assert_eq!(trail.latest(TagId(2)).unwrap().0, Epoch(2));
    // while the live tag's window slid on
    let t1: Vec<u64> = trail.trail(TagId(1)).map(|(e, _)| e.0).collect();
    assert_eq!(t1, vec![4, 5, 6, 7]);

    // the snapshot relation reports last-known-location forever —
    // this is the documented sink contract (the serving store's
    // `snapshot_staleness` exists precisely because of it)
    let (_, last) = snap.emissions().last().unwrap();
    let tag2 = last.iter().find(|(t, _)| *t == TagId(2)).unwrap();
    assert_eq!(tag2.1.y, 2.0, "frozen at its last report");
    assert_eq!(last.len(), 2);
}

#[test]
fn duplicate_events_in_one_epoch() {
    let mut trail = TrailSink::new(8);
    let mut snap = SnapshotSink::new(1);
    // two reports of tag 1 inside epoch 0 (e.g. merged shard streams),
    // arriving in stream order
    for event in [ev(0, 1, 1.0, 0.0), ev(0, 1, 2.0, 0.0)] {
        trail.on_event(&event);
        snap.on_event(&event);
    }
    trail.on_epoch_complete(Epoch(0));
    snap.on_epoch_complete(Epoch(0));
    trail.on_finish();
    snap.on_finish();

    // the trail keeps both rows, in arrival order
    let rows: Vec<f64> = trail.trail(TagId(1)).map(|(_, p)| p.x).collect();
    assert_eq!(rows, vec![1.0, 2.0]);
    // the snapshot keeps the last arrival
    assert_eq!(snap.emissions().len(), 1);
    let relation = &snap.emissions()[0].1;
    assert_eq!(relation.len(), 1);
    assert_eq!(relation[0].1.x, 2.0);
}

#[test]
fn trail_window_eviction_returns_displaced_row() {
    // the row-window contract the trail sink sits on: pushing past n
    // evicts oldest-first, per partition
    let mut s = TrailSink::new(1);
    s.on_event(&ev(0, 1, 1.0, 0.0));
    s.on_event(&ev(5, 1, 2.0, 0.0));
    s.on_event(&ev(3, 2, 9.0, 0.0));
    assert_eq!(s.trail(TagId(1)).count(), 1);
    assert_eq!(s.latest(TagId(1)).unwrap().0, Epoch(5));
    assert_eq!(s.latest(TagId(2)).unwrap().0, Epoch(3));
    assert_eq!(s.num_tags(), 2);
}
