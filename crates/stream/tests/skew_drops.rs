//! Drop accounting of [`StreamSynchronizer::with_max_skew`]: the
//! drop-free path (time-ordered sources) is pinned elsewhere
//! (`sync_prop.rs`); these tests drive sources that are out of order
//! *beyond* the skew bound, where drops **do** occur, and assert the
//! losses are surfaced — nonzero `late_dropped` on the synchronizer
//! and in `PipelineStats` — never silent.

use rfid_geom::{Point3, Pose};
use rfid_stream::pipeline::StreamItem;
use rfid_stream::{
    Epoch, EpochBatch, LocationEvent, Pipeline, ReaderLocationReport, RfidReading,
    StreamSynchronizer, TagId,
};

fn reading(t: f64, id: u64) -> RfidReading {
    RfidReading {
        time: t,
        tag: TagId(id),
    }
}

fn report(t: f64, y: f64) -> ReaderLocationReport {
    ReaderLocationReport {
        time: t,
        pose: Pose::new(Point3::new(0.0, y, 0.0), 0.0),
    }
}

#[test]
fn reports_beyond_the_skew_bound_are_dropped_and_counted() {
    let mut sync = StreamSynchronizer::new(1.0).with_max_skew(2);
    // the reading stream races ahead through epoch 10...
    for e in 0..=10u64 {
        sync.push_reading(reading(e as f64 + 0.5, e));
    }
    // ...forcing epochs 0..8 out despite the absent report stream
    let early = sync.drain_ready();
    assert_eq!(early.len(), 8, "skew bound must emit 10 - 2 epochs");
    assert!(early.iter().all(|b| b.reader_report.is_none()));
    assert_eq!(sync.late_dropped(), 0, "no data has been late yet");

    // the lagging report stream finally delivers epochs 0..=10: the
    // first 8 are late for already-emitted epochs and must be dropped
    // *and counted*; the last 3 still attach to open epochs
    for e in 0..=10u64 {
        sync.push_report(report(e as f64 + 0.1, e as f64));
    }
    assert_eq!(sync.late_dropped(), 8, "every late report is accounted");

    let rest = sync.flush();
    assert_eq!(rest.len(), 3);
    for b in &rest {
        assert!(
            b.reader_report.is_some(),
            "open epoch {:?} should keep its report",
            b.epoch
        );
    }
}

#[test]
fn late_readings_are_dropped_and_counted_too() {
    let mut sync = StreamSynchronizer::new(1.0).with_max_skew(1);
    for e in 0..=5u64 {
        sync.push_report(report(e as f64 + 0.1, e as f64));
    }
    let emitted = sync.drain_ready();
    assert_eq!(emitted.len(), 4); // epochs 0..4 forced out by skew
                                  // readings for emitted epochs arrive now — beyond the bound
    sync.push_reading(reading(0.5, 7));
    sync.push_reading(reading(1.5, 8));
    sync.push_reading(reading(3.5, 9));
    assert_eq!(sync.late_dropped(), 3);
    // the dropped tags never surface in any batch
    let rest = sync.flush();
    for b in emitted.iter().chain(&rest) {
        assert!(b.readings.is_empty(), "dropped reading leaked: {b:?}");
    }
}

/// A trivial stage: one event per reading.
struct Echo;
impl rfid_stream::InferenceStage for Echo {
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
        for tag in &batch.readings {
            out.push(LocationEvent::new(batch.epoch, *tag, Point3::origin()));
        }
    }
    fn finalize_into(&mut self, _last_epoch: Epoch, _out: &mut Vec<LocationEvent>) {}
}

#[test]
fn pipeline_surfaces_drop_counts_in_stats() {
    // an adversarial source: all 30 epochs of readings first, then the
    // report stream trailing 30 epochs behind — far beyond the default
    // skew bound of 4, so most reports arrive for emitted epochs
    let n = 30u64;
    let mut items: Vec<StreamItem> = (0..n)
        .map(|e| StreamItem::Reading(reading(e as f64 + 0.5, e)))
        .collect();
    items.extend((0..n).map(|e| StreamItem::Report(report(e as f64 + 0.1, e as f64))));

    let mut p = Pipeline::new(1.0, Echo, Vec::<LocationEvent>::new());
    let stats = p.run_to_completion(&mut items.into_iter());

    assert!(
        stats.late_dropped > 0,
        "skew-bound drops must be visible in PipelineStats"
    );
    // exactly the reports older than the skew bound are lost (the
    // reading watermark sits at epoch n-1, so epochs below n-1-skew
    // were emitted before their report arrived)
    assert_eq!(
        stats.late_dropped,
        n - 1 - rfid_stream::pipeline::DEFAULT_MAX_SKEW_EPOCHS
    );
    // no readings were lost: every epoch still echoed its event
    assert_eq!(stats.events, n);
    assert_eq!(p.sink().len() as u64, n);
}
