//! Property: pushing a trace through [`StreamSynchronizer`]
//! incrementally — readings shuffled within epochs, items held back
//! across epoch boundaries (out-of-order between the two streams),
//! `drain_ready` called at random points — yields *exactly* the batches
//! of the one-shot [`synchronize_traces`] on the time-sorted trace.
//!
//! Within-epoch report order is preserved (their averaged pose is a
//! float sum, so reordering would change the last ulp); everything else
//! is adversarially scrambled.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfid_geom::{Point3, Pose};
use rfid_stream::sync::synchronize_traces;
use rfid_stream::{EpochBatch, ReaderLocationReport, RfidReading, StreamSynchronizer, TagId};

/// One generated epoch of raw data, already time-sorted internally.
struct EpochData {
    readings: Vec<RfidReading>,
    reports: Vec<ReaderLocationReport>,
}

fn generate_epochs(rng: &mut StdRng, epoch_len: f64) -> Vec<EpochData> {
    let n_epochs = rng.gen_range(1usize..10);
    (0..n_epochs)
        .map(|e| {
            let base = e as f64 * epoch_len;
            let n_read = rng.gen_range(0usize..6);
            let n_rep = rng.gen_range(0usize..4);
            let mut readings: Vec<RfidReading> = (0..n_read)
                .map(|_| RfidReading {
                    time: base + rng.gen_range(0.0..epoch_len * 0.999),
                    tag: TagId(rng.gen_range(0u64..8)),
                })
                .collect();
            readings.sort_by(|a, b| a.time.total_cmp(&b.time));
            let mut reports: Vec<ReaderLocationReport> = (0..n_rep)
                .map(|_| ReaderLocationReport {
                    time: base + rng.gen_range(0.0..epoch_len * 0.999),
                    pose: Pose::new(
                        Point3::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0), 0.0),
                        rng.gen_range(-3.0..3.0),
                    ),
                })
                .collect();
            reports.sort_by(|a, b| a.time.total_cmp(&b.time));
            EpochData { readings, reports }
        })
        .collect()
}

fn assert_batches_equal(expect: &[EpochBatch], got: &[EpochBatch]) {
    assert_eq!(expect.len(), got.len(), "batch counts differ");
    for (a, b) in expect.iter().zip(got) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.readings, b.readings);
        match (&a.reader_report, &b.reader_report) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                // bit-level: the report sums must have been accumulated
                // in the same order
                assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
                assert_eq!(x.pos.y.to_bits(), y.pos.y.to_bits());
                assert_eq!(x.phi.to_bits(), y.phi.to_bits());
            }
            _ => panic!("report presence differs at {:?}", a.epoch),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    #[test]
    fn scrambled_incremental_push_matches_one_shot_sync(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch_len = [0.5, 1.0, 2.0][rng.gen_range(0usize..3)];
        let epochs = generate_epochs(&mut rng, epoch_len);

        // expected: the one-shot helper over the time-sorted trace
        let all_readings: Vec<RfidReading> =
            epochs.iter().flat_map(|e| e.readings.iter().copied()).collect();
        let all_reports: Vec<ReaderLocationReport> =
            epochs.iter().flat_map(|e| e.reports.iter().copied()).collect();
        let expect = synchronize_traces(&all_readings, &all_reports, epoch_len);

        // incremental: scramble within the safety envelope —
        //  * readings of an epoch in random order,
        //  * a random suffix of each epoch's items held back and pushed
        //    *after* the next epoch's readings (cross-epoch disorder),
        //  * drain_ready() after ~every third push.
        let mut sync = StreamSynchronizer::new(epoch_len);
        let mut got: Vec<EpochBatch> = Vec::new();
        let mut held_readings: Vec<RfidReading> = Vec::new();
        let mut held_reports: Vec<ReaderLocationReport> = Vec::new();
        for e in &epochs {
            let mut readings = e.readings.clone();
            // shuffle readings within the epoch
            for i in (1..readings.len()).rev() {
                let j = rng.gen_range(0usize..=i);
                readings.swap(i, j);
            }
            let keep_r = rng.gen_range(0usize..=readings.len());
            let keep_p = rng.gen_range(0usize..=e.reports.len());

            let drain = |sync: &mut StreamSynchronizer, got: &mut Vec<EpochBatch>, rng: &mut StdRng| {
                if rng.gen_range(0u32..3) == 0 {
                    got.extend(sync.drain_ready());
                }
            };

            // this epoch's kept readings arrive first...
            for r in &readings[..keep_r] {
                sync.push_reading(*r);
                drain(&mut sync, &mut got, &mut rng);
            }
            // ...then the previous epoch's held-back items (now out of
            // order behind this epoch's readings)...
            for r in held_readings.drain(..) {
                sync.push_reading(r);
                drain(&mut sync, &mut got, &mut rng);
            }
            for p in held_reports.drain(..) {
                sync.push_report(p);
                drain(&mut sync, &mut got, &mut rng);
            }
            // ...then this epoch's kept reports, in epoch-local order
            for p in &e.reports[..keep_p] {
                sync.push_report(*p);
                drain(&mut sync, &mut got, &mut rng);
            }
            held_readings.extend_from_slice(&readings[keep_r..]);
            held_reports.extend_from_slice(&e.reports[keep_p..]);
        }
        // trailing held-back items, then the end-of-trace flush
        for r in held_readings.drain(..) {
            sync.push_reading(r);
        }
        for p in held_reports.drain(..) {
            sync.push_report(p);
        }
        got.extend(sync.drain_ready());
        got.extend(sync.flush());

        assert_batches_equal(&expect, &got);
    }
}
