//! Warehouse and lab-deployment simulator.
//!
//! The paper evaluates on (a) a synthetic warehouse simulator (§V-A) and
//! (b) a physical lab rig (§V-C: two shelves of EPC Gen2 tags scanned by
//! a ThingMagic reader on an iRobot Create). This crate reproduces both
//! as controlled generative processes. Per DESIGN.md §5, the lab rig is
//! hardware we do not have, so [`lab`] *simulates* its statistically
//! relevant properties: dead-reckoning drift, a spherical antenna
//! pattern, timeout-dependent read rates, 4-inch tag spacing, and five
//! reference tags per shelf.
//!
//! Modules:
//! * [`layout`] — shelf geometry, tag placement, the uniform-over-shelves
//!   location prior.
//! * [`trajectory`] — per-epoch intended motion of the reader.
//! * [`noise`] — reader location reporting noise, including an
//!   accumulating dead-reckoning model for the lab.
//! * [`truth`] — ground-truth object locations and reader poses per
//!   epoch, for error measurement.
//! * [`generator`] — turns (layout, trajectory, sensor, noise) into the
//!   two raw streams plus ground truth.
//! * [`scenario`] — canned configurations matching each experiment of
//!   the paper.
//! * [`lab`] — the simulated §V-C deployment.

pub mod generator;
pub mod lab;
pub mod layout;
pub mod noise;
pub mod scenario;
pub mod source;
pub mod trajectory;
pub mod truth;

pub use generator::{ChurnEvent, ChurnKind, EpochSim, MovementEvent, SimTrace, TraceGenerator};
pub use layout::{ShelfSpace, WarehouseLayout};
pub use noise::{DeadReckoning, ReportNoise};
pub use source::{EpochStreamSource, TraceStream};
pub use trajectory::Trajectory;
pub use truth::GroundTruth;
