//! Shelf geometry and tag placement.
//!
//! The simulated warehouse "consists of consecutive shelves aligned on
//! the y axis, with objects evenly spaced on the shelves. Both shelves
//! and objects are affixed with RFID tags. For simplicity, we assume the
//! same height for all tags and hence ignore the z axis." (§V-A)
//!
//! The reader travels along the y axis at `x = 0` facing `+x`; shelf
//! faces sit at `x = standoff` (default 2 ft).

use rand::Rng;
use rfid_geom::{Aabb, Point3};
use rfid_model::object::LocationPrior;
use rfid_stream::TagId;

/// Tag ids at or above this value denote shelf (reference) tags;
/// object tags count up from zero.
pub const SHELF_TAG_BASE: u64 = 1_000_000;

/// One shelf: a box of storage space whose front face carries the tags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shelf {
    /// Storage region of the shelf.
    pub bbox: Aabb,
}

impl Shelf {
    /// Front-face x coordinate (where tags sit, closest to the aisle).
    pub fn face_x(&self) -> f64 {
        self.bbox.min.x
    }
}

/// The full warehouse: consecutive shelves along the y axis.
///
/// Both constructors produce shelves in ascending, non-overlapping `y`
/// order (consecutive runs in [`linear`](Self::linear), asserted in
/// [`rooms`](Self::rooms)); [`LocationPrior::pdf`] exploits that order
/// to answer point queries by binary search instead of a linear shelf
/// scan — the query sits inside the particle-respawn rejection loop,
/// which probes it up to 30 times per particle.
#[derive(Debug, Clone)]
pub struct WarehouseLayout {
    shelves: Vec<Shelf>,
    /// Distance from the aisle (x=0) to the shelf face.
    standoff: f64,
    /// Common tag height.
    tag_z: f64,
    /// Cached `Σ (max.y - min.y)`, summed in shelf order (so the float
    /// result is bit-identical to an on-the-fly summation).
    total_length: f64,
}

/// Shared constructor tail: caches the total run length.
fn finish_layout(shelves: Vec<Shelf>, standoff: f64, tag_z: f64) -> WarehouseLayout {
    let total_length = shelves.iter().map(|s| s.bbox.max.y - s.bbox.min.y).sum();
    WarehouseLayout {
        shelves,
        standoff,
        tag_z,
        total_length,
    }
}

impl WarehouseLayout {
    /// A run of `num_shelves` consecutive shelves, each `shelf_len` feet
    /// long (along y) and `depth` feet deep (along x), with faces at
    /// `x = standoff` and tags at height `tag_z`.
    pub fn linear(
        num_shelves: usize,
        shelf_len: f64,
        depth: f64,
        standoff: f64,
        tag_z: f64,
    ) -> Self {
        assert!(num_shelves > 0 && shelf_len > 0.0 && depth > 0.0);
        let shelves = (0..num_shelves)
            .map(|i| {
                let y0 = i as f64 * shelf_len;
                Shelf {
                    bbox: Aabb::new(
                        Point3::new(standoff, y0, tag_z),
                        Point3::new(standoff + depth, y0 + shelf_len, tag_z),
                    ),
                }
            })
            .collect();
        finish_layout(shelves, standoff, tag_z)
    }

    /// The paper's small-scale default: shelving long enough for the
    /// requested number of objects at the given spacing.
    pub fn for_objects(num_objects: usize, spacing: f64) -> Self {
        let total_len = (num_objects as f64 * spacing).max(4.0);
        // one shelf per ~8 feet of run
        let num_shelves = ((total_len / 8.0).ceil() as usize).max(1);
        let shelf_len = total_len / num_shelves as f64;
        Self::linear(num_shelves, shelf_len, 0.5, 2.0, 0.0)
    }

    /// A warehouse of disjoint *rooms*: one shelf per `(y_start, len)`
    /// entry, separated by shelf-free aisle stretches. Unlike
    /// [`WarehouseLayout::linear`], consecutive shelves need not touch —
    /// a reader scanning the full extent goes silent on the reading
    /// stream while it crosses a gap, which is exactly the adversarial
    /// condition the multi-room scenarios probe. Entries must be
    /// ascending and non-overlapping.
    pub fn rooms(rooms: &[(f64, f64)], depth: f64, standoff: f64, tag_z: f64) -> Self {
        assert!(!rooms.is_empty() && depth > 0.0);
        let shelves = rooms
            .iter()
            .map(|&(y0, len)| {
                assert!(len > 0.0);
                Shelf {
                    bbox: Aabb::new(
                        Point3::new(standoff, y0, tag_z),
                        Point3::new(standoff + depth, y0 + len, tag_z),
                    ),
                }
            })
            .collect::<Vec<_>>();
        for w in shelves.windows(2) {
            assert!(
                w[1].bbox.min.y >= w[0].bbox.max.y,
                "rooms must be ascending and non-overlapping"
            );
        }
        finish_layout(shelves, standoff, tag_z)
    }

    /// The shelves.
    pub fn shelves(&self) -> &[Shelf] {
        &self.shelves
    }

    /// Total run length along y (cached at construction).
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// Aisle-to-face distance.
    pub fn standoff(&self) -> f64 {
        self.standoff
    }

    /// Common tag height.
    pub fn tag_z(&self) -> f64 {
        self.tag_z
    }

    /// Evenly spaced object locations along the shelf faces: object `i`
    /// of `n` sits at the face, at `y = (i + 0.5) * total_len / n`.
    pub fn object_slots(&self, n: usize) -> Vec<Point3> {
        let len = self.total_length();
        let y0 = self.shelves[0].bbox.min.y;
        (0..n)
            .map(|i| {
                Point3::new(
                    self.standoff,
                    y0 + (i as f64 + 0.5) * len / n as f64,
                    self.tag_z,
                )
            })
            .collect()
    }

    /// `per_shelf` evenly spaced object locations on each shelf face.
    /// Unlike [`WarehouseLayout::object_slots`] this respects gaps
    /// between shelves (rooms), so no slot lands in an aisle stretch.
    pub fn object_slots_per_shelf(&self, per_shelf: usize) -> Vec<Point3> {
        let mut out = Vec::with_capacity(per_shelf * self.shelves.len());
        for s in &self.shelves {
            let y0 = s.bbox.min.y;
            let len = s.bbox.max.y - s.bbox.min.y;
            for i in 0..per_shelf {
                out.push(Point3::new(
                    s.face_x(),
                    y0 + (i as f64 + 0.5) * len / per_shelf as f64,
                    self.tag_z,
                ));
            }
        }
        out
    }

    /// `per_shelf` evenly spaced reference (shelf) tags on each shelf
    /// face, with their assigned [`TagId`]s starting at
    /// [`SHELF_TAG_BASE`].
    pub fn shelf_tags(&self, per_shelf: usize) -> Vec<(TagId, Point3)> {
        let mut out = Vec::new();
        let mut id = SHELF_TAG_BASE;
        for s in &self.shelves {
            let y0 = s.bbox.min.y;
            let len = s.bbox.max.y - s.bbox.min.y;
            for i in 0..per_shelf {
                let y = y0 + (i as f64 + 0.5) * len / per_shelf as f64;
                out.push((TagId(id), Point3::new(s.face_x(), y, self.tag_z)));
                id += 1;
            }
        }
        out
    }
}

/// The warehouse layout *is* the "uniform across all shelves" prior of
/// the object location model: sampling picks a shelf with probability
/// proportional to its face length, then a uniform position on the face.
/// A type alias keeps call sites readable.
pub type ShelfSpace = WarehouseLayout;

impl LocationPrior for WarehouseLayout {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point3 {
        let total = self.total_length();
        let mut pick = rng.gen_range(0.0..total);
        for s in &self.shelves {
            let len = s.bbox.max.y - s.bbox.min.y;
            if pick <= len {
                return Point3::new(s.face_x(), s.bbox.min.y + pick, self.tag_z);
            }
            pick -= len;
        }
        // numeric edge: fall back to the very end of the last shelf
        let s = self.shelves.last().expect("layout has shelves");
        Point3::new(s.face_x(), s.bbox.max.y, self.tag_z)
    }

    fn pdf(&self, p: &Point3) -> f64 {
        // Density along the 1-D face manifold, with a tolerance band of
        // 0.5 ft around the face in x and z so respawned particles near
        // the shelf count as legal. Equivalent to scanning every shelf
        // with `on_face_x && on_face_z && in_y`, but answered by binary
        // search: the z band is shelf-independent (gated once), and the
        // ascending non-overlapping y order means only the shelves
        // around the insertion point can pass the y band. The backward
        // walk enumerates a superset of matches (conservative 1e-6
        // cutoff vs the exact 1e-9 band) and re-checks the original
        // predicate verbatim, so accept/reject decisions — and thus
        // every downstream RNG draw — are bit-identical to the scan.
        let on_face_z = (p.z - self.tag_z).abs() <= 0.5;
        if !on_face_z {
            return 0.0;
        }
        let hi = self.shelves.partition_point(|s| s.bbox.min.y <= p.y + 1e-6);
        for s in self.shelves[..hi].iter().rev() {
            if s.bbox.max.y < p.y - 1e-6 {
                // every earlier shelf ends at or before this one starts,
                // so none can reach p.y either
                break;
            }
            let on_face_x = (p.x - s.face_x()).abs() <= 0.5;
            let in_y = p.y >= s.bbox.min.y - 1e-9 && p.y <= s.bbox.max.y + 1e-9;
            if on_face_x && in_y {
                return 1.0 / self.total_length;
            }
        }
        0.0
    }

    fn bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for s in &self.shelves {
            b = b.union(&s.bbox);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_layout_dimensions() {
        let w = WarehouseLayout::linear(3, 8.0, 0.5, 2.0, 0.0);
        assert_eq!(w.shelves().len(), 3);
        assert!((w.total_length() - 24.0).abs() < 1e-12);
        assert_eq!(w.standoff(), 2.0);
        // consecutive: shelf i starts where i-1 ends
        assert!((w.shelves()[1].bbox.min.y - 8.0).abs() < 1e-12);
    }

    #[test]
    fn object_slots_evenly_spaced_on_face() {
        let w = WarehouseLayout::linear(1, 10.0, 0.5, 2.0, 0.0);
        let slots = w.object_slots(5);
        assert_eq!(slots.len(), 5);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.x, 2.0);
            assert!((s.y - (i as f64 + 0.5) * 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shelf_tags_get_reserved_ids() {
        let w = WarehouseLayout::linear(2, 8.0, 0.5, 2.0, 0.0);
        let tags = w.shelf_tags(4);
        assert_eq!(tags.len(), 8);
        assert!(tags.iter().all(|(id, _)| id.0 >= SHELF_TAG_BASE));
        // ids are unique
        let mut ids: Vec<u64> = tags.iter().map(|(id, _)| id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn prior_samples_on_faces() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = WarehouseLayout::linear(3, 8.0, 0.5, 2.0, 0.0);
        for _ in 0..500 {
            let p = LocationPrior::sample(&w, &mut rng);
            assert!(w.pdf(&p) > 0.0, "sample off-face: {p:?}");
            assert_eq!(p.x, 2.0);
            assert!(p.y >= 0.0 && p.y <= 24.0);
        }
    }

    #[test]
    fn prior_pdf_zero_off_shelf() {
        let w = WarehouseLayout::linear(1, 8.0, 0.5, 2.0, 0.0);
        assert_eq!(w.pdf(&Point3::new(0.0, 4.0, 0.0)), 0.0); // in the aisle
        assert_eq!(w.pdf(&Point3::new(2.0, 9.0, 0.0)), 0.0); // past the end
        assert!(w.pdf(&Point3::new(2.2, 4.0, 0.0)) > 0.0); // tolerance band
    }

    #[test]
    fn for_objects_fits_spacing() {
        let w = WarehouseLayout::for_objects(100, 0.5);
        assert!((w.total_length() - 50.0).abs() < 1e-9);
        let slots = w.object_slots(100);
        assert!((slots[1].y - slots[0].y - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rooms_layout_keeps_gaps_shelf_free() {
        let w = WarehouseLayout::rooms(&[(0.0, 8.0), (20.0, 8.0)], 0.5, 2.0, 0.0);
        assert_eq!(w.shelves().len(), 2);
        // total_length counts shelf run only, not the gap
        assert!((w.total_length() - 16.0).abs() < 1e-12);
        // the prior is zero in the gap, positive in both rooms
        assert_eq!(w.pdf(&Point3::new(2.0, 14.0, 0.0)), 0.0);
        assert!(w.pdf(&Point3::new(2.0, 4.0, 0.0)) > 0.0);
        assert!(w.pdf(&Point3::new(2.0, 24.0, 0.0)) > 0.0);
        // per-shelf slots never land in the gap
        let slots = w.object_slots_per_shelf(4);
        assert_eq!(slots.len(), 8);
        assert!(slots.iter().all(|p| w.pdf(p) > 0.0));
        // shelf tags cover both rooms with distinct ids
        let tags = w.shelf_tags(2);
        assert_eq!(tags.len(), 4);
        assert!(tags.iter().any(|(_, p)| p.y > 20.0));
    }

    #[test]
    fn bounds_cover_shelves() {
        let w = WarehouseLayout::linear(2, 8.0, 0.5, 2.0, 0.0);
        let b = LocationPrior::bounds(&w);
        assert!(b.contains(&Point3::new(2.0, 0.0, 0.0)));
        assert!(b.contains(&Point3::new(2.5, 16.0, 0.0)));
    }
}
