//! The simulated lab deployment of §V-C.
//!
//! The paper's rig: "two parallel shelves (assumed to be along the y
//! axis), containing 80 EPC Gen2 Class 1 tags spaced four inches apart.
//! Each shelf has five evenly-spaced reference tags whose true positions
//! are known. ... a bi-static antenna connected to a ThingMagic Mercury5
//! RFID reader on an iRobot Create robot ... programmed to scan one row
//! of tags and turn around to scan the other, at a speed of .1 foot/sec
//! with readings performed once per second. The robot computed its
//! location using dead reckoning, with error in reported location up to
//! 1 foot away from its true location."
//!
//! We reproduce that rig as a generative process (see DESIGN.md §5):
//! the antenna is the [`SphericalSensor`] whose read rate depends on the
//! reader timeout (250/500/750 ms), and dead reckoning accumulates
//! drift along the direction of travel.

use crate::generator::{SimTrace, TraceGenerator};
use crate::layout::{WarehouseLayout, SHELF_TAG_BASE};
use crate::noise::{DeadReckoning, ReportNoise};
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Aabb, Point3, Vec3};
use rfid_model::object::MultiBoxPrior;
use rfid_model::sensor::SphericalSensor;
use rfid_stream::TagId;

/// Tags per shelf row (80 total across the two rows).
pub const TAGS_PER_ROW: usize = 40;
/// Tag spacing: four inches, in feet.
pub const TAG_SPACING: f64 = 4.0 / 12.0;
/// Reference (known-position) tags per shelf.
pub const REFERENCE_TAGS_PER_ROW: usize = 5;
/// Distance from the robot aisle to each shelf row, feet.
pub const ROW_STANDOFF: f64 = 1.5;

/// The lab world: two parallel rows of tags and the scan plan.
#[derive(Debug, Clone)]
pub struct LabDeployment {
    /// Object tags with true locations (row A then row B).
    pub objects: Vec<(TagId, Point3)>,
    /// Reference tags with known locations.
    pub reference_tags: Vec<(TagId, Point3)>,
    /// The robot's scan plan: up row A, turn, down row B.
    pub trajectory: Trajectory,
    /// A layout wrapping the two rows (serves as the location prior).
    pub layout: WarehouseLayout,
}

impl LabDeployment {
    /// Builds the standard §V-C rig.
    pub fn standard() -> Self {
        let row_len = TAGS_PER_ROW as f64 * TAG_SPACING;
        // Row A at x = +standoff, row B at x = -standoff. The layout
        // type models shelves at positive x; for the prior we use a
        // single layout spanning both rows' y-range with a widened
        // tolerance — sampling restricted per-row is handled by the
        // imagined-shelf boxes below.
        let layout = WarehouseLayout::linear(
            1,
            row_len,
            2.0 * ROW_STANDOFF + 1.0,
            -ROW_STANDOFF - 0.5,
            0.0,
        );

        let mut objects = Vec::new();
        let mut reference_tags = Vec::new();
        let mut ref_id = SHELF_TAG_BASE;
        for (row, x) in [(0usize, ROW_STANDOFF), (1usize, -ROW_STANDOFF)] {
            // reference tags: five evenly spaced along the row
            for i in 0..REFERENCE_TAGS_PER_ROW {
                let y = (i as f64 + 0.5) * row_len / REFERENCE_TAGS_PER_ROW as f64;
                reference_tags.push((TagId(ref_id), Point3::new(x, y, 0.0)));
                ref_id += 1;
            }
            // object tags: forty spaced 4 in apart
            for i in 0..TAGS_PER_ROW {
                let id = (row * TAGS_PER_ROW + i) as u64;
                let y = (i as f64 + 0.5) * TAG_SPACING;
                objects.push((TagId(id), Point3::new(x, y, 0.0)));
            }
        }

        let trajectory = Trajectory::lab_two_rows(row_len, 0.1, 10);
        Self {
            objects,
            reference_tags,
            trajectory,
            layout,
        }
    }

    /// Generates a trace at the given reader timeout (250/500/750 ms in
    /// the paper's sweep).
    pub fn generate(&self, timeout_ms: u32, seed: u64) -> SimTrace {
        let gen = TraceGenerator {
            report_noise: ReportNoise::DeadReckoning(DeadReckoning::lab_default()),
            motion_sigma: Vec3::new(0.005, 0.01, 0.0),
            ..TraceGenerator::new(SphericalSensor::for_timeout_ms(timeout_ms))
        };
        let mut rng = StdRng::seed_from_u64(seed);
        gen.generate(
            &self.layout,
            &self.trajectory,
            &self.objects,
            &self.reference_tags,
            &[],
            &mut rng,
        )
    }

    /// The "imagined shelf" sampling restriction of Fig. 6(b): a box
    /// around shelf row `row` (0 = +x row, 1 = -x row). The small shelf
    /// is 0.66 ft deep (in x) by the row length; the large one 2.6 ft
    /// deep. Both are 4 ft longer than strictly needed in y, matching
    /// the paper's `0.66x4ft` / `2.6x4ft` footprint per scan segment.
    pub fn imagined_shelf(&self, row: usize, small: bool) -> Aabb {
        let depth = if small { 0.66 } else { 2.6 };
        let row_len = TAGS_PER_ROW as f64 * TAG_SPACING;
        // The imagined shelf starts at the tag line (the shelf face the
        // tags sit on) and extends *away* from the aisle — the tags are
        // at its front edge. This is why the paper's uniform/SMURF x
        // error is "strictly half of the shelf size in x".
        if row == 0 {
            Aabb::new(
                Point3::new(ROW_STANDOFF, -0.3, 0.0),
                Point3::new(ROW_STANDOFF + depth, row_len + 0.3, 0.0),
            )
        } else {
            Aabb::new(
                Point3::new(-ROW_STANDOFF - depth, -0.3, 0.0),
                Point3::new(-ROW_STANDOFF, row_len + 0.3, 0.0),
            )
        }
    }

    /// Which row an object tag belongs to.
    pub fn row_of(&self, tag: TagId) -> usize {
        (tag.0 as usize) / TAGS_PER_ROW
    }

    /// The legal object space of the lab: two bands, one around each
    /// shelf row face. This is the location prior our system uses
    /// ("shelf information helps restrict the area for location
    /// sampling in all three algorithms").
    pub fn prior(&self) -> MultiBoxPrior {
        let row_len = TAGS_PER_ROW as f64 * TAG_SPACING;
        let band = 0.3;
        MultiBoxPrior::new(vec![
            Aabb::new(
                Point3::new(ROW_STANDOFF - band, -0.3, 0.0),
                Point3::new(ROW_STANDOFF + band, row_len + 0.3, 0.0),
            ),
            Aabb::new(
                Point3::new(-ROW_STANDOFF - band, -0.3, 0.0),
                Point3::new(-ROW_STANDOFF + band, row_len + 0.3, 0.0),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_stream::Epoch;

    #[test]
    fn standard_rig_has_80_tags_and_10_references() {
        let lab = LabDeployment::standard();
        assert_eq!(lab.objects.len(), 80);
        assert_eq!(lab.reference_tags.len(), 10);
        // spacing exactly four inches within a row
        let d = lab.objects[1].1.y - lab.objects[0].1.y;
        assert!((d - TAG_SPACING).abs() < 1e-12);
    }

    #[test]
    fn rows_sit_on_opposite_sides() {
        let lab = LabDeployment::standard();
        assert!(lab.objects[0].1.x > 0.0);
        assert!(lab.objects[TAGS_PER_ROW].1.x < 0.0);
        assert_eq!(lab.row_of(TagId(0)), 0);
        assert_eq!(lab.row_of(TagId(45)), 1);
    }

    #[test]
    fn trace_reads_both_rows() {
        let lab = LabDeployment::standard();
        let trace = lab.generate(500, 42);
        let mut rows_seen = [false, false];
        for r in &trace.readings {
            if r.tag.0 < 2 * TAGS_PER_ROW as u64 {
                rows_seen[lab.row_of(r.tag)] = true;
            }
        }
        assert!(rows_seen[0] && rows_seen[1], "rows seen: {rows_seen:?}");
    }

    #[test]
    fn dead_reckoning_error_reaches_feet_scale() {
        let lab = LabDeployment::standard();
        let trace = lab.generate(500, 43);
        let mut max_err: f64 = 0.0;
        for rep in &trace.reports {
            let e = Epoch::from_seconds(rep.time, trace.epoch_len);
            if let Some(t) = trace.truth.reader_at(e) {
                max_err = max_err.max(rep.pose.pos.dist(&t.pos));
            }
        }
        assert!(
            max_err > 0.2 && max_err <= 1.0 + 1e-9,
            "max reported-location error {max_err}"
        );
    }

    #[test]
    fn longer_timeout_reads_more() {
        let lab = LabDeployment::standard();
        let short = lab.generate(250, 44);
        let long = lab.generate(750, 44);
        assert!(long.num_readings() > short.num_readings());
    }

    #[test]
    fn imagined_shelves_contain_their_rows() {
        let lab = LabDeployment::standard();
        let ss = lab.imagined_shelf(0, true);
        let ls = lab.imagined_shelf(0, false);
        for (tag, loc) in &lab.objects {
            if lab.row_of(*tag) == 0 {
                assert!(ss.contains(loc), "SS misses {loc:?}");
                assert!(ls.contains(loc));
            } else {
                assert!(!ss.contains(loc));
            }
        }
        // LS is wider in x than SS
        assert!((ls.max.x - ls.min.x) > (ss.max.x - ss.min.x));
    }
}
