//! The trace generator: turns (layout, trajectory, sensor, noise) into
//! the two raw streams of §II-A plus ground truth.
//!
//! Per epoch, the simulated reader advances by the trajectory step plus
//! motion noise ("it travels about 0.1 foot, stops, senses its current
//! location and reads objects on the current shelf with added noise, and
//! sends both its sensed location and the RFID readings"). Every tag —
//! object or shelf — is read with the probability given by the
//! ground-truth sensor model at its true distance and angle.

use crate::layout::WarehouseLayout;
use crate::noise::{ReportNoise, Reporter};
use crate::source::TraceStream;
use crate::trajectory::Trajectory;
use crate::truth::GroundTruth;
use rand::Rng;
use rfid_geom::{standard_normal, Point3, Pose, Vec3};
use rfid_model::sensor::ReadRateModel;
use rfid_stream::sync::synchronize_traces;
use rfid_stream::{Epoch, EpochBatch, ReaderLocationReport, RfidReading, TagId};

/// A scheduled object relocation (the Fig. 5(h) experiment moves "a
/// case of objects" after a time interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovementEvent {
    /// Epoch at which the object assumes its new location.
    pub epoch: Epoch,
    pub tag: TagId,
    pub new_location: Point3,
}

/// A scheduled population change: a tag arriving in (or departing from)
/// the warehouse mid-trace. Unlike [`MovementEvent`], churn changes
/// *which* tags exist: an arrived tag starts being read and enters the
/// ground truth at its epoch; a departed tag stops being read and its
/// truth records a tombstone (so post-departure events score as
/// phantoms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Epoch at which the change takes effect.
    pub epoch: Epoch,
    pub tag: TagId,
    pub kind: ChurnKind,
}

/// What a [`ChurnEvent`] does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnKind {
    /// The tag appears at this location (relocates it if already
    /// present).
    Arrive(Point3),
    /// The tag leaves the warehouse (no-op if absent).
    Depart,
}

/// A complete generated trace: the two raw streams plus everything an
/// experiment needs to score inference output against.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// The RFID reading stream `(time, tag_id)`.
    pub readings: Vec<RfidReading>,
    /// The reader location stream `(time, pose)`.
    pub reports: Vec<ReaderLocationReport>,
    /// True reader poses and object locations.
    pub truth: GroundTruth,
    /// Shelf (reference) tags with their known locations.
    pub shelf_tags: Vec<(TagId, Point3)>,
    /// The object tags present in the world (read or not).
    pub object_tags: Vec<TagId>,
    /// Epoch length in seconds.
    pub epoch_len: f64,
}

impl SimTrace {
    /// Synchronizes the raw streams into epoch batches (what the
    /// inference engine's *batch* API consumes). The streaming pipeline
    /// does not need this materialized `Vec`; use
    /// [`SimTrace::stream`] instead.
    pub fn epoch_batches(&self) -> Vec<EpochBatch> {
        synchronize_traces(&self.readings, &self.reports, self.epoch_len)
    }

    /// The trace as an incremental [`rfid_stream::ReadingSource`]: the
    /// two raw streams merged in time order, one item at a time.
    pub fn stream(&self) -> TraceStream<'_> {
        TraceStream::new(&self.readings, &self.reports)
    }

    /// Total number of raw RFID readings in the trace.
    pub fn num_readings(&self) -> usize {
        self.readings.len()
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform `f64` in `[0, 1)` derived from a counter tuple. Read
/// Bernoullis use this instead of the shared RNG stream so that the
/// outcome for a given (trace seed, epoch, tag, attempt) is identical
/// whether or not spatial culling skipped other tags first.
#[inline]
fn hash_uniform(seed: u64, epoch: u64, tag: u64, attempt: u32) -> f64 {
    let h = mix64(
        seed ^ mix64(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ mix64(tag.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
            ^ (attempt as u64).wrapping_mul(0x1656_67b1_9e37_79f9),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Configurable generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator<S: ReadRateModel> {
    /// The ground-truth sensor shape (cone for §V-A, spherical for §V-C).
    pub sensor: S,
    /// Reader motion noise std per axis (the true `Σ_m` of the world).
    pub motion_sigma: Vec3,
    /// Location reporting noise regime.
    pub report_noise: ReportNoise,
    /// Epoch length in seconds (paper default 1.0).
    pub epoch_len: f64,
    /// Read attempts per epoch (paper's read frequency RF; default 1).
    pub reads_per_epoch: u32,
    /// When set, only tags within this y-distance of the reader are
    /// offered to the sensor model each epoch. Must be at least the
    /// sensor's maximum detection range; everything farther has zero
    /// read probability anyway. This makes 20,000-object traces
    /// generable in seconds instead of hours.
    pub culling_range: Option<f64>,
}

impl<S: ReadRateModel> TraceGenerator<S> {
    /// A generator with the paper's §V-A defaults around the given
    /// ground-truth sensor.
    pub fn new(sensor: S) -> Self {
        Self {
            sensor,
            motion_sigma: Vec3::new(0.01, 0.01, 0.0),
            epoch_len: 1.0,
            reads_per_epoch: 1,
            report_noise: ReportNoise::Gaussian {
                mu: Vec3::zero(),
                sigma: Vec3::new(0.01, 0.01, 0.0),
            },
            culling_range: None,
        }
    }

    /// Runs the generative process to completion, materializing the
    /// whole trace. Incremental alternative:
    /// [`TraceGenerator::stream`] / [`EpochSim`].
    ///
    /// * `layout` supplies shelf geometry (used only for bookkeeping
    ///   here; the tag positions passed in are authoritative),
    /// * `trajectory` the intended motion,
    /// * `objects` the object tags and their initial true locations,
    /// * `shelf_tags` the reference tags with known locations,
    /// * `movements` scheduled relocations (may be empty).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        layout: &WarehouseLayout,
        trajectory: &Trajectory,
        objects: &[(TagId, Point3)],
        shelf_tags: &[(TagId, Point3)],
        movements: &[MovementEvent],
        rng: &mut R,
    ) -> SimTrace
    where
        S: Clone,
    {
        self.generate_with_churn(layout, trajectory, objects, shelf_tags, movements, &[], rng)
    }

    /// [`TraceGenerator::generate`] with scheduled population churn:
    /// `churn` arrivals join the world (and the ground truth) at their
    /// epoch, departures leave a truth tombstone and stop being read.
    #[allow(clippy::too_many_arguments)] // flat generator knobs, mirrors `generate`
    pub fn generate_with_churn<R: Rng + ?Sized>(
        &self,
        layout: &WarehouseLayout,
        trajectory: &Trajectory,
        objects: &[(TagId, Point3)],
        shelf_tags: &[(TagId, Point3)],
        movements: &[MovementEvent],
        churn: &[ChurnEvent],
        rng: &mut R,
    ) -> SimTrace
    where
        S: Clone,
    {
        let _ = layout; // geometry is already baked into tag positions
        let mut sim = EpochSim::new(
            self.clone(),
            trajectory,
            objects,
            shelf_tags,
            movements,
            rng,
        )
        .with_churn(churn);
        let mut readings = Vec::new();
        let mut reports = Vec::new();
        while let Some(out) = sim.next_epoch() {
            reports.push(out.report);
            readings.extend_from_slice(out.readings);
        }
        debug_assert_eq!(sim.truth().num_epochs(), trajectory.num_steps() + 1);
        let epoch_len = self.epoch_len;
        // object_tags covers everything that ever existed: the initial
        // population plus churn arrivals
        let mut object_tags: Vec<TagId> = objects.iter().map(|(t, _)| *t).collect();
        for c in churn {
            if matches!(c.kind, ChurnKind::Arrive(_)) && !object_tags.contains(&c.tag) {
                object_tags.push(c.tag);
            }
        }
        SimTrace {
            readings,
            reports,
            truth: sim.into_truth(),
            shelf_tags: shelf_tags.to_vec(),
            object_tags,
            epoch_len,
        }
    }

    /// The generative process as an incremental
    /// [`rfid_stream::ReadingSource`]: raw items are produced epoch by
    /// epoch on demand — no whole-trace `Vec` is ever built. Ground
    /// truth accumulates inside the source for post-run scoring.
    pub fn stream<R: Rng>(
        &self,
        trajectory: &Trajectory,
        objects: &[(TagId, Point3)],
        shelf_tags: &[(TagId, Point3)],
        movements: &[MovementEvent],
        rng: R,
    ) -> crate::source::EpochStreamSource<S, R>
    where
        S: Clone,
    {
        crate::source::EpochStreamSource::new(EpochSim::new(
            self.clone(),
            trajectory,
            objects,
            shelf_tags,
            movements,
            rng,
        ))
    }
}

/// One generated epoch: the averaged-out report plus this epoch's raw
/// readings (borrowed from the simulator's reusable buffer).
#[derive(Debug)]
pub struct EpochOutput<'a> {
    pub epoch: Epoch,
    pub report: ReaderLocationReport,
    pub readings: &'a [RfidReading],
}

/// The generative process, one epoch at a time. Owns every input it
/// needs, so it can back a long-lived streaming source; draws random
/// numbers in exactly the order [`TraceGenerator::generate`] does, so
/// streamed and materialized traces are identical for the same seed.
#[derive(Debug)]
pub struct EpochSim<S: ReadRateModel, R: Rng> {
    gen: TraceGenerator<S>,
    steps: Vec<crate::trajectory::Step>,
    object_locs: Vec<(TagId, Point3)>,
    shelf_tags: Vec<(TagId, Point3)>,
    movements: Vec<MovementEvent>,
    next_move: usize,
    churn: Vec<ChurnEvent>,
    next_churn: usize,
    /// Sorted-by-y view of all tags for windowed read attempts;
    /// rebuilt on (rare) object movements.
    sorted_tags: Option<Vec<(f64, TagId, Point3)>>,
    reporter: Reporter,
    truth: GroundTruth,
    pose: Pose,
    read_seed: u64,
    /// Next epoch to generate; `steps.len() + 1` when exhausted.
    t: usize,
    readings_buf: Vec<RfidReading>,
    rng: R,
}

impl<S: ReadRateModel, R: Rng> EpochSim<S, R> {
    /// Sets up the simulation (this draws the read seed from `rng`).
    pub fn new(
        gen: TraceGenerator<S>,
        trajectory: &Trajectory,
        objects: &[(TagId, Point3)],
        shelf_tags: &[(TagId, Point3)],
        movements: &[MovementEvent],
        mut rng: R,
    ) -> Self {
        let mut truth = GroundTruth::new();
        let object_locs: Vec<(TagId, Point3)> = objects.to_vec();
        for (tag, loc) in &object_locs {
            truth.set_object(*tag, Epoch(0), *loc);
        }
        let reporter = Reporter::new(gen.report_noise);
        let read_seed: u64 = rng.gen();
        let pose = Pose::new(trajectory.start_pos, trajectory.start_phi);
        let mut movements: Vec<MovementEvent> = movements.to_vec();
        movements.sort_by_key(|m| m.epoch);
        let sorted_tags = gen
            .culling_range
            .map(|_| Self::build_sorted(&object_locs, shelf_tags));
        Self {
            gen,
            steps: trajectory.steps().to_vec(),
            object_locs,
            shelf_tags: shelf_tags.to_vec(),
            movements,
            next_move: 0,
            churn: Vec::new(),
            next_churn: 0,
            sorted_tags,
            reporter,
            truth,
            pose,
            read_seed,
            t: 0,
            readings_buf: Vec::new(),
            rng,
        }
    }

    /// Attaches scheduled population churn (sorted by epoch). Must be
    /// called before the first [`EpochSim::next_epoch`].
    pub fn with_churn(mut self, churn: &[ChurnEvent]) -> Self {
        debug_assert_eq!(self.t, 0, "churn must be attached before simulation starts");
        self.churn = churn.to_vec();
        self.churn.sort_by_key(|c| c.epoch);
        self
    }

    fn build_sorted(
        objs: &[(TagId, Point3)],
        shelf_tags: &[(TagId, Point3)],
    ) -> Vec<(f64, TagId, Point3)> {
        let mut v: Vec<(f64, TagId, Point3)> = objs
            .iter()
            .chain(shelf_tags.iter())
            .map(|(t, p)| (p.y, *t, *p))
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Ground truth accumulated so far (complete once the simulation is
    /// exhausted).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Consumes the simulator, returning the accumulated ground truth.
    pub fn into_truth(self) -> GroundTruth {
        self.truth
    }

    /// The epoch length of the generated streams, in seconds.
    pub fn epoch_len(&self) -> f64 {
        self.gen.epoch_len
    }

    /// Generates the next epoch, or `None` when the trajectory is
    /// exhausted.
    pub fn next_epoch(&mut self) -> Option<EpochOutput<'_>> {
        if self.t > self.steps.len() {
            return None;
        }
        let epoch = Epoch(self.t as u64);
        // 1. advance the reader (epoch 0 is the start pose)
        if let Some(s) = (self.t > 0).then(|| self.steps[self.t - 1]) {
            let noise = Vec3::new(
                self.gen.motion_sigma.x * standard_normal(&mut self.rng),
                self.gen.motion_sigma.y * standard_normal(&mut self.rng),
                self.gen.motion_sigma.z * standard_normal(&mut self.rng),
            );
            self.pose = Pose::new(self.pose.pos + s.delta + noise, self.pose.phi + s.dphi);
        }
        self.t += 1;
        let pose = self.pose;
        self.truth.push_reader(epoch, pose);

        // 2. apply scheduled object movements effective this epoch
        let mut moved = false;
        while self.next_move < self.movements.len() && self.movements[self.next_move].epoch <= epoch
        {
            let m = self.movements[self.next_move];
            if let Some(slot) = self.object_locs.iter_mut().find(|(tag, _)| *tag == m.tag) {
                slot.1 = m.new_location;
                self.truth.set_object(m.tag, epoch, m.new_location);
                moved = true;
            }
            self.next_move += 1;
        }
        // 2b. apply scheduled population churn effective this epoch
        while self.next_churn < self.churn.len() && self.churn[self.next_churn].epoch <= epoch {
            let c = self.churn[self.next_churn];
            match c.kind {
                ChurnKind::Arrive(loc) => {
                    match self.object_locs.iter_mut().find(|(tag, _)| *tag == c.tag) {
                        Some(slot) => slot.1 = loc,
                        None => self.object_locs.push((c.tag, loc)),
                    }
                    self.truth.set_object(c.tag, epoch, loc);
                    moved = true;
                }
                ChurnKind::Depart => {
                    let before = self.object_locs.len();
                    self.object_locs.retain(|(tag, _)| *tag != c.tag);
                    if self.object_locs.len() != before {
                        self.truth.remove_object(c.tag, epoch);
                        moved = true;
                    }
                }
            }
            self.next_churn += 1;
        }
        if moved {
            if let Some(s) = self.sorted_tags.as_mut() {
                *s = Self::build_sorted(&self.object_locs, &self.shelf_tags);
            }
        }

        // 3. report the sensed reader location
        let reported = self.reporter.report(&pose, &mut self.rng);
        let t_sec = epoch.0 as f64 * self.gen.epoch_len;
        let report = ReaderLocationReport {
            time: t_sec,
            pose: reported,
        };

        // 4. read tags (objects and shelves alike)
        self.readings_buf.clear();
        let sensor = &self.gen.sensor;
        let read_seed = self.read_seed;
        let read_time = t_sec + 0.5 * self.gen.epoch_len;
        let readings = &mut self.readings_buf;
        let attempt = |tag: TagId, loc: &Point3, k: u32, readings: &mut Vec<RfidReading>| {
            let p = sensor.p_read(&pose, loc);
            if p > 0.0 && hash_uniform(read_seed, epoch.0, tag.0, k) < p {
                readings.push(RfidReading {
                    time: read_time,
                    tag,
                });
            }
        };
        for k in 0..self.gen.reads_per_epoch {
            match (&self.sorted_tags, self.gen.culling_range) {
                (Some(sorted), Some(range)) => {
                    // |y_tag - y_reader| > range implies distance >
                    // range, so the skipped tags are unreadable.
                    let lo = sorted.partition_point(|(y, _, _)| *y < pose.pos.y - range);
                    for (_, tag, loc) in sorted[lo..]
                        .iter()
                        .take_while(|(y, _, _)| *y <= pose.pos.y + range)
                    {
                        attempt(*tag, loc, k, readings);
                    }
                }
                _ => {
                    for (tag, loc) in self.object_locs.iter().chain(self.shelf_tags.iter()) {
                        attempt(*tag, loc, k, readings);
                    }
                }
            }
        }

        Some(EpochOutput {
            epoch,
            report,
            readings: &self.readings_buf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_model::sensor::ConeSensor;

    type Placements = Vec<(TagId, Point3)>;

    fn setup() -> (WarehouseLayout, Trajectory, Placements, Placements) {
        let layout = WarehouseLayout::linear(1, 10.0, 0.5, 2.0, 0.0);
        let traj = Trajectory::linear_scan(10.0, 0.1);
        let objects: Vec<(TagId, Point3)> = layout
            .object_slots(10)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (TagId(i as u64), p))
            .collect();
        let shelves = layout.shelf_tags(4);
        (layout, traj, objects, shelves)
    }

    #[test]
    fn perfect_sensor_reads_every_object_during_scan() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator {
            report_noise: ReportNoise::None,
            motion_sigma: Vec3::zero(),
            ..TraceGenerator::new(ConeSensor::paper_default())
        };
        let mut rng = StdRng::seed_from_u64(1);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        // every object tag appears at least once: the cone passes over all
        let mut seen: Vec<u64> = trace.readings.iter().map(|r| r.tag.0).collect();
        seen.sort_unstable();
        seen.dedup();
        for (tag, _) in &objects {
            assert!(seen.contains(&tag.0), "object {tag} never read");
        }
    }

    #[test]
    fn zero_read_rate_produces_no_readings() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::with_rr_major(0.0));
        let mut rng = StdRng::seed_from_u64(2);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        assert_eq!(trace.num_readings(), 0);
        // but reports still flow
        assert_eq!(trace.reports.len(), traj.num_steps() + 1);
    }

    #[test]
    fn truth_records_every_epoch() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::paper_default());
        let mut rng = StdRng::seed_from_u64(3);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        assert_eq!(trace.truth.num_epochs(), traj.num_steps() + 1);
        assert_eq!(trace.truth.num_objects(), 10);
    }

    #[test]
    fn movements_change_truth_and_readings() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator {
            report_noise: ReportNoise::None,
            ..TraceGenerator::new(ConeSensor::paper_default())
        };
        let mut rng = StdRng::seed_from_u64(4);
        let moved_to = Point3::new(2.0, 9.5, 0.0);
        let movements = [MovementEvent {
            epoch: Epoch(5),
            tag: TagId(0),
            new_location: moved_to,
        }];
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &movements, &mut rng);
        assert_eq!(trace.truth.object_at(TagId(0), Epoch(4)).unwrap().y, 0.5);
        assert_eq!(trace.truth.object_at(TagId(0), Epoch(5)).unwrap(), moved_to);
    }

    #[test]
    fn epoch_batches_synchronize() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::paper_default());
        let mut rng = StdRng::seed_from_u64(5);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        let batches = trace.epoch_batches();
        assert!(!batches.is_empty());
        // every batch carries a reader report (reports are per-epoch)
        assert!(batches.iter().all(|b| b.reader_report.is_some()));
        // batches are in epoch order
        for w in batches.windows(2) {
            assert!(w[0].epoch < w[1].epoch);
        }
    }

    #[test]
    fn lower_rr_reads_less() {
        let (layout, traj, objects, shelves) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let full = TraceGenerator::new(ConeSensor::paper_default()).generate(
            &layout,
            &traj,
            &objects,
            &shelves,
            &[],
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(6);
        let half = TraceGenerator::new(ConeSensor::with_rr_major(0.5)).generate(
            &layout,
            &traj,
            &objects,
            &shelves,
            &[],
            &mut rng,
        );
        assert!(half.num_readings() < full.num_readings());
    }

    #[test]
    fn culling_does_not_change_the_trace() {
        // With the same seed, windowed generation must produce the
        // identical reading stream as the exhaustive scan: skipped tags
        // had zero read probability, and read Bernoullis are
        // counter-hashed per (epoch, tag), not drawn from a shared
        // stream, so iteration order cannot matter.
        let (layout, traj, objects, shelves) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let full = TraceGenerator::new(ConeSensor::paper_default()).generate(
            &layout,
            &traj,
            &objects,
            &shelves,
            &[],
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let culled = TraceGenerator {
            culling_range: Some(5.0),
            ..TraceGenerator::new(ConeSensor::paper_default())
        }
        .generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        // same multiset of readings (ordering within an epoch may differ)
        let norm = |t: &SimTrace| {
            let mut v: Vec<(u64, u64)> = t
                .readings
                .iter()
                .map(|r| ((r.time * 1000.0) as u64, r.tag.0))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&full), norm(&culled));
    }

    #[test]
    fn churn_controls_readability_and_truth() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator {
            report_noise: ReportNoise::None,
            ..TraceGenerator::new(ConeSensor::paper_default())
        };
        let mut rng = StdRng::seed_from_u64(8);
        // tag 0 departs early; tag 50 arrives mid-scan near the far end
        let churn = [
            ChurnEvent {
                epoch: Epoch(3),
                tag: TagId(0),
                kind: ChurnKind::Depart,
            },
            ChurnEvent {
                epoch: Epoch(40),
                tag: TagId(50),
                kind: ChurnKind::Arrive(Point3::new(2.0, 9.0, 0.0)),
            },
        ];
        let trace =
            gen.generate_with_churn(&layout, &traj, &objects, &shelves, &[], &churn, &mut rng);
        // departed tag: truth absent after the tombstone, no late reads
        assert!(trace.truth.object_at(TagId(0), Epoch(2)).is_some());
        assert!(trace.truth.object_at(TagId(0), Epoch(3)).is_none());
        let epoch_of = |t: f64| Epoch::from_seconds(t, trace.epoch_len);
        assert!(trace
            .readings
            .iter()
            .all(|r| r.tag != TagId(0) || epoch_of(r.time) < Epoch(3)));
        // arrived tag: in truth from epoch 40, read only afterwards
        assert!(trace.truth.object_at(TagId(50), Epoch(39)).is_none());
        assert_eq!(trace.truth.object_at(TagId(50), Epoch(40)).unwrap().y, 9.0);
        let arrived_reads = trace.readings.iter().filter(|r| r.tag == TagId(50)).count();
        assert!(arrived_reads > 0, "arrival was never read");
        assert!(trace
            .readings
            .iter()
            .all(|r| r.tag != TagId(50) || epoch_of(r.time) >= Epoch(40)));
        // the arrival joins object_tags
        assert!(trace.object_tags.contains(&TagId(50)));
        assert_eq!(trace.object_tags.len(), 11);
    }

    #[test]
    fn churn_with_culling_matches_unculled() {
        let (layout, traj, objects, shelves) = setup();
        let churn = [
            ChurnEvent {
                epoch: Epoch(10),
                tag: TagId(2),
                kind: ChurnKind::Depart,
            },
            ChurnEvent {
                epoch: Epoch(30),
                tag: TagId(60),
                kind: ChurnKind::Arrive(Point3::new(2.0, 7.5, 0.0)),
            },
        ];
        let mut rng = StdRng::seed_from_u64(10);
        let full = TraceGenerator::new(ConeSensor::paper_default()).generate_with_churn(
            &layout,
            &traj,
            &objects,
            &shelves,
            &[],
            &churn,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(10);
        let culled = TraceGenerator {
            culling_range: Some(5.0),
            ..TraceGenerator::new(ConeSensor::paper_default())
        }
        .generate_with_churn(&layout, &traj, &objects, &shelves, &[], &churn, &mut rng);
        let norm = |t: &SimTrace| {
            let mut v: Vec<(u64, u64)> = t
                .readings
                .iter()
                .map(|r| ((r.time * 1000.0) as u64, r.tag.0))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(norm(&full), norm(&culled));
    }

    #[test]
    fn reads_per_epoch_multiplies_attempts() {
        let (layout, traj, objects, shelves) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let gen = TraceGenerator {
            reads_per_epoch: 4,
            ..TraceGenerator::new(ConeSensor::with_rr_major(0.3))
        };
        let multi = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let single = TraceGenerator::new(ConeSensor::with_rr_major(0.3)).generate(
            &layout,
            &traj,
            &objects,
            &shelves,
            &[],
            &mut rng,
        );
        assert!(multi.num_readings() > single.num_readings());
    }
}
