//! Canned scenarios matching each experiment of the paper's §V.
//!
//! Every figure's workload is a function here, so the bench harness and
//! the tests agree on exactly what was generated. All scenarios use the
//! §V-A defaults unless the experiment sweeps them: cone sensor with
//! RR_major = 100%, read frequency once per epoch, motion noise σ = .01,
//! sensing noise σ = .01, reader speed 0.1 ft per epoch.

use crate::generator::{MovementEvent, SimTrace, TraceGenerator};
use crate::layout::WarehouseLayout;
use crate::noise::ReportNoise;
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Point3, Vec3};
use rfid_model::sensor::ConeSensor;
use rfid_stream::{Epoch, TagId};

/// A scenario bundles the generated trace with the layout that produced
/// it (inference needs the layout as its location prior).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub layout: WarehouseLayout,
    pub trace: SimTrace,
}

/// Default object spacing on the shelf face, feet.
pub const OBJECT_SPACING: f64 = 0.5;

fn objects_on(layout: &WarehouseLayout, n: usize) -> Vec<(TagId, Point3)> {
    layout
        .object_slots(n)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (TagId(i as u64), p))
        .collect()
}

/// The basic small trace used by the calibration experiments
/// (Fig. 5(e)): `num_objects` object tags and `num_shelf_tags` shelf
/// tags on a single scan.
pub fn small_trace(num_objects: usize, num_shelf_tags: usize, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(num_objects.max(8), OBJECT_SPACING);
    let objects = objects_on(&layout, num_objects);
    let shelf_tags = layout.shelf_tags(num_shelf_tags.max(1));
    let shelf_tags: Vec<_> = shelf_tags.into_iter().take(num_shelf_tags).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(f): vary the read rate in the major detection range
/// (100% down to 50%), 16 object tags + 4 shelf tags.
pub fn read_rate_trace(rr_major: f64, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(16, OBJECT_SPACING);
    let objects = objects_on(&layout, 16);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator::new(ConeSensor::with_rr_major(rr_major));
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(g): systematic reader-location error `mu_y` with random noise
/// `sigma_y`, 16 object tags + 4 shelf tags.
pub fn location_noise_trace(mu_y: f64, sigma_y: f64, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(16, OBJECT_SPACING);
    let objects = objects_on(&layout, 16);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator {
        report_noise: ReportNoise::Gaussian {
            mu: Vec3::new(0.0, mu_y, 0.0),
            sigma: Vec3::new(0.01, sigma_y, 0.0),
        },
        ..TraceGenerator::new(ConeSensor::paper_default())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// The tag moved by [`moving_object_trace`].
pub const MOVED_TAG: TagId = TagId(2);

/// Fig. 5(h): one object ([`MOVED_TAG`]) moves `distance` feet along
/// the shelf after `move_after` epochs; the scan is long enough to
/// observe both before and after (two rounds).
pub fn moving_object_trace(distance: f64, move_after: u64, seed: u64) -> Scenario {
    // a long enough run that the object is re-scanned after it moves
    let num_objects = 16;
    let layout = WarehouseLayout::for_objects(num_objects, 2.0);
    let objects = objects_on(&layout, num_objects);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::rounds_scan(layout.total_length(), 0.1, 2);
    // move object 2 `distance` feet down the shelf (wrapping at the end)
    let mover = objects[2];
    let total = layout.total_length();
    let new_y = (mover.1.y + distance) % total;
    let movements = [MovementEvent {
        epoch: Epoch(move_after),
        tag: mover.0,
        new_location: Point3::new(mover.1.x, new_y, mover.1.z),
    }];
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &movements, &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(i)/(j): the scalability workload — `num_objects` from 10 to
/// 20,000, two rounds of scan of a large warehouse. The reader moves
/// faster (0.5 ft/epoch) than the small traces so that the 20,000-object
/// run stays tractable; tags are spaced 0.5 ft apart, and one shelf tag
/// is placed every 20 ft.
pub fn scalability_trace(num_objects: usize, seed: u64) -> Scenario {
    endurance_trace(num_objects, 2, seed)
}

/// The scalability workload with a configurable number of scan rounds:
/// same warehouse, same reader speed, `rounds`× the epochs (and
/// readings). Used to demonstrate that the streaming pipeline's buffer
/// high-water marks are flat in trace *length* — a 10× longer run must
/// not buffer more.
pub fn endurance_trace(num_objects: usize, rounds: usize, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(num_objects, OBJECT_SPACING);
    let objects = objects_on(&layout, num_objects);
    let per_shelf = 2usize;
    let shelf_tags = layout.shelf_tags(per_shelf);
    let traj = Trajectory::rounds_scan(layout.total_length(), 0.5, rounds);
    let gen = TraceGenerator {
        culling_range: Some(6.0),
        ..TraceGenerator::new(ConeSensor::paper_default())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// The calibration trace of §V-B: readings of `num_tags` tags (up to
/// `num_known` of which will be treated as shelf tags with known
/// locations during learning), single pass.
pub fn calibration_trace(num_tags: usize, seed: u64) -> Scenario {
    small_trace(num_tags, 0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_trace_reads_objects_and_shelves() {
        let s = small_trace(10, 4, 1);
        assert_eq!(s.trace.object_tags.len(), 10);
        assert_eq!(s.trace.shelf_tags.len(), 4);
        assert!(s.trace.num_readings() > 50);
    }

    #[test]
    fn read_rate_scales_reading_count() {
        let full = read_rate_trace(1.0, 2);
        let half = read_rate_trace(0.5, 2);
        assert!(half.trace.num_readings() < full.trace.num_readings());
    }

    #[test]
    fn location_noise_biases_reports() {
        let s = location_noise_trace(1.0, 0.01, 3);
        // mean report error along y should be ~1.0
        let mut err = 0.0;
        let mut n = 0;
        for rep in &s.trace.reports {
            let e = Epoch::from_seconds(rep.time, s.trace.epoch_len);
            if let Some(truth) = s.trace.truth.reader_at(e) {
                err += rep.pose.pos.y - truth.pos.y;
                n += 1;
            }
        }
        let mean = err / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean y bias {mean}");
    }

    #[test]
    fn moving_object_trace_moves_exactly_one() {
        let s = moving_object_trace(6.0, 100, 4);
        let mut moved = 0;
        for tag in s.trace.truth.object_tags().collect::<Vec<_>>() {
            let a = s.trace.truth.object_at(tag, Epoch(0)).unwrap();
            let b = s.trace.truth.object_at(tag, Epoch(10_000)).unwrap();
            if a.dist(&b) > 1e-9 {
                moved += 1;
                assert!((a.dist(&b) - 6.0).abs() < 1e-9, "moved {}", a.dist(&b));
            }
        }
        assert_eq!(moved, 1);
    }

    #[test]
    fn endurance_trace_scales_epochs_with_rounds() {
        let short = endurance_trace(20, 2, 6);
        let long = endurance_trace(20, 20, 6);
        let se = short.trace.truth.num_epochs();
        let le = long.trace.truth.num_epochs();
        assert!(
            le > 9 * se && le < 11 * se,
            "10x rounds should give ~10x epochs: {se} vs {le}"
        );
        assert!(long.trace.num_readings() > 5 * short.trace.num_readings());
    }

    #[test]
    fn scalability_trace_large_counts() {
        let s = scalability_trace(1000, 5);
        assert_eq!(s.trace.object_tags.len(), 1000);
        assert!(s.trace.num_readings() > 1000);
        // two rounds: the trajectory ends back near the start
        let last = s
            .trace
            .truth
            .reader_at(Epoch((s.trace.truth.num_epochs() - 1) as u64))
            .unwrap();
        assert!(last.pos.y.abs() < 3.0, "end y {}", last.pos.y);
    }
}
