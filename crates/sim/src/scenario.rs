//! Canned scenarios matching each experiment of the paper's §V.
//!
//! Every figure's workload is a function here, so the bench harness and
//! the tests agree on exactly what was generated. All scenarios use the
//! §V-A defaults unless the experiment sweeps them: cone sensor with
//! RR_major = 100%, read frequency once per epoch, motion noise σ = .01,
//! sensing noise σ = .01, reader speed 0.1 ft per epoch.

use crate::generator::{mix64, ChurnEvent, ChurnKind, MovementEvent, SimTrace, TraceGenerator};
use crate::layout::WarehouseLayout;
use crate::noise::ReportNoise;
use crate::trajectory::Trajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Point3, Vec3};
use rfid_model::sensor::ConeSensor;
use rfid_stream::{Epoch, TagId};

/// A scenario bundles the generated trace with the layout that produced
/// it (inference needs the layout as its location prior).
#[derive(Debug, Clone)]
pub struct Scenario {
    pub layout: WarehouseLayout,
    pub trace: SimTrace,
}

/// Default object spacing on the shelf face, feet.
pub const OBJECT_SPACING: f64 = 0.5;

fn objects_on(layout: &WarehouseLayout, n: usize) -> Vec<(TagId, Point3)> {
    layout
        .object_slots(n)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (TagId(i as u64), p))
        .collect()
}

/// The basic small trace used by the calibration experiments
/// (Fig. 5(e)): `num_objects` object tags and `num_shelf_tags` shelf
/// tags on a single scan.
pub fn small_trace(num_objects: usize, num_shelf_tags: usize, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(num_objects.max(8), OBJECT_SPACING);
    let objects = objects_on(&layout, num_objects);
    let shelf_tags = layout.shelf_tags(num_shelf_tags.max(1));
    let shelf_tags: Vec<_> = shelf_tags.into_iter().take(num_shelf_tags).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(f): vary the read rate in the major detection range
/// (100% down to 50%), 16 object tags + 4 shelf tags.
pub fn read_rate_trace(rr_major: f64, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(16, OBJECT_SPACING);
    let objects = objects_on(&layout, 16);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator::new(ConeSensor::with_rr_major(rr_major));
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(g): systematic reader-location error `mu_y` with random noise
/// `sigma_y`, 16 object tags + 4 shelf tags.
pub fn location_noise_trace(mu_y: f64, sigma_y: f64, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(16, OBJECT_SPACING);
    let objects = objects_on(&layout, 16);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator {
        report_noise: ReportNoise::Gaussian {
            mu: Vec3::new(0.0, mu_y, 0.0),
            sigma: Vec3::new(0.01, sigma_y, 0.0),
        },
        ..TraceGenerator::new(ConeSensor::paper_default())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// The tag moved by [`moving_object_trace`].
pub const MOVED_TAG: TagId = TagId(2);

/// Fig. 5(h): one object ([`MOVED_TAG`]) moves `distance` feet along
/// the shelf after `move_after` epochs; the scan is long enough to
/// observe both before and after (two rounds).
pub fn moving_object_trace(distance: f64, move_after: u64, seed: u64) -> Scenario {
    // a long enough run that the object is re-scanned after it moves
    let num_objects = 16;
    let layout = WarehouseLayout::for_objects(num_objects, 2.0);
    let objects = objects_on(&layout, num_objects);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::rounds_scan(layout.total_length(), 0.1, 2);
    // move object 2 `distance` feet down the shelf (wrapping at the end)
    let mover = objects[2];
    let total = layout.total_length();
    let new_y = (mover.1.y + distance) % total;
    let movements = [MovementEvent {
        epoch: Epoch(move_after),
        tag: mover.0,
        new_location: Point3::new(mover.1.x, new_y, mover.1.z),
    }];
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &movements, &mut rng);
    Scenario { layout, trace }
}

/// Fig. 5(i)/(j): the scalability workload — `num_objects` from 10 to
/// 20,000, two rounds of scan of a large warehouse. The reader moves
/// faster (0.5 ft/epoch) than the small traces so that the 20,000-object
/// run stays tractable; tags are spaced 0.5 ft apart, and one shelf tag
/// is placed every 20 ft.
pub fn scalability_trace(num_objects: usize, seed: u64) -> Scenario {
    endurance_trace(num_objects, 2, seed)
}

/// The scalability workload with a configurable number of scan rounds:
/// same warehouse, same reader speed, `rounds`× the epochs (and
/// readings). Used to demonstrate that the streaming pipeline's buffer
/// high-water marks are flat in trace *length* — a 10× longer run must
/// not buffer more.
pub fn endurance_trace(num_objects: usize, rounds: usize, seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(num_objects, OBJECT_SPACING);
    let objects = objects_on(&layout, num_objects);
    let per_shelf = 2usize;
    let shelf_tags = layout.shelf_tags(per_shelf);
    let traj = Trajectory::rounds_scan(layout.total_length(), 0.5, rounds);
    let gen = TraceGenerator {
        culling_range: Some(6.0),
        ..TraceGenerator::new(ConeSensor::paper_default())
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// The calibration trace of §V-B: readings of `num_tags` tags (up to
/// `num_known` of which will be treated as shelf tags with known
/// locations during learning), single pass.
pub fn calibration_trace(num_tags: usize, seed: u64) -> Scenario {
    small_trace(num_tags, 0, seed)
}

// ---------------------------------------------------------------------
// Adversarial scenario library
// ---------------------------------------------------------------------
//
// The paper's §V workloads above are near-benign: a steady reader, a
// fixed population, clean interleavings. The generators below stress
// the regimes the accuracy matrix (`experiments -- accuracy`) scores
// all three systems on — every one carries exact ground truth, so
// event precision/recall/F1 and change-detection delay are measurable,
// not eyeballed.

/// Deterministic keep/drop draw for reading-thinning scenarios, keyed
/// by `(salt, epoch, tag)` so thinning is independent of generation
/// order and reproducible per seed.
fn thin_uniform(salt: u64, epoch: u64, tag: u64) -> f64 {
    let h = mix64(
        salt ^ mix64(epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ mix64(tag.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)),
    );
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Tag churn with arrivals and departures over a two-round scan:
/// 12 of 16 objects are present from the start, 4 arrive just as the
/// second round begins (so only round two can see them), and 2 of the
/// originals depart after their round-one events are out (so a system
/// that keeps reporting them emits phantoms). Ground truth carries the
/// arrival epochs and departure tombstones exactly.
pub fn tag_churn_trace(seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(16, OBJECT_SPACING);
    let slots = layout.object_slots(16);
    let initial: Vec<(TagId, Point3)> = slots
        .iter()
        .take(12)
        .enumerate()
        .map(|(i, p)| (TagId(i as u64), *p))
        .collect();
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let total = layout.total_length();
    let round = (total / 0.1).ceil() as u64; // epochs per scan round
    let mut churn: Vec<ChurnEvent> = (12..16)
        .map(|i| ChurnEvent {
            epoch: Epoch(round + 2),
            tag: TagId(i as u64),
            kind: ChurnKind::Arrive(slots[i]),
        })
        .collect();
    for tag in [1u64, 5] {
        churn.push(ChurnEvent {
            epoch: Epoch(round + 15),
            tag: TagId(tag),
            kind: ChurnKind::Depart,
        });
    }
    let traj = Trajectory::rounds_scan(total, 0.1, 2);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace =
        gen.generate_with_churn(&layout, &traj, &initial, &shelf_tags, &[], &churn, &mut rng);
    Scenario { layout, trace }
}

/// Reader dropout windows: the RFID reading stream vanishes entirely
/// during two scheduled windows (antenna fault / RF interference)
/// while location reports keep flowing. Objects scanned only inside a
/// window are never read at all.
pub fn reader_dropout_trace(seed: u64) -> Scenario {
    let mut sc = read_rate_trace(1.0, seed);
    let windows = [(20u64, 32u64), (48, 60)];
    let epoch_len = sc.trace.epoch_len;
    sc.trace.readings.retain(|r| {
        let e = Epoch::from_seconds(r.time, epoch_len).0;
        !windows.iter().any(|&(lo, hi)| e >= lo && e < hi)
    });
    sc
}

/// Bursty read-rate collapse: alternating 15-epoch windows of the full
/// read rate and a collapsed (~20%) effective rate — congestion that
/// comes and goes. The inference model still assumes the full-rate
/// sensor, so its negative-information reasoning is miscalibrated in
/// the collapsed windows.
pub fn bursty_read_rate_trace(seed: u64) -> Scenario {
    let mut sc = read_rate_trace(1.0, seed);
    let epoch_len = sc.trace.epoch_len;
    let salt = mix64(seed ^ 0xb0b5_7e11);
    sc.trace.readings.retain(|r| {
        let e = Epoch::from_seconds(r.time, epoch_len).0;
        let collapsed = (e / 15) % 2 == 1;
        !collapsed || thin_uniform(salt, e, r.tag.0) < 0.2
    });
    sc
}

/// Dense-shelf confusion: 32 objects packed at 0.2 ft spacing — well
/// inside the sensor's lateral uncertainty, so single readings cannot
/// disambiguate neighbors and only accumulated evidence separates
/// them.
pub fn dense_shelf_trace(seed: u64) -> Scenario {
    let layout = WarehouseLayout::for_objects(32, 0.2);
    let objects = objects_on(&layout, 32);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let traj = Trajectory::linear_scan(layout.total_length(), 0.1);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Conveyor-style continuous motion: every object drifts 0.4 ft along
/// the shelf every 20 epochs (wrapping at the end of the run) for the
/// whole two-round scan — location estimates go stale the moment they
/// are formed. Ground truth records every step of the drift.
pub fn conveyor_trace(seed: u64) -> Scenario {
    let num_objects = 12;
    let layout = WarehouseLayout::for_objects(num_objects, 1.0);
    let objects = objects_on(&layout, num_objects);
    let shelf_tags: Vec<_> = layout.shelf_tags(4).into_iter().take(4).collect();
    let total = layout.total_length();
    let traj = Trajectory::rounds_scan(total, 0.1, 2);
    let epochs = traj.num_steps() as u64;
    let mut movements = Vec::new();
    let step = 0.4;
    for (k, e) in (20..epochs).step_by(20).enumerate() {
        for (tag, p) in &objects {
            let new_y = (p.y + step * (k as f64 + 1.0)) % total;
            movements.push(MovementEvent {
                epoch: Epoch(e),
                tag: *tag,
                new_location: Point3::new(p.x, new_y, p.z),
            });
        }
    }
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &movements, &mut rng);
    Scenario { layout, trace }
}

/// Multi-room warehouse with cross-room handoff: two 8 ft rooms
/// separated by a 12 ft shelf-free aisle. The reader scans room one,
/// crosses the gap (120 epochs of reports with no readings — the
/// reading watermark stalls and only the synchronizer's skew bound
/// keeps the buffer flat), then picks up room two's population.
pub fn multi_room_trace(seed: u64) -> Scenario {
    let layout = WarehouseLayout::rooms(&[(0.0, 8.0), (20.0, 8.0)], 0.5, 2.0, 0.0);
    let objects: Vec<(TagId, Point3)> = layout
        .object_slots_per_shelf(8)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (TagId(i as u64), p))
        .collect();
    let shelf_tags = layout.shelf_tags(2);
    let traj = Trajectory::linear_scan(28.0, 0.1);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    Scenario { layout, trace }
}

/// Cold start mid-stream: inference joins a scan already in progress —
/// the first 30 epochs of *both* raw streams are never delivered, so
/// the engine has no warm-up, no early shelf-tag sightings, and some
/// objects were passed before it ever came up.
pub fn cold_start_trace(seed: u64) -> Scenario {
    let mut sc = read_rate_trace(1.0, seed);
    let cut = 30.0 * sc.trace.epoch_len;
    sc.trace.readings.retain(|r| r.time >= cut);
    sc.trace.reports.retain(|r| r.time >= cut);
    sc
}

/// Skewed/silent stream interleavings: two tiny rooms at the ends of a
/// 42 ft run (a ~300-epoch reading silence in between), with every
/// location report delayed by 0.6 s — inside its epoch, but now
/// *behind* the readings it used to precede, so the synchronizer sees
/// the adversarial interleaving rather than the generation order.
pub fn silent_stream_trace(seed: u64) -> Scenario {
    let layout = WarehouseLayout::rooms(&[(0.0, 6.0), (36.0, 6.0)], 0.5, 2.0, 0.0);
    let objects: Vec<(TagId, Point3)> = layout
        .object_slots_per_shelf(6)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (TagId(i as u64), p))
        .collect();
    let shelf_tags = layout.shelf_tags(2);
    let traj = Trajectory::linear_scan(42.0, 0.1);
    let gen = TraceGenerator::new(ConeSensor::paper_default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = gen.generate(&layout, &traj, &objects, &shelf_tags, &[], &mut rng);
    for rep in &mut trace.reports {
        rep.time += 0.6 * trace.epoch_len;
    }
    Scenario { layout, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_trace_reads_objects_and_shelves() {
        let s = small_trace(10, 4, 1);
        assert_eq!(s.trace.object_tags.len(), 10);
        assert_eq!(s.trace.shelf_tags.len(), 4);
        assert!(s.trace.num_readings() > 50);
    }

    #[test]
    fn read_rate_scales_reading_count() {
        let full = read_rate_trace(1.0, 2);
        let half = read_rate_trace(0.5, 2);
        assert!(half.trace.num_readings() < full.trace.num_readings());
    }

    #[test]
    fn location_noise_biases_reports() {
        let s = location_noise_trace(1.0, 0.01, 3);
        // mean report error along y should be ~1.0
        let mut err = 0.0;
        let mut n = 0;
        for rep in &s.trace.reports {
            let e = Epoch::from_seconds(rep.time, s.trace.epoch_len);
            if let Some(truth) = s.trace.truth.reader_at(e) {
                err += rep.pose.pos.y - truth.pos.y;
                n += 1;
            }
        }
        let mean = err / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean y bias {mean}");
    }

    #[test]
    fn moving_object_trace_moves_exactly_one() {
        let s = moving_object_trace(6.0, 100, 4);
        let mut moved = 0;
        for tag in s.trace.truth.object_tags().collect::<Vec<_>>() {
            let a = s.trace.truth.object_at(tag, Epoch(0)).unwrap();
            let b = s.trace.truth.object_at(tag, Epoch(10_000)).unwrap();
            if a.dist(&b) > 1e-9 {
                moved += 1;
                assert!((a.dist(&b) - 6.0).abs() < 1e-9, "moved {}", a.dist(&b));
            }
        }
        assert_eq!(moved, 1);
    }

    #[test]
    fn endurance_trace_scales_epochs_with_rounds() {
        let short = endurance_trace(20, 2, 6);
        let long = endurance_trace(20, 20, 6);
        let se = short.trace.truth.num_epochs();
        let le = long.trace.truth.num_epochs();
        assert!(
            le > 9 * se && le < 11 * se,
            "10x rounds should give ~10x epochs: {se} vs {le}"
        );
        assert!(long.trace.num_readings() > 5 * short.trace.num_readings());
    }

    #[test]
    fn churn_trace_arrivals_and_departures_in_truth() {
        let s = tag_churn_trace(11);
        assert_eq!(s.trace.object_tags.len(), 16);
        let round = (s.layout.total_length() / 0.1).ceil() as u64;
        // arrivals absent in round one, present in round two
        assert!(s.trace.truth.object_at(TagId(13), Epoch(round)).is_none());
        assert!(s
            .trace
            .truth
            .object_at(TagId(13), Epoch(round + 2))
            .is_some());
        // departures leave tombstones
        assert!(s
            .trace
            .truth
            .object_at(TagId(5), Epoch(round + 20))
            .is_none());
        assert!(s.trace.truth.object_at(TagId(5), Epoch(0)).is_some());
        // arrivals actually get read in round two
        assert!(s.trace.readings.iter().any(|r| r.tag == TagId(13)));
    }

    #[test]
    fn dropout_trace_has_silent_windows() {
        let base = read_rate_trace(1.0, 12);
        let s = reader_dropout_trace(12);
        assert!(s.trace.num_readings() < base.trace.num_readings());
        let el = s.trace.epoch_len;
        for r in &s.trace.readings {
            let e = Epoch::from_seconds(r.time, el).0;
            assert!(
                !(20..32).contains(&e) && !(48..60).contains(&e),
                "epoch {e}"
            );
        }
        // reports untouched
        assert_eq!(s.trace.reports.len(), base.trace.reports.len());
    }

    #[test]
    fn bursty_trace_thins_only_collapsed_windows() {
        let base = read_rate_trace(1.0, 13);
        let s = bursty_read_rate_trace(13);
        let el = s.trace.epoch_len;
        let count = |t: &SimTrace, pred: &dyn Fn(u64) -> bool| {
            t.readings
                .iter()
                .filter(|r| pred(Epoch::from_seconds(r.time, el).0))
                .count()
        };
        let full_w = |e: u64| (e / 15) % 2 == 0;
        let coll_w = |e: u64| (e / 15) % 2 == 1;
        assert_eq!(count(&s.trace, &full_w), count(&base.trace, &full_w));
        let (kept, orig) = (count(&s.trace, &coll_w), count(&base.trace, &coll_w));
        assert!(
            kept * 2 < orig,
            "collapsed windows should lose most readings: {kept}/{orig}"
        );
        assert!(kept > 0, "thinning must be probabilistic, not total");
    }

    #[test]
    fn dense_shelf_packs_objects_tight() {
        let s = dense_shelf_trace(14);
        assert_eq!(s.trace.object_tags.len(), 32);
        let a = s.trace.truth.object_at(TagId(0), Epoch(0)).unwrap();
        let b = s.trace.truth.object_at(TagId(1), Epoch(0)).unwrap();
        assert!((a.dist(&b) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn conveyor_trace_moves_everything_repeatedly() {
        let s = conveyor_trace(15);
        let moves: Vec<_> = s.trace.truth.relocations().collect();
        // every object relocates multiple times
        for tag in s.trace.truth.object_tags().collect::<Vec<_>>() {
            let n = moves.iter().filter(|(t, _, _)| *t == tag).count();
            assert!(n >= 5, "{tag} moved only {n} times");
        }
        // drift is monotone between wraps
        let y0 = s.trace.truth.object_at(TagId(0), Epoch(19)).unwrap().y;
        let y1 = s.trace.truth.object_at(TagId(0), Epoch(21)).unwrap().y;
        assert!((y1 - y0 - 0.4).abs() < 1e-9, "{y0} -> {y1}");
    }

    #[test]
    fn multi_room_trace_reading_gap() {
        let s = multi_room_trace(16);
        assert_eq!(s.layout.shelves().len(), 2);
        let el = s.trace.epoch_len;
        // no readings while the reader crosses the aisle interior
        // (rooms end at y=8 and start at y=20; cone range is 4 ft)
        let gap_epochs = |r: f64| (120u64..160).contains(&((r / el) as u64));
        assert!(!s.trace.readings.iter().any(|r| gap_epochs(r.time)));
        // both rooms produce readings
        assert!(s.trace.readings.iter().any(|r| r.time < 100.0));
        assert!(s.trace.readings.iter().any(|r| r.time > 200.0));
    }

    #[test]
    fn cold_start_trace_drops_both_stream_heads() {
        let s = cold_start_trace(17);
        assert!(s.trace.readings.iter().all(|r| r.time >= 30.0));
        assert!(s.trace.reports.iter().all(|r| r.time >= 30.0));
        assert!(!s.trace.reports.is_empty());
        // truth still covers the undelivered head
        assert!(s.trace.truth.reader_at(Epoch(0)).is_some());
    }

    #[test]
    fn silent_stream_trace_skews_reports_behind_readings() {
        let s = silent_stream_trace(18);
        // reports stay in their epoch but now trail the readings
        for rep in &s.trace.reports {
            let frac = rep.time / s.trace.epoch_len - (rep.time / s.trace.epoch_len).floor();
            assert!((frac - 0.6).abs() < 1e-6, "frac {frac}");
        }
        // long mid-trace reading silence
        let mut times: Vec<f64> = s.trace.readings.iter().map(|r| r.time).collect();
        times.sort_by(|a, b| a.total_cmp(b));
        let max_gap = times.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        assert!(max_gap > 200.0, "silence only {max_gap} s");
    }

    #[test]
    fn scalability_trace_large_counts() {
        let s = scalability_trace(1000, 5);
        assert_eq!(s.trace.object_tags.len(), 1000);
        assert!(s.trace.num_readings() > 1000);
        // two rounds: the trajectory ends back near the start
        let last = s
            .trace
            .truth
            .reader_at(Epoch((s.trace.truth.num_epochs() - 1) as u64))
            .unwrap();
        assert!(last.pos.y.abs() < 3.0, "end y {}", last.pos.y);
    }
}
