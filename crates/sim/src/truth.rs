//! Ground truth for error measurement.
//!
//! Records the true reader pose per epoch and each object's true
//! location over time (as a change list, since objects move rarely).
//! Departures are tombstones in the same list: an object that leaves
//! the warehouse has no true location from that epoch on, and any
//! event reported for it is a phantom.

use rfid_geom::{Point3, Pose};
use rfid_stream::{Epoch, TagId};
use std::collections::BTreeMap;

/// Per-object location history: `(epoch_from, location)` entries sorted
/// by epoch; the location holds until the next entry. `None` entries
/// are departure tombstones (the object is absent until it re-arrives).
#[derive(Debug, Clone, Default)]
struct ObjectHistory {
    changes: Vec<(Epoch, Option<Point3>)>,
}

impl ObjectHistory {
    fn at(&self, epoch: Epoch) -> Option<Point3> {
        // Last change at or before `epoch`. Same-epoch duplicates (a
        // relocation and a departure recorded in one epoch) resolve to
        // the latest entry in insertion order — binary_search would
        // land on an arbitrary one of the duplicates.
        let i = self.changes.partition_point(|(e, _)| *e <= epoch);
        if i == 0 {
            None
        } else {
            self.changes[i - 1].1
        }
    }
}

/// The complete ground truth of a generated trace.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    reader: Vec<(Epoch, Pose)>,
    objects: BTreeMap<TagId, ObjectHistory>,
}

impl GroundTruth {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the true reader pose of an epoch (must be pushed in
    /// epoch order).
    pub fn push_reader(&mut self, epoch: Epoch, pose: Pose) {
        debug_assert!(self.reader.last().is_none_or(|(e, _)| *e < epoch));
        self.reader.push((epoch, pose));
    }

    /// Records a (re)location of an object effective from `epoch`.
    pub fn set_object(&mut self, tag: TagId, epoch: Epoch, loc: Point3) {
        let h = self.objects.entry(tag).or_default();
        debug_assert!(h.changes.last().is_none_or(|(e, _)| *e <= epoch));
        h.changes.push((epoch, Some(loc)));
    }

    /// Records that an object departed (has no true location) from
    /// `epoch` on. Events reported for it at later epochs score as
    /// phantoms. The object must currently be present: a
    /// tombstone-first history would inflate `num_objects` (the recall
    /// denominator) with an object that never existed.
    pub fn remove_object(&mut self, tag: TagId, epoch: Epoch) {
        let h = self.objects.entry(tag).or_default();
        debug_assert!(
            h.changes.last().is_some_and(|(_, loc)| loc.is_some()),
            "remove_object on an absent object"
        );
        debug_assert!(h.changes.last().is_none_or(|(e, _)| *e <= epoch));
        h.changes.push((epoch, None));
    }

    /// The true reader pose at an epoch.
    pub fn reader_at(&self, epoch: Epoch) -> Option<Pose> {
        match self.reader.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => Some(self.reader[i].1),
            Err(_) => None,
        }
    }

    /// The true location of an object at an epoch (`None` before it
    /// first appears).
    pub fn object_at(&self, tag: TagId, epoch: Epoch) -> Option<Point3> {
        self.objects.get(&tag).and_then(|h| h.at(epoch))
    }

    /// All tracked object tags (including ones that have departed).
    pub fn object_tags(&self) -> impl Iterator<Item = TagId> + '_ {
        self.objects.keys().copied()
    }

    /// The raw change list of an object: `(epoch_from, location)`
    /// entries in epoch order, `None` marking a departure.
    pub fn object_changes(&self, tag: TagId) -> impl Iterator<Item = (Epoch, Option<Point3>)> + '_ {
        self.objects
            .get(&tag)
            .into_iter()
            .flat_map(|h| h.changes.iter().copied())
    }

    /// Every *relocation*: a new location recorded for an object that
    /// already had one (a move, or a re-arrival after a departure).
    /// The initial placement does not count, and neither does an entry
    /// superseded by a later change in the *same* epoch (it was never
    /// observable — [`GroundTruth::object_at`] resolves same-epoch
    /// duplicates to the last entry). Yields
    /// `(tag, epoch, new_location)` in (tag, epoch) order — the ground
    /// truth a change-detection-delay metric scores against.
    pub fn relocations(&self) -> impl Iterator<Item = (TagId, Epoch, Point3)> + '_ {
        self.objects.iter().flat_map(|(tag, h)| {
            h.changes
                .iter()
                .enumerate()
                .filter_map(move |(i, (e, loc))| {
                    let last_at_epoch = h.changes.get(i + 1).is_none_or(|(next, _)| *next != *e);
                    match (i, loc, last_at_epoch) {
                        (0, _, _) | (_, None, _) | (_, _, false) => None,
                        (_, Some(p), true) => Some((*tag, *e, *p)),
                    }
                })
        })
    }

    /// Number of tracked objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of recorded reader epochs.
    pub fn num_epochs(&self) -> usize {
        self.reader.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_lookup_exact() {
        let mut g = GroundTruth::new();
        g.push_reader(Epoch(0), Pose::identity());
        g.push_reader(Epoch(1), Pose::new(Point3::new(0.0, 0.1, 0.0), 0.0));
        assert!(g.reader_at(Epoch(1)).is_some());
        assert!(g.reader_at(Epoch(5)).is_none());
        assert_eq!(g.num_epochs(), 2);
    }

    #[test]
    fn object_history_holds_until_change() {
        let mut g = GroundTruth::new();
        let tag = TagId(3);
        g.set_object(tag, Epoch(0), Point3::new(1.0, 1.0, 0.0));
        g.set_object(tag, Epoch(10), Point3::new(5.0, 5.0, 0.0));
        assert_eq!(g.object_at(tag, Epoch(0)).unwrap().x, 1.0);
        assert_eq!(g.object_at(tag, Epoch(9)).unwrap().x, 1.0);
        assert_eq!(g.object_at(tag, Epoch(10)).unwrap().x, 5.0);
        assert_eq!(g.object_at(tag, Epoch(99)).unwrap().x, 5.0);
    }

    #[test]
    fn unknown_object_is_none() {
        let g = GroundTruth::new();
        assert!(g.object_at(TagId(9), Epoch(0)).is_none());
        assert_eq!(g.num_objects(), 0);
    }

    #[test]
    fn before_first_appearance_is_none() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(5), Point3::origin());
        assert!(g.object_at(TagId(1), Epoch(4)).is_none());
        assert!(g.object_at(TagId(1), Epoch(5)).is_some());
    }

    #[test]
    fn departure_tombstone_ends_presence() {
        let mut g = GroundTruth::new();
        let tag = TagId(7);
        g.set_object(tag, Epoch(0), Point3::new(1.0, 2.0, 0.0));
        g.remove_object(tag, Epoch(10));
        assert!(g.object_at(tag, Epoch(9)).is_some());
        assert!(g.object_at(tag, Epoch(10)).is_none());
        assert!(g.object_at(tag, Epoch(500)).is_none());
        // re-arrival after a departure
        g.set_object(tag, Epoch(20), Point3::new(3.0, 4.0, 0.0));
        assert_eq!(g.object_at(tag, Epoch(25)).unwrap().x, 3.0);
        // the tag is still tracked (it existed at some epoch)
        assert_eq!(g.num_objects(), 1);
    }

    #[test]
    fn same_epoch_move_then_departure_resolves_to_departure() {
        // a MovementEvent and a ChurnEvent::Depart can share an epoch:
        // the later entry (the tombstone) must win at that epoch
        let mut g = GroundTruth::new();
        let tag = TagId(4);
        g.set_object(tag, Epoch(0), Point3::origin());
        g.set_object(tag, Epoch(5), Point3::new(0.0, 3.0, 0.0));
        g.remove_object(tag, Epoch(5));
        assert!(g.object_at(tag, Epoch(4)).is_some());
        assert!(g.object_at(tag, Epoch(5)).is_none());
        assert!(g.object_at(tag, Epoch(6)).is_none());
        // and the reverse order: a re-arrival in the departure's epoch
        let tag2 = TagId(5);
        g.set_object(tag2, Epoch(0), Point3::origin());
        g.remove_object(tag2, Epoch(7));
        g.set_object(tag2, Epoch(7), Point3::new(0.0, 9.0, 0.0));
        assert_eq!(g.object_at(tag2, Epoch(7)).unwrap().y, 9.0);
    }

    #[test]
    fn relocations_skip_initial_placements_and_tombstones() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::origin()); // initial
        g.set_object(TagId(1), Epoch(8), Point3::new(0.0, 5.0, 0.0)); // move
        g.remove_object(TagId(1), Epoch(12)); // departure
        g.set_object(TagId(1), Epoch(20), Point3::new(0.0, 9.0, 0.0)); // re-arrival
        g.set_object(TagId(2), Epoch(15), Point3::origin()); // late arrival, no move
        let r: Vec<_> = g.relocations().collect();
        assert_eq!(
            r,
            vec![
                (TagId(1), Epoch(8), Point3::new(0.0, 5.0, 0.0)),
                (TagId(1), Epoch(20), Point3::new(0.0, 9.0, 0.0)),
            ]
        );
        assert_eq!(g.object_changes(TagId(1)).count(), 4);
        assert_eq!(g.object_changes(TagId(9)).count(), 0);
    }

    #[test]
    fn relocations_skip_moves_superseded_in_the_same_epoch() {
        // a move immediately tombstoned in its own epoch was never
        // observable: it must not inflate the change-detection total
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(0), Point3::origin());
        g.set_object(TagId(1), Epoch(5), Point3::new(0.0, 3.0, 0.0));
        g.remove_object(TagId(1), Epoch(5));
        assert_eq!(g.relocations().count(), 0);
        // a same-epoch double move keeps only the observable (last) one
        g.set_object(TagId(1), Epoch(9), Point3::new(0.0, 4.0, 0.0));
        g.set_object(TagId(1), Epoch(9), Point3::new(0.0, 6.0, 0.0));
        let r: Vec<_> = g.relocations().collect();
        assert_eq!(r, vec![(TagId(1), Epoch(9), Point3::new(0.0, 6.0, 0.0))]);
    }
}
