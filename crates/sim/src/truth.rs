//! Ground truth for error measurement.
//!
//! Records the true reader pose per epoch and each object's true
//! location over time (as a change list, since objects move rarely).

use rfid_geom::{Point3, Pose};
use rfid_stream::{Epoch, TagId};
use std::collections::BTreeMap;

/// Per-object location history: `(epoch_from, location)` entries sorted
/// by epoch; the location holds until the next entry.
#[derive(Debug, Clone, Default)]
struct ObjectHistory {
    changes: Vec<(Epoch, Point3)>,
}

impl ObjectHistory {
    fn at(&self, epoch: Epoch) -> Option<Point3> {
        // last change at or before `epoch`
        match self.changes.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => Some(self.changes[i].1),
            Err(0) => None,
            Err(i) => Some(self.changes[i - 1].1),
        }
    }
}

/// The complete ground truth of a generated trace.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    reader: Vec<(Epoch, Pose)>,
    objects: BTreeMap<TagId, ObjectHistory>,
}

impl GroundTruth {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the true reader pose of an epoch (must be pushed in
    /// epoch order).
    pub fn push_reader(&mut self, epoch: Epoch, pose: Pose) {
        debug_assert!(self.reader.last().is_none_or(|(e, _)| *e < epoch));
        self.reader.push((epoch, pose));
    }

    /// Records a (re)location of an object effective from `epoch`.
    pub fn set_object(&mut self, tag: TagId, epoch: Epoch, loc: Point3) {
        let h = self.objects.entry(tag).or_default();
        debug_assert!(h.changes.last().is_none_or(|(e, _)| *e <= epoch));
        h.changes.push((epoch, loc));
    }

    /// The true reader pose at an epoch.
    pub fn reader_at(&self, epoch: Epoch) -> Option<Pose> {
        match self.reader.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => Some(self.reader[i].1),
            Err(_) => None,
        }
    }

    /// The true location of an object at an epoch (`None` before it
    /// first appears).
    pub fn object_at(&self, tag: TagId, epoch: Epoch) -> Option<Point3> {
        self.objects.get(&tag).and_then(|h| h.at(epoch))
    }

    /// All tracked object tags.
    pub fn object_tags(&self) -> impl Iterator<Item = TagId> + '_ {
        self.objects.keys().copied()
    }

    /// Number of tracked objects.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of recorded reader epochs.
    pub fn num_epochs(&self) -> usize {
        self.reader.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_lookup_exact() {
        let mut g = GroundTruth::new();
        g.push_reader(Epoch(0), Pose::identity());
        g.push_reader(Epoch(1), Pose::new(Point3::new(0.0, 0.1, 0.0), 0.0));
        assert!(g.reader_at(Epoch(1)).is_some());
        assert!(g.reader_at(Epoch(5)).is_none());
        assert_eq!(g.num_epochs(), 2);
    }

    #[test]
    fn object_history_holds_until_change() {
        let mut g = GroundTruth::new();
        let tag = TagId(3);
        g.set_object(tag, Epoch(0), Point3::new(1.0, 1.0, 0.0));
        g.set_object(tag, Epoch(10), Point3::new(5.0, 5.0, 0.0));
        assert_eq!(g.object_at(tag, Epoch(0)).unwrap().x, 1.0);
        assert_eq!(g.object_at(tag, Epoch(9)).unwrap().x, 1.0);
        assert_eq!(g.object_at(tag, Epoch(10)).unwrap().x, 5.0);
        assert_eq!(g.object_at(tag, Epoch(99)).unwrap().x, 5.0);
    }

    #[test]
    fn unknown_object_is_none() {
        let g = GroundTruth::new();
        assert!(g.object_at(TagId(9), Epoch(0)).is_none());
        assert_eq!(g.num_objects(), 0);
    }

    #[test]
    fn before_first_appearance_is_none() {
        let mut g = GroundTruth::new();
        g.set_object(TagId(1), Epoch(5), Point3::origin());
        assert!(g.object_at(TagId(1), Epoch(4)).is_none());
        assert!(g.object_at(TagId(1), Epoch(5)).is_some());
    }
}
