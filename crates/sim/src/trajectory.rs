//! Intended reader motion, one step per epoch.
//!
//! A trajectory is the *noise-free* plan: the generator adds motion
//! noise per the paper's `R_t = R_{t-1} + Δ + ε`. Plans cover the
//! paper's scenarios: a single linear scan down the aisle, multiple
//! rounds of scan (the scalability tests use "two rounds of scan"), and
//! the lab pattern (scan one row, turn around, scan the other).

use rfid_geom::{Point3, Vec3};

/// One epoch's intended movement: displacement plus heading change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    pub delta: Vec3,
    pub dphi: f64,
}

/// A complete plan: start pose and a step per epoch.
#[derive(Debug, Clone)]
pub struct Trajectory {
    pub start_pos: Point3,
    pub start_phi: f64,
    steps: Vec<Step>,
}

impl Trajectory {
    /// Builds a trajectory from explicit parts.
    pub fn new(start_pos: Point3, start_phi: f64, steps: Vec<Step>) -> Self {
        Self {
            start_pos,
            start_phi,
            steps,
        }
    }

    /// Number of epochs (the start pose is epoch 0; steps produce epochs
    /// `1..=len`).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The per-epoch steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// A single pass down the aisle: start at `(0, 0)` facing `+x`
    /// (toward the shelves), advance `speed` feet per epoch along `+y`
    /// until `length` feet are covered.
    pub fn linear_scan(length: f64, speed: f64) -> Self {
        assert!(speed > 0.0 && length > 0.0);
        let n = (length / speed).ceil() as usize;
        let steps = vec![
            Step {
                delta: Vec3::new(0.0, speed, 0.0),
                dphi: 0.0,
            };
            n
        ];
        Self::new(Point3::origin(), 0.0, steps)
    }

    /// `rounds` passes over the aisle, reversing direction at each end
    /// (down, back, down, ...), still facing the shelves the whole time.
    /// The scalability experiments use two rounds.
    pub fn rounds_scan(length: f64, speed: f64, rounds: usize) -> Self {
        assert!(rounds >= 1);
        let n = (length / speed).ceil() as usize;
        let mut steps = Vec::with_capacity(n * rounds);
        for r in 0..rounds {
            let dir = if r % 2 == 0 { 1.0 } else { -1.0 };
            for _ in 0..n {
                steps.push(Step {
                    delta: Vec3::new(0.0, dir * speed, 0.0),
                    dphi: 0.0,
                });
            }
        }
        Self::new(Point3::origin(), 0.0, steps)
    }

    /// The lab pattern of §V-C: scan up one row of tags facing `+x`,
    /// turn around (180° over `turn_epochs` epochs while advancing to
    /// the second aisle side), then scan back down facing `-x`.
    pub fn lab_two_rows(row_length: f64, speed: f64, turn_epochs: usize) -> Self {
        let n = (row_length / speed).ceil() as usize;
        let mut steps = Vec::new();
        for _ in 0..n {
            steps.push(Step {
                delta: Vec3::new(0.0, speed, 0.0),
                dphi: 0.0,
            });
        }
        // turn in place toward the other row
        let turn_epochs = turn_epochs.max(1);
        for _ in 0..turn_epochs {
            steps.push(Step {
                delta: Vec3::zero(),
                dphi: std::f64::consts::PI / turn_epochs as f64,
            });
        }
        for _ in 0..n {
            steps.push(Step {
                delta: Vec3::new(0.0, -speed, 0.0),
                dphi: 0.0,
            });
        }
        Self::new(Point3::origin(), 0.0, steps)
    }

    /// Cumulative intended poses, one per epoch (`num_steps() + 1`
    /// entries including the start).
    pub fn intended_poses(&self) -> Vec<(Point3, f64)> {
        let mut out = Vec::with_capacity(self.steps.len() + 1);
        let mut pos = self.start_pos;
        let mut phi = self.start_phi;
        out.push((pos, phi));
        for s in &self.steps {
            pos += s.delta;
            phi = rfid_geom::angles::wrap_pi(phi + s.dphi);
            out.push((pos, phi));
        }
        out
    }

    /// The average per-epoch displacement over the whole plan — the `Δ`
    /// a motion model would see on this trace.
    pub fn mean_delta(&self) -> Vec3 {
        if self.steps.is_empty() {
            return Vec3::zero();
        }
        let mut s = Vec3::zero();
        for st in &self.steps {
            s += st.delta;
        }
        s / self.steps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_scan_covers_length() {
        let t = Trajectory::linear_scan(10.0, 0.1);
        assert_eq!(t.num_steps(), 100);
        let poses = t.intended_poses();
        assert_eq!(poses.len(), 101);
        assert!((poses.last().unwrap().0.y - 10.0).abs() < 1e-9);
        assert_eq!(poses[0].1, 0.0);
    }

    #[test]
    fn rounds_scan_returns_to_start() {
        let t = Trajectory::rounds_scan(10.0, 0.1, 2);
        let poses = t.intended_poses();
        assert!((poses.last().unwrap().0.y - 0.0).abs() < 1e-9);
        assert_eq!(t.num_steps(), 200);
    }

    #[test]
    fn lab_two_rows_turns_around() {
        let t = Trajectory::lab_two_rows(13.0, 0.1, 5);
        let poses = t.intended_poses();
        // after the turn, heading is pi (facing -x)
        let mid = 130 + 5;
        assert!((poses[mid].1.abs() - std::f64::consts::PI).abs() < 1e-9);
        // ends back near y = 0
        assert!(poses.last().unwrap().0.y.abs() < 1e-9);
    }

    #[test]
    fn mean_delta_of_linear_scan() {
        let t = Trajectory::linear_scan(10.0, 0.1);
        let d = t.mean_delta();
        assert!((d.y - 0.1).abs() < 1e-12);
        assert_eq!(d.x, 0.0);
    }

    #[test]
    fn mean_delta_of_rounds_cancels() {
        let t = Trajectory::rounds_scan(10.0, 0.1, 2);
        assert!(t.mean_delta().norm() < 1e-12);
    }
}
