//! Reader-location reporting noise.
//!
//! Two regimes, matching the paper:
//!
//! * [`ReportNoise::Gaussian`] — the §V-A simulator: each report is the
//!   true location plus `N(µ_s, Σ_s)` noise (systematic bias plus
//!   jitter). Fig. 5(g) sweeps `µ_s^y`.
//! * [`ReportNoise::DeadReckoning`] — the §V-C robot: the *reported*
//!   location is integrated odometry, so error accumulates with travel
//!   (wheel slippage forward, sideways drift from inertia), "with error
//!   in reported location up to 1 foot away from its true location".

use rand::Rng;
use rfid_geom::{standard_normal, Pose, Vec3};

/// Accumulating odometry error model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadReckoning {
    /// Fractional forward slippage: reported distance per true foot
    /// traveled is `1 + slip` (negative = under-reporting).
    pub slip: f64,
    /// Sideways drift per foot traveled (feet), perpendicular to the
    /// direction of travel.
    pub side_drift_per_ft: f64,
    /// Per-epoch random jitter std on the integrated estimate (feet).
    pub jitter_std: f64,
    /// Cap on the accumulated error magnitude (the lab observed up to
    /// ~1 ft). Zero disables the cap.
    pub max_error: f64,
}

impl DeadReckoning {
    /// The simulated lab robot: drifts toward ~0.9 ft of error over
    /// the full two-row scan (~27 ft of travel), matching the paper's
    /// "error in reported location up to 1 foot".
    pub fn lab_default() -> Self {
        Self {
            slip: 0.015,
            side_drift_per_ft: 0.02,
            jitter_std: 0.01,
            max_error: 1.0,
        }
    }
}

/// The reporting-noise regimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportNoise {
    /// Independent per-report noise `N(mu, sigma)` (diagonal), the
    /// §V-A simulator model.
    Gaussian { mu: Vec3, sigma: Vec3 },
    /// Integrated odometry with accumulating error, the §V-C robot.
    DeadReckoning(DeadReckoning),
    /// Perfect reports (for oracle experiments and tests).
    None,
}

/// Stateful reporter: feed true poses epoch by epoch, get reported poses.
#[derive(Debug, Clone)]
pub struct Reporter {
    noise: ReportNoise,
    /// Accumulated odometry error (dead-reckoning regime only).
    acc_error: Vec3,
    last_true: Option<Pose>,
}

impl Reporter {
    /// Creates a reporter for the given noise regime.
    pub fn new(noise: ReportNoise) -> Self {
        Self {
            noise,
            acc_error: Vec3::zero(),
            last_true: None,
        }
    }

    /// Produces the reported pose for this epoch's true pose.
    pub fn report<R: Rng + ?Sized>(&mut self, truth: &Pose, rng: &mut R) -> Pose {
        let reported = match &self.noise {
            ReportNoise::None => *truth,
            ReportNoise::Gaussian { mu, sigma } => {
                let eta = Vec3::new(
                    mu.x + sigma.x * standard_normal(rng),
                    mu.y + sigma.y * standard_normal(rng),
                    mu.z + sigma.z * standard_normal(rng),
                );
                Pose::new(truth.pos + eta, truth.phi)
            }
            ReportNoise::DeadReckoning(dr) => {
                if let Some(prev) = self.last_true {
                    let step = truth.pos - prev.pos;
                    let dist = step.norm();
                    if dist > 0.0 {
                        let dir = step / dist;
                        // perpendicular in the XY plane
                        let perp = Vec3::new(-dir.y, dir.x, 0.0);
                        self.acc_error +=
                            dir * (dr.slip * dist) + perp * (dr.side_drift_per_ft * dist);
                    }
                    self.acc_error += Vec3::new(
                        dr.jitter_std * standard_normal(rng),
                        dr.jitter_std * standard_normal(rng),
                        0.0,
                    );
                    if dr.max_error > 0.0 {
                        let m = self.acc_error.norm();
                        if m > dr.max_error {
                            self.acc_error = self.acc_error * (dr.max_error / m);
                        }
                    }
                }
                Pose::new(truth.pos + self.acc_error, truth.phi)
            }
        };
        self.last_true = Some(*truth);
        reported
    }

    /// Current accumulated odometry error (dead-reckoning regime).
    pub fn accumulated_error(&self) -> Vec3 {
        self.acc_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::Point3;

    #[test]
    fn none_reports_truth() {
        let mut rep = Reporter::new(ReportNoise::None);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pose::new(Point3::new(1.0, 2.0, 0.0), 0.5);
        assert_eq!(rep.report(&p, &mut rng), p);
    }

    #[test]
    fn gaussian_bias_visible_in_mean() {
        let mut rep = Reporter::new(ReportNoise::Gaussian {
            mu: Vec3::new(0.0, 0.5, 0.0),
            sigma: Vec3::new(0.01, 0.2, 0.0),
        });
        let mut rng = StdRng::seed_from_u64(2);
        let truth = Pose::identity();
        let n = 5000;
        let mut my = 0.0;
        for _ in 0..n {
            my += rep.report(&truth, &mut rng).pos.y;
        }
        my /= n as f64;
        assert!((my - 0.5).abs() < 0.02, "mean y {my}");
    }

    #[test]
    fn dead_reckoning_error_grows_with_travel() {
        let mut rep = Reporter::new(ReportNoise::DeadReckoning(DeadReckoning {
            slip: 0.05,
            side_drift_per_ft: 0.05,
            jitter_std: 0.0,
            max_error: 0.0,
        }));
        let mut rng = StdRng::seed_from_u64(3);
        let mut errors = Vec::new();
        for i in 0..100 {
            let truth = Pose::new(Point3::new(0.0, i as f64 * 0.1, 0.0), 0.0);
            let r = rep.report(&truth, &mut rng);
            errors.push(r.pos.dist(&truth.pos));
        }
        assert!(errors[10] < errors[50]);
        assert!(errors[50] < errors[99]);
        // after ~10 ft of travel at 5%+5% error: ~0.7 ft
        assert!(errors[99] > 0.4 && errors[99] < 1.2, "final {}", errors[99]);
    }

    #[test]
    fn dead_reckoning_respects_cap() {
        let mut rep = Reporter::new(ReportNoise::DeadReckoning(DeadReckoning {
            slip: 0.5,
            side_drift_per_ft: 0.5,
            jitter_std: 0.0,
            max_error: 1.0,
        }));
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..200 {
            let truth = Pose::new(Point3::new(0.0, i as f64 * 0.1, 0.0), 0.0);
            let r = rep.report(&truth, &mut rng);
            assert!(r.pos.dist(&truth.pos) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn stationary_robot_accumulates_nothing_without_jitter() {
        let mut rep = Reporter::new(ReportNoise::DeadReckoning(DeadReckoning {
            slip: 0.1,
            side_drift_per_ft: 0.1,
            jitter_std: 0.0,
            max_error: 1.0,
        }));
        let mut rng = StdRng::seed_from_u64(5);
        let truth = Pose::identity();
        for _ in 0..50 {
            rep.report(&truth, &mut rng);
        }
        assert!(rep.accumulated_error().norm() < 1e-12);
    }
}
