//! Incremental [`rfid_stream::ReadingSource`]s over simulated traces.
//!
//! Two ways to feed the streaming pipeline:
//!
//! * [`TraceStream`] — borrows an already-generated [`SimTrace`] and
//!   merges its two raw streams in time order, one item per pull;
//! * [`EpochStreamSource`] — wraps an [`EpochSim`] so the trace is
//!   *generated on demand*, epoch by epoch: nothing is materialized
//!   beyond the current epoch's items, no matter how long the run.
//!
//! Both yield [`StreamItem`]s, so they plug into
//! [`rfid_stream::Pipeline`] directly (every `Iterator<Item =
//! StreamItem>` is a `ReadingSource`).

use crate::generator::EpochSim;
use crate::truth::GroundTruth;
use rand::Rng;
use rfid_model::sensor::ReadRateModel;
use rfid_stream::pipeline::StreamItem;
use rfid_stream::{ReaderLocationReport, RfidReading};
use std::collections::VecDeque;

/// The two raw streams of a [`crate::generator::SimTrace`], merged in
/// time order. Ties go to the reading, matching the push order of
/// `synchronize_traces` within an epoch (report averaging is
/// order-sensitive only *within* the report stream, whose order is
/// preserved).
#[derive(Debug, Clone)]
pub struct TraceStream<'a> {
    readings: &'a [RfidReading],
    reports: &'a [ReaderLocationReport],
    ri: usize,
    pi: usize,
}

impl<'a> TraceStream<'a> {
    /// Merges the given streams (each must be non-decreasing in time,
    /// which generated traces are by construction).
    pub fn new(readings: &'a [RfidReading], reports: &'a [ReaderLocationReport]) -> Self {
        Self {
            readings,
            reports,
            ri: 0,
            pi: 0,
        }
    }
}

impl Iterator for TraceStream<'_> {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        let next_reading = self.readings.get(self.ri);
        let next_report = self.reports.get(self.pi);
        match (next_reading, next_report) {
            (Some(r), Some(p)) => {
                if r.time <= p.time {
                    self.ri += 1;
                    Some(StreamItem::Reading(*r))
                } else {
                    self.pi += 1;
                    Some(StreamItem::Report(*p))
                }
            }
            (Some(r), None) => {
                self.ri += 1;
                Some(StreamItem::Reading(*r))
            }
            (None, Some(p)) => {
                self.pi += 1;
                Some(StreamItem::Report(*p))
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.readings.len() - self.ri) + (self.reports.len() - self.pi);
        (n, Some(n))
    }
}

/// A live generative source: pulls epochs out of an [`EpochSim`] as the
/// pipeline consumes items. Within an epoch the report (stamped at the
/// epoch start) precedes the readings (stamped mid-epoch), so the
/// merged order matches [`TraceStream`] over a materialized trace.
#[derive(Debug)]
pub struct EpochStreamSource<S: ReadRateModel, R: Rng> {
    sim: EpochSim<S, R>,
    queue: VecDeque<StreamItem>,
}

impl<S: ReadRateModel, R: Rng> EpochStreamSource<S, R> {
    /// Wraps a simulator positioned at its first epoch.
    pub fn new(sim: EpochSim<S, R>) -> Self {
        Self {
            sim,
            queue: VecDeque::new(),
        }
    }

    /// The epoch length of the generated streams, in seconds.
    pub fn epoch_len(&self) -> f64 {
        self.sim.epoch_len()
    }

    /// Ground truth generated so far (complete after exhaustion) — for
    /// scoring the pipeline's events after the run.
    pub fn truth(&self) -> &GroundTruth {
        self.sim.truth()
    }

    /// Consumes the source, returning the accumulated ground truth.
    pub fn into_truth(self) -> GroundTruth {
        self.sim.into_truth()
    }
}

impl<S: ReadRateModel, R: Rng> Iterator for EpochStreamSource<S, R> {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        loop {
            if let Some(item) = self.queue.pop_front() {
                return Some(item);
            }
            let out = self.sim.next_epoch()?;
            self.queue.push_back(StreamItem::Report(out.report));
            for r in out.readings {
                self.queue.push_back(StreamItem::Reading(*r));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::layout::WarehouseLayout;
    use crate::trajectory::Trajectory;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::Point3;
    use rfid_model::sensor::ConeSensor;
    use rfid_stream::TagId;

    type Placements = Vec<(TagId, Point3)>;

    fn setup() -> (WarehouseLayout, Trajectory, Placements, Placements) {
        let layout = WarehouseLayout::linear(1, 10.0, 0.5, 2.0, 0.0);
        let traj = Trajectory::linear_scan(10.0, 0.1);
        let objects: Vec<(TagId, Point3)> = layout
            .object_slots(10)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (TagId(i as u64), p))
            .collect();
        let shelves = layout.shelf_tags(4);
        (layout, traj, objects, shelves)
    }

    #[test]
    fn trace_stream_yields_every_item_in_time_order() {
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::paper_default());
        let mut rng = StdRng::seed_from_u64(12);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        let items: Vec<StreamItem> = trace.stream().collect();
        assert_eq!(items.len(), trace.readings.len() + trace.reports.len());
        let mut last = f64::NEG_INFINITY;
        for item in &items {
            let t = match item {
                StreamItem::Reading(r) => r.time,
                StreamItem::Report(p) => p.time,
            };
            assert!(t >= last, "out of order: {t} after {last}");
            last = t;
        }
    }

    #[test]
    fn live_source_reproduces_the_materialized_trace() {
        // same seed: the streamed items must be exactly the merged
        // materialized trace, and the truth must match
        let (layout, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::paper_default());
        let mut rng = StdRng::seed_from_u64(13);
        let trace = gen.generate(&layout, &traj, &objects, &shelves, &[], &mut rng);
        let live = gen.stream(&traj, &objects, &shelves, &[], StdRng::seed_from_u64(13));
        let live_items: Vec<StreamItem> = live.collect();
        let merged: Vec<StreamItem> = trace.stream().collect();
        assert_eq!(live_items.len(), merged.len());
        for (a, b) in live_items.iter().zip(&merged) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn live_source_accumulates_truth() {
        let (_, traj, objects, shelves) = setup();
        let gen = TraceGenerator::new(ConeSensor::paper_default());
        let mut live = gen.stream(&traj, &objects, &shelves, &[], StdRng::seed_from_u64(14));
        while live.next().is_some() {}
        assert_eq!(live.truth().num_epochs(), traj.num_steps() + 1);
        assert_eq!(live.truth().num_objects(), 10);
    }
}
