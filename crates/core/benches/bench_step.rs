//! Microbenchmark for the per-object hot path: the fused SoA step
//! (`ObjectFilter::step_fused`) against the retained AoS-style
//! reference sequence (`weight` → `maybe_resample` → `estimate`), per
//! particle count, plus the surrounding per-epoch components
//! (`refresh_pointers_with`, `predict`) so a profile of the engine's
//! infer stage can be cross-checked against isolated numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_core::exec::StepScratch;
use rfid_core::factored::{ObjectFilter, ReaderFilter};
use rfid_geom::{Point3, Pose};
use rfid_model::object::BoxPrior;
use rfid_model::table::LikelihoodTable;
use rfid_model::{JointModel, ModelParams};

const READER_PARTICLES: usize = 100;
const COUNTS: [usize; 3] = [100, 200, 500];

struct Fixture {
    model: JointModel,
    prior: BoxPrior,
    reader: ReaderFilter,
    cdf: Vec<f64>,
    filter: ObjectFilter,
    scratch: StepScratch,
    support: Vec<f64>,
    rng: StdRng,
}

fn fixture(n: usize) -> Fixture {
    let model = JointModel::new(ModelParams::default_warehouse());
    let prior = BoxPrior::new(rfid_geom::Aabb::new(
        Point3::new(-20.0, -20.0, 0.0),
        Point3::new(20.0, 20.0, 0.0),
    ));
    let reader = ReaderFilter::new(READER_PARTICLES, Pose::new(Point3::new(0.0, 0.5, 0.0), 0.1));
    let mut rng = StdRng::seed_from_u64(42);
    let filter = ObjectFilter::init_from_cone(&reader, 5.0, 0.6, n, 0, Some(&prior), &mut rng);
    let mut cdf = Vec::new();
    reader.sampling_cdf_into(&mut cdf);
    Fixture {
        model,
        prior,
        reader,
        cdf,
        filter,
        scratch: StepScratch::default(),
        support: vec![0.0f64; READER_PARTICLES],
        rng,
    }
}

/// Fused SoA single-pass step (weight + resample decision + estimate),
/// alternating read/miss epochs; resampling is exercised via ess_frac.
fn bench_fused(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_fused_soa");
    for &n in &COUNTS {
        let mut f = fixture(n);
        let mut epoch = 0u64;
        g.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                epoch += 1;
                f.support.fill(0.0);
                let out = f.filter.step_fused(
                    &f.model,
                    &f.reader,
                    epoch % 3 != 2,
                    0.5,
                    None,
                    None,
                    &mut f.scratch,
                    &mut f.support,
                    &mut f.rng,
                );
                out.estimate.0.x
            })
        });
    }
    g.finish();
}

/// The retained AoS-style reference: three passes, each recomputing
/// normalized joint weights and allocating fresh buffers (the seed
/// code path the fused step is bit-pinned against).
fn bench_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_reference_aos");
    for &n in &COUNTS {
        let mut f = fixture(n);
        let mut reader = f.reader.clone();
        let mut epoch = 0u64;
        g.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                epoch += 1;
                f.filter.weight(&f.model, &mut reader, epoch % 3 != 2);
                f.filter.maybe_resample(&reader, 0.5, &mut f.rng);
                f.filter.estimate(&reader).0.x
            })
        });
    }
    g.finish();
}

/// Fused step through the quantized likelihood table (read epochs hit
/// the table; the miss path is identical).
fn bench_fused_table(c: &mut Criterion) {
    let table = {
        let model = JointModel::new(ModelParams::default_warehouse());
        LikelihoodTable::build(&model.sensor, 10.0, 0.05, 0.02)
    };
    let mut g = c.benchmark_group("step_fused_soa_table");
    for &n in &COUNTS {
        let mut f = fixture(n);
        let mut epoch = 0u64;
        g.bench_function(format!("{n}"), |b| {
            b.iter(|| {
                epoch += 1;
                f.support.fill(0.0);
                let out = f.filter.step_fused(
                    &f.model,
                    &f.reader,
                    epoch % 3 != 2,
                    0.5,
                    Some(&table),
                    None,
                    &mut f.scratch,
                    &mut f.support,
                    &mut f.rng,
                );
                out.estimate.0.x
            })
        });
    }
    g.finish();
}

/// The per-epoch steps surrounding the fused step in the engine:
/// pointer refresh (n CDF samples) and motion predict (n noise draws).
fn bench_epoch_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_components");
    let n = 200usize;
    {
        let mut f = fixture(n);
        let mut stamp = 0u64;
        g.bench_function("refresh_pointers/200", |b| {
            b.iter(|| {
                stamp += 1;
                f.filter
                    .refresh_pointers_with(&f.reader, &f.cdf, stamp, &mut f.rng);
            })
        });
    }
    {
        let mut f = fixture(n);
        g.bench_function("predict/200", |b| {
            b.iter(|| {
                f.filter.predict(&f.model, &f.prior, true, &mut f.rng);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fused,
    bench_reference,
    bench_fused_table,
    bench_epoch_components
);
criterion_main!(benches);
