//! End-to-end integration: generate a warehouse trace with the
//! simulator, run the inference engine, and check the location events
//! against ground truth. This is the paper's central claim — object
//! locations recovered "within a range of a few inches to a foot".

use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario;
use rfid_stream::LocationEvent;

/// Mean XY error of events against ground truth at each event's epoch.
fn mean_error(events: &[LocationEvent], sc: &scenario::Scenario) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for e in events {
        if let Some(truth) = sc.trace.truth.object_at(e.tag, e.epoch) {
            sum += e.location.dist_xy(&truth);
            n += 1;
        }
    }
    assert!(n > 0, "no scorable events");
    sum / n as f64
}

fn run_config(sc: &scenario::Scenario, cfg: FilterConfig) -> Vec<LocationEvent> {
    let model = JointModel::new(ModelParams::default_warehouse());
    let mut engine =
        InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
            .expect("valid config");
    run_engine(&mut engine, &sc.trace.epoch_batches())
}

#[test]
fn factored_filter_localizes_within_a_foot() {
    let sc = scenario::small_trace(10, 4, 42);
    let mut cfg = FilterConfig::factored_default();
    cfg.particles_per_object = 1000;
    cfg.reader_particles = 100;
    let events = run_config(&sc, cfg);
    // every object must be reported
    assert_eq!(
        events.len(),
        10,
        "one event per object expected, got {}",
        events.len()
    );
    let err = mean_error(&events, &sc);
    assert!(err < 1.0, "mean XY error {err} ft too high");
}

#[test]
fn enhancements_do_not_degrade_accuracy_much() {
    let sc = scenario::small_trace(10, 4, 7);
    let mut base = FilterConfig::factored_default();
    base.particles_per_object = 600;
    base.reader_particles = 60;
    let mut indexed = base;
    indexed.use_spatial_index = true;
    let mut full = indexed;
    full.compression = rfid_core::CompressionPolicy::paper_default();

    let e_base = mean_error(&run_config(&sc, base), &sc);
    let e_idx = mean_error(&run_config(&sc, indexed), &sc);
    let e_full = mean_error(&run_config(&sc, full), &sc);
    // "Neither spatial indexing nor belief compression causes obvious
    // degradation in accuracy."
    assert!(e_idx < e_base + 0.5, "index degraded: {e_base} -> {e_idx}");
    assert!(
        e_full < e_base + 0.5,
        "compression degraded: {e_base} -> {e_full}"
    );
}

#[test]
fn robust_to_reduced_read_rate() {
    // Fig. 5(f): accuracy degrades only slowly as RR_major drops.
    let mut errs = Vec::new();
    for rr in [1.0, 0.7, 0.5] {
        let sc = scenario::read_rate_trace(rr, 3);
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 800;
        cfg.reader_particles = 60;
        let err = mean_error(&run_config(&sc, cfg), &sc);
        errs.push(err);
    }
    // all within a foot and a half even at 50% read rate
    for (i, e) in errs.iter().enumerate() {
        assert!(*e < 1.5, "err[{i}] = {e}");
    }
}
