//! Bit-identity of the head/worker cluster split (transport-free).
//!
//! [`rfid_core::engine::cluster`] partitions the objects by
//! `tag % num_workers` across worker engines while a head engine owns
//! the reader and the engine RNG. This suite drives the exact same
//! per-epoch exchange the wire protocol carries — plan broadcast, task
//! reports, resample directive — fully in-process, and requires the
//! merged event stream to be **bit-identical** to `run_engine` for
//! every worker count. The `rfid-cluster` crate's child-process test
//! covers the same gate over real sockets.

use rfid_core::engine::cluster::{ClusterHead, ClusterWorker, EpochPlan, ResampleDirective};
use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine, ReaderMode};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario;
use rfid_stream::wire::merge_events_by_tag;
use rfid_stream::{Epoch, LocationEvent};

fn engine_for(
    sc: &scenario::Scenario,
    cfg: FilterConfig,
) -> InferenceEngine<rfid_sim::WarehouseLayout, ConeSensor> {
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid config")
}

/// Drives the full head/worker exchange over the trace and returns the
/// coordinator-merged event stream.
fn run_cluster(
    sc: &scenario::Scenario,
    cfg: FilterConfig,
    num_workers: usize,
) -> Vec<LocationEvent> {
    let batches = sc.trace.epoch_batches();
    let mut head = ClusterHead::new(engine_for(sc, cfg), num_workers);
    let mut workers: Vec<ClusterWorker<rfid_sim::WarehouseLayout, ConeSensor>> = (0..num_workers)
        .map(|_| ClusterWorker::new(engine_for(sc, cfg)))
        .collect();
    let mut merged = Vec::new();
    let mut last_epoch = Epoch(0);
    for batch in &batches {
        last_epoch = batch.epoch;
        let plan: EpochPlan = head.begin_epoch(batch);
        let mut per_worker_events: Vec<Vec<LocationEvent>> = Vec::with_capacity(num_workers);
        let mut reports = Vec::with_capacity(num_workers);
        for (i, w) in workers.iter_mut().enumerate() {
            let mut events = Vec::new();
            reports.push(w.process_epoch(&plan, i, &mut events));
            per_worker_events.push(events);
        }
        let directive: Option<ResampleDirective> = head.finish_epoch(&reports);
        assert_eq!(
            directive.is_some(),
            plan.will_resample,
            "the broadcast resample prediction must be exact (epoch {})",
            batch.epoch.0
        );
        for w in workers.iter_mut() {
            w.apply_resample(plan.epoch, directive.as_ref());
        }
        merge_events_by_tag(&per_worker_events, &mut merged);
    }
    let finals: Vec<Vec<LocationEvent>> = workers
        .iter_mut()
        .map(|w| {
            let mut events = Vec::new();
            w.finalize_into(last_epoch, &mut events);
            events
        })
        .collect();
    merge_events_by_tag(&finals, &mut merged);
    merged
}

fn assert_identical(a: &[LocationEvent], b: &[LocationEvent], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: event counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.epoch, y.epoch, "{label}: event {i} epoch");
        assert_eq!(x.tag, y.tag, "{label}: event {i} tag");
        assert_eq!(
            x.location.x.to_bits(),
            y.location.x.to_bits(),
            "{label}: event {i} ({:?}) x",
            x.tag
        );
        assert_eq!(
            x.location.y.to_bits(),
            y.location.y.to_bits(),
            "{label}: event {i} y"
        );
        assert_eq!(
            x.location.z.to_bits(),
            y.location.z.to_bits(),
            "{label}: event {i} z"
        );
        match (x.stats, y.stats) {
            (None, None) => {}
            (Some(sx), Some(sy)) => {
                assert_eq!(
                    sx.support.to_bits(),
                    sy.support.to_bits(),
                    "{label}: event {i} support"
                );
                for k in 0..3 {
                    assert_eq!(
                        sx.var[k].to_bits(),
                        sy.var[k].to_bits(),
                        "{label}: event {i} var[{k}]"
                    );
                }
            }
            _ => panic!("{label}: event {i} stats presence differs"),
        }
    }
}

fn full_cfg() -> FilterConfig {
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 120;
    cfg.reader_particles = 40;
    cfg.report_delay_epochs = 20;
    cfg
}

#[test]
fn cluster_matches_single_process_for_every_worker_count() {
    let sc = scenario::small_trace(10, 4, 2024);
    let cfg = full_cfg();
    let batches = sc.trace.epoch_batches();
    let mut reference = engine_for(&sc, cfg);
    let expected = run_engine(&mut reference, &batches);
    assert!(
        reference.stats().reader_resamples >= 1,
        "the scenario must exercise the resample/remap exchange"
    );
    assert!(!expected.is_empty(), "the scenario must emit events");
    for n in [1usize, 2, 4] {
        let got = run_cluster(&sc, cfg, n);
        assert_identical(&expected, &got, &format!("{n} workers"));
    }
}

#[test]
fn cluster_is_invariant_to_worker_internals() {
    // inside each worker, thread and shard counts stay cost-only knobs
    let sc = scenario::small_trace(8, 4, 777);
    let cfg = full_cfg();
    let batches = sc.trace.epoch_batches();
    let mut reference = engine_for(&sc, cfg);
    let expected = run_engine(&mut reference, &batches);
    let mut threaded = cfg;
    threaded.worker_threads = 2;
    threaded.num_shards = 3;
    let got = run_cluster(&sc, threaded, 2);
    assert_identical(&expected, &got, "2 workers x 2 threads x 3 shards");
}

#[test]
fn cluster_matches_in_trust_reports_mode() {
    let sc = scenario::small_trace(6, 4, 99);
    let mut cfg = full_cfg();
    cfg.reader_mode = ReaderMode::TrustReports;
    cfg.reader_particles = 1;
    let batches = sc.trace.epoch_batches();
    let mut reference = engine_for(&sc, cfg);
    let expected = run_engine(&mut reference, &batches);
    for n in [1usize, 3] {
        let got = run_cluster(&sc, cfg, n);
        assert_identical(&expected, &got, &format!("trust-reports {n} workers"));
    }
}
