//! Determinism of the execution model: the engine's emitted event
//! stream must be **bit-identical** for every
//! `(worker_threads, num_shards)` combination *and* between the legacy
//! batch path (`run_engine` over `Vec<EpochBatch>`) and the streaming
//! pipeline, because each object step draws from its own
//! `(seed, tag, epoch)` RNG stream and all cross-object side effects
//! (reader support, remap draws, event order) merge in global tag
//! order on the calling thread.

use rfid_core::engine::run_engine;
use rfid_core::{FilterConfig, InferenceEngine};
use rfid_model::sensor::ConeSensor;
use rfid_model::{JointModel, ModelParams};
use rfid_sim::scenario;
use rfid_stream::{LocationEvent, Pipeline};

fn engine_for(
    sc: &scenario::Scenario,
    cfg: FilterConfig,
) -> InferenceEngine<rfid_sim::WarehouseLayout, ConeSensor> {
    let model = JointModel::with_sensor(
        ConeSensor::paper_default(),
        ModelParams::default_warehouse(),
    );
    InferenceEngine::new(model, sc.layout.clone(), sc.trace.shelf_tags.clone(), cfg)
        .expect("valid config")
}

fn run_with_threads(cfg_base: FilterConfig, workers: usize) -> (Vec<LocationEvent>, u64, u64) {
    let sc = scenario::scalability_trace(60, 4242);
    let batches = sc.trace.epoch_batches();
    let mut cfg = cfg_base;
    cfg.worker_threads = workers;
    let mut engine = engine_for(&sc, cfg);
    let events = run_engine(&mut engine, &batches);
    (
        events,
        engine.stats().object_resamples,
        engine.stats().object_updates,
    )
}

/// The same trace, but pulled incrementally through the streaming
/// pipeline (source → synchronizer → sharded engine → sink).
fn run_pipeline_with(cfg_base: FilterConfig, workers: usize, shards: usize) -> Vec<LocationEvent> {
    let sc = scenario::scalability_trace(60, 4242);
    let mut cfg = cfg_base;
    cfg.worker_threads = workers;
    cfg.num_shards = shards;
    let engine = engine_for(&sc, cfg);
    let mut pipeline = Pipeline::new(sc.trace.epoch_len, engine, Vec::new());
    pipeline.run_to_completion(&mut sc.trace.stream());
    let (_, events, _) = pipeline.into_parts();
    events
}

fn assert_identical(a: &[LocationEvent], b: &[LocationEvent], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: event counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.epoch, y.epoch, "{label}: event {i} epoch");
        assert_eq!(x.tag, y.tag, "{label}: event {i} tag");
        // bit-level equality of the floating-point payloads
        assert_eq!(
            x.location.x.to_bits(),
            y.location.x.to_bits(),
            "{label}: event {i} ({:?}) x",
            x.tag
        );
        assert_eq!(
            x.location.y.to_bits(),
            y.location.y.to_bits(),
            "{label}: event {i} y"
        );
        assert_eq!(
            x.location.z.to_bits(),
            y.location.z.to_bits(),
            "{label}: event {i} z"
        );
        let (sx, sy) = (x.stats.expect("stats"), y.stats.expect("stats"));
        assert_eq!(
            sx.support.to_bits(),
            sy.support.to_bits(),
            "{label}: event {i} support"
        );
        for ax in 0..3 {
            assert_eq!(
                sx.var[ax].to_bits(),
                sy.var[ax].to_bits(),
                "{label}: event {i} var[{ax}]"
            );
        }
    }
}

#[test]
fn events_bit_identical_across_worker_threads() {
    let mut cfg = FilterConfig::indexed_default();
    cfg.particles_per_object = 150;
    cfg.reader_particles = 50;
    cfg.report_delay_epochs = 40;
    let (one, resamples_one, updates_one) = run_with_threads(cfg, 1);
    assert!(!one.is_empty(), "trace produced no events");
    for workers in [2usize, 4] {
        let (multi, resamples, updates) = run_with_threads(cfg, workers);
        assert_identical(&one, &multi, &format!("workers={workers}"));
        assert_eq!(
            resamples_one, resamples,
            "workers={workers}: resample counts"
        );
        assert_eq!(updates_one, updates, "workers={workers}: update counts");
    }
}

#[test]
fn full_variant_bit_identical_across_worker_threads() {
    // compression + decompression draw from the per-tag streams too
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 120;
    cfg.reader_particles = 40;
    cfg.report_delay_epochs = 40;
    cfg.compression.idle_epochs = 8;
    let (one, ..) = run_with_threads(cfg, 1);
    let (four, ..) = run_with_threads(cfg, 4);
    assert_identical(&one, &four, "full workers=4");
}

#[test]
fn pipeline_bit_identical_to_legacy_for_every_worker_shard_combination() {
    // the PR 3 acceptance matrix: the streaming pipeline must emit the
    // exact bits of the legacy batch path for worker_threads x
    // num_shards in {1,2,4} x {1,2,8}
    let mut cfg = FilterConfig::indexed_default();
    cfg.particles_per_object = 150;
    cfg.reader_particles = 50;
    cfg.report_delay_epochs = 40;
    let (legacy, ..) = run_with_threads(cfg, 1);
    assert!(!legacy.is_empty(), "trace produced no events");
    for workers in [1usize, 2, 4] {
        for shards in [1usize, 2, 8] {
            let piped = run_pipeline_with(cfg, workers, shards);
            assert_identical(
                &legacy,
                &piped,
                &format!("pipeline workers={workers} shards={shards}"),
            );
        }
    }
}

#[test]
fn full_variant_pipeline_bit_identical_with_shards() {
    // compression + decompression + cooldown scheduling run per shard
    let mut cfg = FilterConfig::full_default();
    cfg.particles_per_object = 120;
    cfg.reader_particles = 40;
    cfg.report_delay_epochs = 40;
    cfg.compression.idle_epochs = 8;
    let (legacy, ..) = run_with_threads(cfg, 1);
    let piped = run_pipeline_with(cfg, 4, 8);
    assert_identical(&legacy, &piped, "full pipeline workers=4 shards=8");
}

#[test]
fn reruns_with_same_seed_are_reproducible() {
    let mut cfg = FilterConfig::indexed_default();
    cfg.particles_per_object = 100;
    cfg.reader_particles = 30;
    cfg.report_delay_epochs = 40;
    let (a, ..) = run_with_threads(cfg, 2);
    let (b, ..) = run_with_threads(cfg, 2);
    assert_identical(&a, &b, "rerun");
}
