//! Pins the fused single-pass hot path to the seed code path.
//!
//! The seed engine stepped each object with three separate calls —
//! `weight` (normalize + deposit support), `maybe_resample` (recompute
//! joint weights, resample), `estimate` (recompute joint weights again)
//! — each recomputing the normalized joint weights and allocating
//! fresh buffers. Those unfused methods are retained as the reference
//! path; this test drives both paths over multi-epoch read/miss
//! sequences and asserts **bit-identical** particle states, estimates,
//! and resample decisions from identical RNG streams.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_core::exec::StepScratch;
use rfid_core::factored::{ObjectFilter, ReaderFilter};
use rfid_geom::{Point3, Pose};
use rfid_model::object::BoxPrior;
use rfid_model::{JointModel, ModelParams};

const NO_PRIOR: Option<&BoxPrior> = None;

fn assert_particles_identical(a: &ObjectFilter, b: &ObjectFilter, epoch: usize) {
    assert_eq!(a.len(), b.len(), "epoch {epoch}: particle counts");
    for (i, (pa, pb)) in a.iter_particles().zip(b.iter_particles()).enumerate() {
        assert_eq!(
            pa.loc.x.to_bits(),
            pb.loc.x.to_bits(),
            "epoch {epoch} particle {i}: loc.x {} vs {}",
            pa.loc.x,
            pb.loc.x
        );
        assert_eq!(
            pa.loc.y.to_bits(),
            pb.loc.y.to_bits(),
            "epoch {epoch} particle {i}: loc.y"
        );
        assert_eq!(
            pa.loc.z.to_bits(),
            pb.loc.z.to_bits(),
            "epoch {epoch} particle {i}: loc.z"
        );
        assert_eq!(
            pa.reader_idx, pb.reader_idx,
            "epoch {epoch} particle {i}: pointer"
        );
        assert_eq!(
            pa.log_w.to_bits(),
            pb.log_w.to_bits(),
            "epoch {epoch} particle {i}: log weight {} vs {}",
            pa.log_w,
            pb.log_w
        );
    }
}

/// Drives the reference (seed) path and the fused path side by side
/// through `epochs` weight/resample/estimate steps under a read/miss
/// schedule, asserting bit-identical outcomes at every step.
fn drive(ess_frac: f64, read_at: fn(usize) -> bool, epochs: usize, seed: u64) -> u64 {
    let m = JointModel::new(ModelParams::default_warehouse());
    let pose = Pose::new(Point3::new(0.0, 0.5, 0.0), 0.1);
    let mut reader_ref = ReaderFilter::new(30, pose);
    let mut reader_fused = ReaderFilter::new(30, pose);

    let mut init_rng = StdRng::seed_from_u64(seed);
    let reference_seed =
        ObjectFilter::init_from_cone(&reader_ref, 5.0, 0.6, 120, 0, NO_PRIOR, &mut init_rng);
    let mut reference = reference_seed.clone();
    let mut fused = reference_seed;

    // identical RNG streams for the two paths
    let mut rng_ref = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut rng_fused = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut scratch = StepScratch::default();
    let mut support = vec![0.0f64; reader_ref.len()];
    // the fused side uses the per-epoch hoisted heading-trig table the
    // engine builds; the reference recomputes sin/cos per particle —
    // the bit-identity assertions below pin the two as equivalent
    let mut trig = Vec::new();
    reader_fused.trig_into(&mut trig);

    let mut resamples = 0;
    for epoch in 0..epochs {
        let read = read_at(epoch);

        // --- reference: the seed three-call sequence ------------------
        reference.weight(&m, &mut reader_ref, read);
        let resampled_ref = reference.maybe_resample(&reader_ref, ess_frac, &mut rng_ref);
        let est_ref = reference.estimate(&reader_ref);

        // --- fused: one pass ------------------------------------------
        support.fill(0.0);
        let out = fused.step_fused(
            &m,
            &reader_fused,
            read,
            ess_frac,
            None,
            Some(&trig),
            &mut scratch,
            &mut support,
            &mut rng_fused,
        );
        reader_fused.merge_support(&support);

        // --- identical results ----------------------------------------
        assert_eq!(
            resampled_ref, out.resampled,
            "epoch {epoch}: resample decision"
        );
        resamples += u64::from(out.resampled);
        assert_particles_identical(&reference, &fused, epoch);
        assert_eq!(
            est_ref.0.x.to_bits(),
            out.estimate.0.x.to_bits(),
            "epoch {epoch}: estimate x {} vs {}",
            est_ref.0.x,
            out.estimate.0.x
        );
        assert_eq!(
            est_ref.0.y.to_bits(),
            out.estimate.0.y.to_bits(),
            "epoch {epoch}: estimate y"
        );
        assert_eq!(
            est_ref.0.z.to_bits(),
            out.estimate.0.z.to_bits(),
            "epoch {epoch}: estimate z"
        );
        for ax in 0..3 {
            assert_eq!(
                est_ref.1[ax].to_bits(),
                out.estimate.1[ax].to_bits(),
                "epoch {epoch}: variance[{ax}]"
            );
        }
        // staged support merges to the same accumulated mass the seed
        // path deposited particle-by-particle (same addends, grouped
        // per object before the running sum — agreement to float noise)
        for (i, (a, b)) in reader_ref
            .particles()
            .iter()
            .zip(reader_fused.particles())
            .enumerate()
        {
            assert_eq!(
                a.log_w.to_bits(),
                b.log_w.to_bits(),
                "epoch {epoch}: reader weight {i}"
            );
        }
    }
    resamples
}

#[test]
fn fused_step_equals_seed_path_on_read_heavy_trace() {
    let resamples = drive(0.5, |e| e % 3 != 2, 25, 11);
    assert!(
        resamples >= 1,
        "trace should exercise the resampling branch"
    );
}

#[test]
fn fused_step_equals_seed_path_on_miss_heavy_trace() {
    drive(0.5, |e| e % 5 == 0, 25, 12);
}

#[test]
fn fused_step_equals_seed_path_resample_always() {
    // ess_frac = 1.0 resamples every step (the Ng et al. scheme):
    // maximal exercise of the in-place reorder path
    let resamples = drive(1.0, |e| e % 2 == 0, 20, 13);
    assert_eq!(resamples, 20);
}

#[test]
fn fused_support_mass_matches_seed_deposits() {
    // one fused step's staged support row carries exactly the mass the
    // seed path deposits: total 1 (the joint weights are normalized)
    let m = JointModel::new(ModelParams::default_warehouse());
    let reader = ReaderFilter::new(20, Pose::identity());
    let mut rng = StdRng::seed_from_u64(7);
    let mut f = ObjectFilter::init_from_cone(&reader, 4.0, 0.5, 200, 0, NO_PRIOR, &mut rng);
    let mut scratch = StepScratch::default();
    let mut support = vec![0.0f64; reader.len()];
    f.step_fused(
        &m,
        &reader,
        true,
        0.5,
        None,
        None,
        &mut scratch,
        &mut support,
        &mut rng,
    );
    let total: f64 = support.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "staged support mass {total}");
}

/// The quantized likelihood table is the one *deliberate* numeric
/// deviation from the exact path: drive the same trace with and without
/// it and check the estimates agree to the quantization scale, while
/// two table runs from the same seed agree bit-for-bit (the table is
/// deterministic, so the contract "same config → same bits" holds).
#[test]
fn table_path_is_deterministic_and_close_to_exact() {
    use rfid_model::table::LikelihoodTable;

    let m = JointModel::new(ModelParams::default_warehouse());
    let table = LikelihoodTable::build(&m.sensor, 10.0, 0.05, 0.02);

    let run = |table: Option<&LikelihoodTable>| -> Vec<(Point3, bool)> {
        let reader = ReaderFilter::new(25, Pose::new(Point3::new(0.0, 0.5, 0.0), 0.1));
        let mut rng = StdRng::seed_from_u64(21);
        let mut f = ObjectFilter::init_from_cone(&reader, 5.0, 0.6, 300, 0, NO_PRIOR, &mut rng);
        let mut scratch = StepScratch::default();
        let mut support = vec![0.0f64; reader.len()];
        let mut out = Vec::new();
        for epoch in 0..20 {
            let read = epoch % 3 != 2;
            support.fill(0.0);
            let o = f.step_fused(
                &m,
                &reader,
                read,
                0.5,
                table,
                None,
                &mut scratch,
                &mut support,
                &mut rng,
            );
            out.push((o.estimate.0, o.resampled));
        }
        out
    };

    let exact = run(None);
    let quant = run(Some(&table));
    let quant2 = run(Some(&table));
    for (i, (a, b)) in quant.iter().zip(&quant2).enumerate() {
        assert_eq!(
            a.0.x.to_bits(),
            b.0.x.to_bits(),
            "epoch {i}: table determinism"
        );
        assert_eq!(
            a.0.y.to_bits(),
            b.0.y.to_bits(),
            "epoch {i}: table determinism"
        );
        assert_eq!(a.1, b.1, "epoch {i}: table resample determinism");
    }
    for (i, (e, q)) in exact.iter().zip(&quant).enumerate() {
        let gap = e.0.dist(&q.0);
        assert!(
            gap < 0.5,
            "epoch {i}: table estimate drifted {gap} ft from exact ({:?} vs {:?})",
            e.0,
            q.0
        );
    }
}
