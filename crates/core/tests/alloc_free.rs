//! Verifies the acceptance criterion that the steady-state object step
//! performs **zero heap allocations** for an active, non-resampling
//! object: a counting global allocator brackets the hot path
//! (pointer refresh → predict → fused weight/estimate) after a warm-up
//! step has grown the scratch buffers.
//!
//! The bracket also covers the observability layer: every metric kind
//! (counter add, gauge high-water, histogram record) and the
//! slow-epoch threshold gate are exercised inside the measured loop
//! against pre-registered handles — instrumentation must stay atomic
//! operations only, never an allocation.
//!
//! This file contains exactly one `#[test]` so no concurrent test can
//! disturb the allocation counter.

// The workspace denies unsafe code; a global allocator shim is the one
// place a counting test cannot avoid it. The implementation only
// forwards to `System` around an atomic counter.
#![allow(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_core::exec::StepScratch;
use rfid_core::factored::{ObjectFilter, ReaderFilter};
use rfid_geom::{Point3, Pose};
use rfid_model::object::BoxPrior;
use rfid_model::{JointModel, ModelParams};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_object_step_allocates_nothing() {
    let model = JointModel::new(ModelParams::default_warehouse());
    let prior = BoxPrior::new(rfid_geom::Aabb::new(
        Point3::new(-20.0, -20.0, 0.0),
        Point3::new(20.0, 20.0, 0.0),
    ));
    let reader = ReaderFilter::new(50, Pose::identity());
    let mut rng = StdRng::seed_from_u64(99);
    let mut filter =
        ObjectFilter::init_from_cone(&reader, 4.0, 0.6, 500, 0, Some(&prior), &mut rng);
    let mut scratch = StepScratch::default();
    let mut support = vec![0.0f64; reader.len()];
    // the engine builds this once per epoch and shares it
    let mut cdf = Vec::new();
    reader.sampling_cdf_into(&mut cdf);

    // metric handles registered before measurement (registration
    // allocates once; recording must not allocate at all)
    let reg = rfid_obs::global();
    let steps_total = reg.counter("alloc_free_steps_total");
    let step_stamp_hw = reg.gauge("alloc_free_stamp_high_water");
    let step_us = reg.histogram("alloc_free_step_us");

    // built before measurement, shared by the table-path steps below
    let table = rfid_model::table::LikelihoodTable::build(&model.sensor, 10.0, 0.05, 0.02);
    // per-epoch heading-trig table (reused buffer, like the engine's)
    let mut trig = Vec::new();
    reader.trig_into(&mut trig);

    // warm-up: grows the joint/probs/counts and grouping buffers to the
    // particle count (a resampling step warms the counts buffer too)
    filter.refresh_pointers_with(&reader, &cdf, 1, &mut rng);
    filter.step_fused(
        &model,
        &reader,
        true,
        1.0, // force one resample so scratch.counts is sized
        None,
        None,
        &mut scratch,
        &mut support,
        &mut rng,
    );

    // measured steady state: pointer refresh + predict + fused step
    // over several epochs. ess_frac = 0.0 never resamples (the
    // criterion is about the active, non-resampling steady state;
    // resampling itself is also in-place and allocation-free, but the
    // post-resample estimate recompute is exercised above instead).
    //
    // The counter is process-global, and the libtest harness thread may
    // allocate concurrently (it is idle while a test runs, but not
    // provably silent under machine load). A real hot-path allocation
    // fires on *every* attempt, so retry a few times and require one
    // clean pass.
    let mut best = usize::MAX;
    for attempt in 0..3 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for stamp in 2..12u64 {
            let stamp = stamp + attempt * 100;
            let read = stamp % 2 == 0;
            // alternate the exact and table likelihood paths: both must
            // be allocation-free (the table is immutable plain data —
            // lookups cannot allocate, and the shared scratch is warm)
            let table = if stamp % 3 == 0 { Some(&table) } else { None };
            // alternate the hoisted-trig and inline-sincos paths: both
            // must be allocation-free
            let trig = if stamp % 2 == 0 {
                Some(&trig[..])
            } else {
                None
            };
            filter.refresh_pointers_with(&reader, &cdf, stamp, &mut rng);
            filter.predict(&model, &prior, read, &mut rng);
            support.fill(0.0);
            let out = filter.step_fused(
                &model,
                &reader,
                read,
                0.0,
                table,
                trig,
                &mut scratch,
                &mut support,
                &mut rng,
            );
            assert!(!out.resampled);
            assert!(out.estimate.0.x.is_finite());
            // the full instrumentation surface, inside the bracket:
            // every record path and the engine's slow-epoch gate
            steps_total.inc();
            step_stamp_hw.record_max(stamp);
            step_us.record(stamp);
            assert_eq!(rfid_obs::trace().slow_epoch_us(), 0);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "steady-state step_object hot path allocated {best} times on every attempt"
    );
}
