//! The output policy of §II-A.
//!
//! "To avoid fluctuating values in the output, our system outputs an
//! event for an object only at particular points: for example, within x
//! seconds after an object was read, upon completion of a shelf scan,
//! or upon completion of a full area scan." The evaluation uses
//! "60 seconds after an object came into the scope of the reader during
//! the current scan".
//!
//! [`OutputPolicy`] tracks per-object scope entry and due times. An
//! object *enters scope* when it is read after a long silence (a new
//! scan pass); it becomes *due* `report_delay` epochs later, or at
//! trace end, whichever comes first.

use rfid_stream::{Epoch, TagId};
use std::collections::HashMap;

/// Scope bookkeeping for one object.
#[derive(Debug, Clone, Copy)]
struct ScopeState {
    entered: Epoch,
    last_read: Epoch,
    reported: bool,
}

/// The event-emission policy.
#[derive(Debug, Clone)]
pub struct OutputPolicy {
    report_delay: u64,
    /// A read after this many silent epochs starts a new scan pass.
    pass_gap: u64,
    states: HashMap<TagId, ScopeState>,
}

impl OutputPolicy {
    /// Creates the policy: events are due `report_delay` epochs after
    /// scope entry; a read after `pass_gap` silent epochs counts as a
    /// new pass (and allows re-reporting).
    pub fn new(report_delay: u64, pass_gap: u64) -> Self {
        Self {
            report_delay,
            pass_gap,
            states: HashMap::new(),
        }
    }

    /// Records that `tag` was read at `epoch`. Returns true when this
    /// read started a new pass (useful for diagnostics).
    pub fn on_read(&mut self, tag: TagId, epoch: Epoch) -> bool {
        match self.states.get_mut(&tag) {
            Some(s) => {
                let new_pass = epoch.since(s.last_read) > self.pass_gap;
                s.last_read = epoch;
                if new_pass {
                    s.entered = epoch;
                    s.reported = false;
                }
                new_pass
            }
            None => {
                self.states.insert(
                    tag,
                    ScopeState {
                        entered: epoch,
                        last_read: epoch,
                        reported: false,
                    },
                );
                true
            }
        }
    }

    /// Objects whose report is due at `epoch` (entered scope exactly
    /// `report_delay` epochs ago, not yet reported this pass). Marks
    /// them reported.
    pub fn due(&mut self, epoch: Epoch) -> Vec<TagId> {
        let mut out = Vec::new();
        self.due_into(epoch, &mut out);
        out
    }

    /// [`OutputPolicy::due`] into a caller-owned buffer (cleared first),
    /// sorted by tag.
    pub fn due_into(&mut self, epoch: Epoch, out: &mut Vec<TagId>) {
        out.clear();
        for (tag, s) in self.states.iter_mut() {
            if !s.reported && epoch.since(s.entered) >= self.report_delay {
                s.reported = true;
                out.push(*tag);
            }
        }
        out.sort_unstable();
    }

    /// Objects still unreported (end-of-trace flush). Marks them
    /// reported.
    pub fn flush(&mut self) -> Vec<TagId> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// [`OutputPolicy::flush`] into a caller-owned buffer (cleared
    /// first), sorted by tag.
    pub fn flush_into(&mut self, out: &mut Vec<TagId>) {
        out.clear();
        for (tag, s) in self.states.iter_mut() {
            if !s.reported {
                s.reported = true;
                out.push(*tag);
            }
        }
        out.sort_unstable();
    }

    /// Number of objects ever seen.
    pub fn num_objects(&self) -> usize {
        self.states.len()
    }

    /// Checkpoint view of the per-object scope states as
    /// `(tag, entered, last_read, reported)` rows, sorted by tag.
    pub fn snapshot_states(&self) -> Vec<(TagId, Epoch, Epoch, bool)> {
        let mut rows: Vec<_> = self
            .states
            .iter()
            .map(|(tag, s)| (*tag, s.entered, s.last_read, s.reported))
            .collect();
        rows.sort_unstable_by_key(|r| r.0);
        rows
    }

    /// Replaces the per-object scope states with checkpointed rows
    /// (the inverse of [`snapshot_states`](Self::snapshot_states)).
    pub fn restore_states<I>(&mut self, rows: I)
    where
        I: IntoIterator<Item = (TagId, Epoch, Epoch, bool)>,
    {
        self.states.clear();
        for (tag, entered, last_read, reported) in rows {
            self.states.insert(
                tag,
                ScopeState {
                    entered,
                    last_read,
                    reported,
                },
            );
        }
    }

    /// Epoch at which `tag` last entered scope.
    pub fn entered_at(&self, tag: TagId) -> Option<Epoch> {
        self.states.get(&tag).map(|s| s.entered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_enters_scope() {
        let mut p = OutputPolicy::new(60, 120);
        assert!(p.on_read(TagId(1), Epoch(5)));
        assert_eq!(p.entered_at(TagId(1)), Some(Epoch(5)));
        assert_eq!(p.num_objects(), 1);
    }

    #[test]
    fn due_fires_after_delay_once() {
        let mut p = OutputPolicy::new(60, 120);
        p.on_read(TagId(1), Epoch(0));
        assert!(p.due(Epoch(59)).is_empty());
        assert_eq!(p.due(Epoch(60)), vec![TagId(1)]);
        assert!(p.due(Epoch(61)).is_empty(), "must not double-report");
    }

    #[test]
    fn continued_reads_do_not_restart_the_clock() {
        let mut p = OutputPolicy::new(60, 120);
        p.on_read(TagId(1), Epoch(0));
        for e in 1..50 {
            assert!(!p.on_read(TagId(1), Epoch(e)));
        }
        assert_eq!(p.due(Epoch(60)), vec![TagId(1)]);
    }

    #[test]
    fn new_pass_after_gap_allows_rereport() {
        let mut p = OutputPolicy::new(60, 120);
        p.on_read(TagId(1), Epoch(0));
        assert_eq!(p.due(Epoch(60)), vec![TagId(1)]);
        // long silence, then read again: new pass
        assert!(p.on_read(TagId(1), Epoch(300)));
        assert!(p.due(Epoch(310)).is_empty());
        assert_eq!(p.due(Epoch(360)), vec![TagId(1)]);
    }

    #[test]
    fn flush_reports_pending_only() {
        let mut p = OutputPolicy::new(60, 120);
        p.on_read(TagId(1), Epoch(0));
        p.on_read(TagId(2), Epoch(10));
        assert_eq!(p.due(Epoch(60)), vec![TagId(1)]);
        assert_eq!(p.flush(), vec![TagId(2)]);
        assert!(p.flush().is_empty());
    }

    #[test]
    fn due_is_sorted_and_complete() {
        let mut p = OutputPolicy::new(10, 120);
        p.on_read(TagId(3), Epoch(0));
        p.on_read(TagId(1), Epoch(0));
        p.on_read(TagId(2), Epoch(0));
        assert_eq!(p.due(Epoch(10)), vec![TagId(1), TagId(2), TagId(3)]);
    }
}
