//! The spatial-indexing enhancement (§IV-C), wired for the engine.
//!
//! Per epoch the engine must process exactly the objects of Cases 1
//! and 2 of Fig. 4(a):
//!
//! * **Case 1** — objects read this epoch (wherever they are);
//! * **Case 2** — objects not read now but read before *near the
//!   current reader location*, so that their particles close to the
//!   reader can be down-weighted by the miss.
//!
//! Cases 3 (never read here) and 4 (far away and silent) are skipped —
//! the far-miss likelihood is rounded to one, "a good approximation".
//!
//! [`SpatialHook`] wraps the [`RegionIndex`] with the bounding-box
//! construction: each epoch's sensing region is approximated by a cube
//! of the (overestimated) sensor range around the reader estimate, and
//! recorded with the objects that had at least one particle inside it.

use rfid_geom::{Aabb, Point3, Pose};
use rfid_spatial::RegionIndex;
use rfid_stream::TagId;
use std::collections::BTreeSet;

/// The bounding box of the sensing region at `pose` for a sensor of
/// (overestimated) detection range `range`. The sensing region is a
/// forward cone, so the box is centered half a range ahead of the
/// reader along its heading, with a half-extent just over half the
/// range (10% pad for the cone's lateral spread and minor-range reads
/// slightly behind the boresight plane).
///
/// A free function — the box depends only on the range and the pose,
/// so the engine computes it without consulting (or rebuilding) a
/// [`SpatialHook`].
pub fn sensing_box(range: f64, pose: &Pose) -> Aabb {
    let ahead = rfid_geom::angles::heading_vec(pose.phi) * (0.5 * range);
    Aabb::cube(pose.pos + ahead, 0.55 * range)
}

/// Engine-facing wrapper around the region index.
#[derive(Debug, Clone)]
pub struct SpatialHook {
    index: RegionIndex<TagId>,
    /// Half-extent of the sensing-region bounding box, feet.
    range: f64,
}

impl SpatialHook {
    /// Creates a hook with sensing-region half-extent `range` (use the
    /// sensor's overestimated detection range).
    pub fn new(range: f64) -> Self {
        assert!(range > 0.0);
        Self {
            index: RegionIndex::new(),
            range,
        }
    }

    /// The bounding box of the sensing region at `pose` (see the free
    /// [`sensing_box`] — this method uses the hook's stored range).
    pub fn sensing_box(&self, pose: &Pose) -> Aabb {
        sensing_box(self.range, pose)
    }

    /// The Case 2 candidate set for the current sensing box: objects
    /// recorded in any overlapping past region.
    pub fn candidates(&self, current: &Aabb) -> BTreeSet<TagId> {
        self.index.query_objects(current)
    }

    /// [`candidates`](Self::candidates) appended into a caller-owned
    /// buffer (unsorted, may contain duplicates across regions) — the
    /// engine's per-epoch path, which sorts and dedups its active-set
    /// `Vec` once instead of paying a `BTreeSet` per epoch.
    pub fn candidates_into(&self, current: &Aabb, out: &mut Vec<TagId>) {
        self.index.query_objects_into(current, out);
    }

    /// Records this epoch's sensing region with its member objects
    /// (those with at least one particle inside the box).
    pub fn record<I: IntoIterator<Item = TagId>>(&mut self, bbox: Aabb, members: I) {
        self.index.insert_region(bbox, members);
    }

    /// Checks which of `(tag, particle locations)` have at least one
    /// particle inside `bbox` — the membership rule of Fig. 4(b).
    pub fn members_of<'a>(
        bbox: &Aabb,
        clouds: impl Iterator<Item = (TagId, &'a [Point3])>,
    ) -> Vec<TagId> {
        let mut out = Vec::new();
        for (tag, locs) in clouds {
            if locs.iter().any(|l| bbox.contains(l)) {
                out.push(tag);
            }
        }
        out
    }

    /// Number of recorded regions (diagnostics).
    pub fn num_regions(&self) -> usize {
        self.index.num_regions()
    }

    /// The bounding box of recorded region `id` (region ids are dense:
    /// `0..num_regions()`, in insertion order) — checkpointing.
    pub fn region_box(&self, id: u64) -> Aabb {
        self.index.region_box(id)
    }

    /// The member set of recorded region `id` — checkpointing.
    /// Replaying `record(region_box(id), region_members(id))` for ids
    /// in order reproduces the hook exactly.
    pub fn region_members(&self, id: u64) -> &[TagId] {
        self.index.region_members(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pose(x: f64, y: f64) -> Pose {
        Pose::new(Point3::new(x, y, 0.0), 0.0)
    }

    #[test]
    fn sensing_box_covers_forward_cone() {
        // heading +x: the box must cover the reader position through the
        // full range ahead, but not far behind or far beyond.
        let h = SpatialHook::new(4.0);
        let b = h.sensing_box(&pose(1.0, 2.0));
        assert!(b.contains(&Point3::new(1.0, 2.0, 0.0))); // reader itself
        assert!(b.contains(&Point3::new(4.9, 2.0, 0.0))); // near max range
        assert!(!b.contains(&Point3::new(5.5, 2.0, 0.0))); // beyond range+pad
        assert!(!b.contains(&Point3::new(-1.0, 2.0, 0.0))); // well behind
    }

    #[test]
    fn sensing_box_follows_heading() {
        let h = SpatialHook::new(4.0);
        let west = Pose::new(Point3::new(0.0, 0.0, 0.0), std::f64::consts::PI);
        let b = h.sensing_box(&west);
        assert!(b.contains(&Point3::new(-3.9, 0.0, 0.0)));
        assert!(!b.contains(&Point3::new(3.0, 0.0, 0.0)));
    }

    #[test]
    fn case2_returned_case4_skipped() {
        let mut h = SpatialHook::new(2.0);
        // object 1 recorded near y = 0, object 2 near y = 100
        h.record(h.sensing_box(&pose(0.0, 0.0)), [TagId(1)]);
        h.record(h.sensing_box(&pose(0.0, 100.0)), [TagId(2)]);
        let current = h.sensing_box(&pose(0.0, 1.0));
        let c = h.candidates(&current);
        assert!(c.contains(&TagId(1)), "case-2 object missing");
        assert!(!c.contains(&TagId(2)), "case-4 object should be skipped");
    }

    #[test]
    fn members_of_requires_particle_inside() {
        let bbox = Aabb::cube(Point3::origin(), 1.0);
        let inside = vec![Point3::new(0.5, 0.0, 0.0), Point3::new(5.0, 0.0, 0.0)];
        let outside = vec![Point3::new(5.0, 5.0, 0.0)];
        let clouds = vec![
            (TagId(1), inside.as_slice()),
            (TagId(2), outside.as_slice()),
        ];
        let members = SpatialHook::members_of(&bbox, clouds.into_iter());
        assert_eq!(members, vec![TagId(1)]);
    }

    #[test]
    fn overlapping_history_unions() {
        let mut h = SpatialHook::new(2.0);
        for i in 0..10u64 {
            h.record(h.sensing_box(&pose(0.0, i as f64)), [TagId(i)]);
        }
        assert_eq!(h.num_regions(), 10);
        let c = h.candidates(&h.sensing_box(&pose(0.0, 5.0)));
        // regions centered at y in [1, 9] overlap a box around y = 5
        assert!(c.len() >= 5, "got {c:?}");
        assert!(c.contains(&TagId(5)));
        assert!(!c.contains(&TagId(0)) || c.contains(&TagId(1)));
    }
}
