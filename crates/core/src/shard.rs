//! Object-state shards: the unit of state ownership in the engine.
//!
//! The engine partitions object state by `tag % num_shards`. Each shard
//! owns everything whose lifetime follows its objects — the belief map,
//! the per-epoch read/active scratch sets, the output policy, and the
//! compression cooldown queue — so a shard is self-contained and can
//! later be moved behind a channel or onto another node without
//! touching the others.
//!
//! # Determinism rule (extends the PR 2 contract)
//!
//! Sharding must never change the emitted event stream: results are
//! **bit-identical for every `(worker_threads, num_shards)`
//! combination**. Two properties make that hold:
//!
//! 1. per-object work only depends on `(seed, tag, epoch)` RNG streams
//!    and the frozen reader — *where* an object's state lives cannot
//!    matter;
//! 2. every cross-shard side effect (reader support merges, reader
//!    remap draws, event emission) is staged per shard and merged in
//!    **global tag order**: the per-shard sorted tag lists are disjoint
//!    residue classes, so a k-way merge reproduces exactly the order a
//!    single shard would have produced.
//!
//! Rule 2 is what future scaling work must preserve: never fold
//! shard-staged floating-point effects in shard order (that order
//! changes with `num_shards`); always merge through [`merge_by_tag`].

use crate::compression::CompressedBelief;
use crate::factored::ObjectFilter;
use crate::output::OutputPolicy;
use rfid_geom::Point3;
use rfid_stream::{Epoch, TagId};
use std::collections::{BTreeMap, HashMap};

/// One object's belief representation.
// Compressed is the larger variant but keeps dormant objects heap-free;
// Active dominates during tracking and already owns a particle Vec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Belief {
    Active(ObjectFilter),
    Compressed(CompressedBelief),
}

#[derive(Debug, Clone)]
pub(crate) struct ObjectState {
    pub belief: Belief,
    pub last_estimate: (Point3, [f64; 3]),
    pub last_read: Epoch,
    /// Epoch at which the compression sweep should next consider this
    /// object (0 = no check queued). Bumped on every *read* epoch
    /// (Case-2 activity does not reset the clock) and on failed
    /// compression attempts, so the cooldown queue holds at most one
    /// live entry per tag instead of one per active epoch.
    pub compression_due: u64,
}

/// Current-state counters of one shard, refreshed after every batch and
/// exposed through [`crate::EngineStats::per_shard`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounts {
    /// Objects tracked by this shard.
    pub objects: usize,
    /// Objects currently in compressed representation.
    pub compressed: usize,
    /// Live entries in this shard's compression cooldown queue.
    pub cooldown_entries: usize,
}

/// One shard: the object states of a `tag % num_shards` residue class
/// plus every per-object structure that follows them.
#[derive(Debug)]
pub(crate) struct Shard {
    pub objects: HashMap<TagId, ObjectState>,
    /// Emission policy for this shard's objects.
    pub policy: OutputPolicy,
    /// Compression schedule: epoch -> objects to check (at most one
    /// live entry per tag; see `ObjectState::compression_due`).
    pub cooldown: BTreeMap<u64, Vec<TagId>>,
    /// Live entries across `cooldown` (maintained incrementally so the
    /// per-epoch stats refresh is O(1)).
    pub cooldown_len: usize,
    /// Objects currently compressed (maintained incrementally).
    pub compressed: usize,
    // --- reusable per-epoch scratch ---
    /// Sorted object tags of this shard read this epoch.
    pub object_read: Vec<TagId>,
    /// Sorted active set (Cases 1–2) of this shard this epoch.
    pub active: Vec<TagId>,
    /// Due-tag scratch for the emission merge.
    pub due: Vec<TagId>,
}

impl Shard {
    pub fn new(policy: OutputPolicy) -> Self {
        Self {
            objects: HashMap::new(),
            policy,
            cooldown: BTreeMap::new(),
            cooldown_len: 0,
            compressed: 0,
            object_read: Vec::new(),
            active: Vec::new(),
            due: Vec::new(),
        }
    }

    pub fn counts(&self) -> ShardCounts {
        ShardCounts {
            objects: self.objects.len(),
            compressed: self.compressed,
            cooldown_entries: self.cooldown_len,
        }
    }
}

/// The shard owning `tag` under `num_shards`-way partitioning.
#[inline]
pub(crate) fn shard_index(num_shards: u64, tag: TagId) -> usize {
    (tag.0 % num_shards) as usize
}

/// Merges per-shard sorted, disjoint tag lists (selected by `select`)
/// into `out` in **global tag order** — the canonical merge order every
/// cross-shard effect must use (see the module docs). `pos` is reusable
/// cursor scratch.
pub(crate) fn merge_by_tag<F>(
    shards: &[Shard],
    select: F,
    pos: &mut Vec<usize>,
    out: &mut Vec<TagId>,
) where
    F: Fn(&Shard) -> &[TagId],
{
    out.clear();
    if shards.len() == 1 {
        out.extend_from_slice(select(&shards[0]));
        return;
    }
    pos.clear();
    pos.resize(shards.len(), 0);
    let total: usize = shards.iter().map(|s| select(s).len()).sum();
    for _ in 0..total {
        let mut best: Option<(TagId, usize)> = None;
        for (i, s) in shards.iter().enumerate() {
            if let Some(&t) = select(s).get(pos[i]) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let (_, i) = best.expect("total items counted above");
        out.push(select(&shards[i])[pos[i]]);
        pos[i] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_with_active(tags: &[u64]) -> Shard {
        let mut s = Shard::new(OutputPolicy::new(1, 2));
        s.active = tags.iter().map(|t| TagId(*t)).collect();
        s
    }

    #[test]
    fn merge_by_tag_reproduces_global_sort() {
        // residue classes mod 3, each sorted
        let shards = vec![
            shard_with_active(&[0, 3, 9]),
            shard_with_active(&[1, 4, 7]),
            shard_with_active(&[2, 5]),
        ];
        let mut pos = Vec::new();
        let mut out = Vec::new();
        merge_by_tag(&shards, |s| &s.active, &mut pos, &mut out);
        let got: Vec<u64> = out.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 7, 9]);
    }

    #[test]
    fn merge_by_tag_single_shard_is_identity() {
        let shards = vec![shard_with_active(&[2, 5, 8])];
        let mut pos = Vec::new();
        let mut out = vec![TagId(99)];
        merge_by_tag(&shards, |s| &s.active, &mut pos, &mut out);
        let got: Vec<u64> = out.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![2, 5, 8]);
    }

    #[test]
    fn merge_by_tag_handles_empty_shards() {
        let shards = vec![
            shard_with_active(&[]),
            shard_with_active(&[1]),
            shard_with_active(&[]),
        ];
        let mut pos = Vec::new();
        let mut out = Vec::new();
        merge_by_tag(&shards, |s| &s.active, &mut pos, &mut out);
        assert_eq!(out, vec![TagId(1)]);
    }

    #[test]
    fn shard_index_partitions_by_residue() {
        assert_eq!(shard_index(1, TagId(17)), 0);
        assert_eq!(shard_index(4, TagId(17)), 1);
        assert_eq!(shard_index(4, TagId(16)), 0);
    }
}
