//! The basic, unfactorized particle filter of §IV-A.
//!
//! Every particle is a *joint* hypothesis: one reader pose plus one
//! location per object (the `x_t^(j) = (R, O_1 ... O_n)` of the paper).
//! The weight update multiplies the location-report likelihood, the
//! shelf-tag likelihoods, and the sensor likelihood of every object —
//! so a particle that is good for most objects but bad for one is bad,
//! which is exactly the curse Fig. 3(a) illustrates and particle
//! factorization removes. The filter is retained as the baseline of the
//! scalability study (Fig. 5(i)/(j)); the paper could not push it past
//! 20 objects.

use crate::config::FilterConfig;
use crate::error::ConfigError;
use crate::factored::object::sample_cone_in_prior;
use crate::output::OutputPolicy;
use crate::particle::{effective_sample_size, log_normalize, systematic_resample};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Point3, Pose, Vec3};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_model::JointModel;
use rfid_stream::{Epoch, EpochBatch, EventStats, LocationEvent, TagId};
use std::collections::{BTreeSet, HashMap};

#[derive(Debug, Clone)]
struct JointParticle {
    reader: Pose,
    /// One location per registered object, indexed densely.
    objects: Vec<Point3>,
    log_w: f64,
}

/// Unfactorized joint particle filter, generic like the engine.
pub struct BasicParticleFilter<P: LocationPrior, S: ReadRateModel = rfid_model::LogisticSensorModel>
{
    model: JointModel<S>,
    prior: P,
    config: FilterConfig,
    shelf_tags: Vec<(TagId, Point3)>,
    shelf_ids: BTreeSet<TagId>,
    particles: Vec<JointParticle>,
    /// Dense registry of objects in the order first seen.
    tags: Vec<TagId>,
    index_of: HashMap<TagId, usize>,
    policy: OutputPolicy,
    rng: StdRng,
    range_over: f64,
    last_report: Option<Pose>,
    initialized: bool,
    resamples: u64,
}

impl<P: LocationPrior, S: ReadRateModel> BasicParticleFilter<P, S> {
    /// Builds the filter with `num_particles` joint particles.
    /// `config.particles_per_object` is ignored; pass the joint count in
    /// `num_particles` (the paper needed 100,000 for 20 objects).
    pub fn new(
        model: JointModel<S>,
        prior: P,
        shelf_tags: Vec<(TagId, Point3)>,
        config: FilterConfig,
        num_particles: usize,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if num_particles == 0 {
            return Err(ConfigError::new("num_particles must be >= 1"));
        }
        let range_over = (model.sensor.detection_range(0.02) * config.init_range_overestimate)
            .min(config.max_init_range);
        let shelf_ids = shelf_tags.iter().map(|(t, _)| *t).collect();
        let uniform = -(num_particles as f64).ln();
        Ok(Self {
            model,
            prior,
            shelf_ids,
            shelf_tags,
            particles: vec![
                JointParticle {
                    reader: Pose::identity(),
                    objects: Vec::new(),
                    log_w: uniform,
                };
                num_particles
            ],
            tags: Vec::new(),
            index_of: HashMap::new(),
            policy: OutputPolicy::new(
                config.report_delay_epochs,
                config.report_delay_epochs.saturating_mul(2),
            ),
            rng: StdRng::seed_from_u64(config.seed),
            range_over,
            last_report: None,
            initialized: false,
            resamples: 0,
            config,
        })
    }

    /// Number of joint particles.
    pub fn num_particles(&self) -> usize {
        self.particles.len()
    }

    /// Number of registered objects.
    pub fn num_objects(&self) -> usize {
        self.tags.len()
    }

    /// Resampling events so far.
    pub fn resample_count(&self) -> u64 {
        self.resamples
    }

    /// Posterior-mean estimate for an object.
    pub fn object_estimate(&self, tag: TagId) -> Option<(Point3, [f64; 3])> {
        let idx = *self.index_of.get(&tag)?;
        let mut mean = Vec3::zero();
        for p in &self.particles {
            mean += p.objects[idx].to_vec() * p.log_w.exp();
        }
        let mean = mean.to_point();
        let mut var = [0.0; 3];
        for p in &self.particles {
            let w = p.log_w.exp();
            let l = &p.objects[idx];
            var[0] += w * (l.x - mean.x) * (l.x - mean.x);
            var[1] += w * (l.y - mean.y) * (l.y - mean.y);
            var[2] += w * (l.z - mean.z) * (l.z - mean.z);
        }
        Some((mean, var))
    }

    /// Posterior-mean reader pose.
    pub fn reader_estimate(&self) -> Pose {
        let mut pos = Vec3::zero();
        let (mut s, mut c) = (0.0, 0.0);
        for p in &self.particles {
            let w = p.log_w.exp();
            pos += p.reader.pos.to_vec() * w;
            s += w * p.reader.phi.sin();
            c += w * p.reader.phi.cos();
        }
        Pose::new(pos.to_point(), s.atan2(c))
    }

    /// Processes one epoch batch.
    pub fn process_batch(&mut self, batch: &EpochBatch) -> Vec<LocationEvent> {
        let epoch = batch.epoch;
        let report = batch.reader_report;

        // partition readings
        let mut shelf_read: BTreeSet<TagId> = BTreeSet::new();
        let mut object_read: Vec<TagId> = Vec::new();
        for tag in &batch.readings {
            if self.shelf_ids.contains(tag) {
                shelf_read.insert(*tag);
            } else {
                object_read.push(*tag);
            }
        }

        // objects read this epoch (computed early: the object-dynamics
        // proposal below relocates only read objects — see
        // ObjectFilter::predict for the rationale)
        let read_idx_early: std::collections::BTreeSet<usize> = batch
            .readings
            .iter()
            .filter_map(|t| self.index_of.get(t).copied())
            .collect();

        // ---- proposal ------------------------------------------------
        if !self.initialized {
            let start = report.unwrap_or_else(Pose::identity);
            for p in &mut self.particles {
                p.reader = start;
            }
            self.initialized = true;
        } else {
            let odom = match (self.last_report, report) {
                (Some(prev), Some(cur)) => Some(cur.pos - prev.pos),
                _ => None,
            };
            let params = *self.model.motion.params();
            let delta = odom.unwrap_or(params.delta);
            for p in &mut self.particles {
                let noise = Vec3::new(
                    params.sigma.x * rfid_geom::standard_normal(&mut self.rng),
                    params.sigma.y * rfid_geom::standard_normal(&mut self.rng),
                    params.sigma.z * rfid_geom::standard_normal(&mut self.rng),
                );
                let phi = report.map(|r| r.phi).unwrap_or(p.reader.phi);
                p.reader = Pose::new(p.reader.pos + delta + noise, phi);
                // object dynamics: relocation proposed only for read
                // objects (their read likelihood weights it immediately)
                for (idx, loc) in p.objects.iter_mut().enumerate() {
                    if read_idx_early.contains(&idx) {
                        *loc = self
                            .model
                            .object
                            .sample_next(loc, &self.prior, &mut self.rng);
                    }
                }
            }
        }
        if let Some(r) = report {
            self.last_report = Some(r);
        }

        // ---- register new objects ------------------------------------
        for tag in &object_read {
            if !self.index_of.contains_key(tag) {
                let idx = self.tags.len();
                self.tags.push(*tag);
                self.index_of.insert(*tag, idx);
                for pi in 0..self.particles.len() {
                    let pose = self.particles[pi].reader;
                    let loc = sample_cone_in_prior(
                        &pose,
                        self.range_over,
                        self.config.init_cone_half_angle,
                        Some(&self.prior),
                        &mut self.rng,
                    );
                    self.particles[pi].objects.push(loc);
                }
            }
            self.policy.on_read(*tag, epoch);
        }
        let read_idx: BTreeSet<usize> = object_read
            .iter()
            .filter_map(|t| self.index_of.get(t).copied())
            .collect();

        // ---- weighting (the full Eq. 3 product) ----------------------
        for p in &mut self.particles {
            let mut lw =
                self.model
                    .reader_log_weight(&p.reader, report.as_ref(), std::iter::empty());
            for (tag, loc) in &self.shelf_tags {
                // evaluate every shelf tag: the basic filter makes no
                // spatial approximations (that is the point)
                lw += self
                    .model
                    .sensor
                    .log_likelihood(&p.reader, loc, shelf_read.contains(tag));
            }
            for (idx, loc) in p.objects.iter().enumerate() {
                lw += self
                    .model
                    .object_log_weight(&p.reader, loc, read_idx.contains(&idx));
            }
            p.log_w += lw;
        }
        let mut w: Vec<f64> = self.particles.iter().map(|p| p.log_w).collect();
        log_normalize(&mut w);
        for (p, nw) in self.particles.iter_mut().zip(&w) {
            p.log_w = *nw;
        }

        // ---- resample -------------------------------------------------
        let n = self.particles.len();
        if effective_sample_size(&w) < self.config.resample_ess_frac * n as f64 {
            let ancestry = systematic_resample(&w, n, &mut self.rng);
            let uniform = -(n as f64).ln();
            let old = std::mem::take(&mut self.particles);
            self.particles = ancestry
                .into_iter()
                .map(|i| JointParticle {
                    log_w: uniform,
                    ..old[i as usize].clone()
                })
                .collect();
            self.resamples += 1;
        }

        // ---- events ---------------------------------------------------
        let mut events = Vec::new();
        for tag in self.policy.due(epoch) {
            if let Some((loc, var)) = self.object_estimate(tag) {
                events.push(LocationEvent::new(epoch, tag, loc).with_stats(EventStats {
                    var,
                    support: self.particles.len() as f64,
                }));
            }
        }
        events
    }

    /// Flushes pending reports at end of trace.
    pub fn finalize(&mut self, epoch: Epoch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        for tag in self.policy.flush() {
            if let Some((loc, var)) = self.object_estimate(tag) {
                events.push(LocationEvent::new(epoch, tag, loc).with_stats(EventStats {
                    var,
                    support: self.particles.len() as f64,
                }));
            }
        }
        events
    }
}

impl<P: LocationPrior, S: ReadRateModel> rfid_stream::pipeline::InferenceStage
    for BasicParticleFilter<P, S>
{
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
        out.extend(self.process_batch(batch));
    }

    fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>) {
        out.extend(self.finalize(last_epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Aabb;
    use rfid_model::object::BoxPrior;
    use rfid_model::ModelParams;

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 40.0, 0.0),
        ))
    }

    fn filter(n: usize) -> BasicParticleFilter<BoxPrior> {
        let model = JointModel::new(ModelParams::default_warehouse());
        let mut cfg = FilterConfig::factored_default();
        cfg.report_delay_epochs = 10;
        BasicParticleFilter::new(model, prior(), vec![], cfg, n).unwrap()
    }

    fn batch(epoch: u64, reader_y: f64, tags: &[u64]) -> EpochBatch {
        EpochBatch {
            epoch: Epoch(epoch),
            readings: tags.iter().map(|t| TagId(*t)).collect(),
            reader_report: Some(Pose::new(Point3::new(0.0, reader_y, 0.0), 0.0)),
        }
    }

    #[test]
    fn rejects_zero_particles() {
        let model = JointModel::new(ModelParams::default_warehouse());
        assert!(BasicParticleFilter::new(
            model,
            prior(),
            vec![],
            FilterConfig::factored_default(),
            0
        )
        .is_err());
    }

    #[test]
    fn single_object_estimate_converges() {
        // reads generated from the same sensor model the filter uses
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let model = JointModel::new(ModelParams::default_warehouse());
        let mut f = filter(2000);
        let truth = Point3::new(2.0, 3.0, 0.0);
        let mut events = Vec::new();
        for t in 0..50u64 {
            let y = t as f64 * 0.1;
            let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
            let read = rng.gen::<f64>() < model.sensor.p_read(&pose, &truth);
            let tags: Vec<u64> = if read { vec![7] } else { vec![] };
            events.extend(f.process_batch(&batch(t, y, &tags)));
        }
        events.extend(f.finalize(Epoch(50)));
        let ev: Vec<_> = events.iter().filter(|e| e.tag == TagId(7)).collect();
        assert!(!ev.is_empty());
        let err = ev[0].location.dist_xy(&truth);
        assert!(err < 1.2, "error {err} at {:?}", ev[0].location);
    }

    #[test]
    fn registry_grows_with_new_tags() {
        let mut f = filter(100);
        f.process_batch(&batch(0, 0.0, &[1, 2, 3]));
        assert_eq!(f.num_objects(), 3);
        f.process_batch(&batch(1, 0.1, &[2, 4]));
        assert_eq!(f.num_objects(), 4);
        // every particle carries all four object hypotheses
        assert!(f.particles.iter().all(|p| p.objects.len() == 4));
    }

    #[test]
    fn more_particles_help_at_high_object_count() {
        // the motivating effect of §IV-B: the joint filter needs a large
        // particle count to stay accurate when many objects are tracked
        // (a particle good for most objects may be bad for one).
        use rand::{Rng, SeedableRng};
        let model = JointModel::new(ModelParams::default_warehouse());
        let run = |particles: usize, seed: u64| -> f64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut f = filter(particles);
            let num_objects = 12usize;
            let spacing = 2.0;
            let truths: Vec<Point3> = (0..num_objects)
                .map(|i| Point3::new(2.0, (i as f64 + 0.5) * spacing, 0.0))
                .collect();
            for t in 0..(num_objects as u64 * 20 + 20) {
                let y = t as f64 * 0.1;
                let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
                let tags: Vec<u64> = truths
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| rng.gen::<f64>() < model.sensor.p_read(&pose, p))
                    .map(|(i, _)| i as u64)
                    .collect();
                f.process_batch(&batch(t, y, &tags));
            }
            let mut err = 0.0;
            for (i, truth) in truths.iter().enumerate() {
                let (est, _) = f.object_estimate(TagId(i as u64)).unwrap();
                err += est.dist_xy(truth);
            }
            err / num_objects as f64
        };
        // average over seeds: the effect is statistical, not per-run
        let seeds = [11u64, 22, 33];
        let small: f64 = seeds.iter().map(|&s| run(60, s)).sum::<f64>() / 3.0;
        let large: f64 = seeds.iter().map(|&s| run(2000, s)).sum::<f64>() / 3.0;
        assert!(
            small > large,
            "a small joint-particle budget should hurt at 12 objects: {small} vs {large}"
        );
    }
}
