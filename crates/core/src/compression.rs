//! Belief compression (§IV-D).
//!
//! A stabilized object belief — a particle cloud that has settled into
//! a small region — is replaced by the KL-optimal Gaussian (weighted
//! sample mean and empirical covariance; 9 numbers instead of ~1000
//! particles). When the object is encountered again, the Gaussian is
//! *decompressed* by drawing a small number of particles (10 in the
//! paper), "because the compressed representation tends to be
//! well-behaved". If all objects were compressed this would be the
//! Boyen–Koller algorithm; compressing selectively combines the
//! Gaussian and particle representations.

use crate::factored::object::ObjectFilter;
use crate::factored::reader::ReaderFilter;
use crate::particle::ObjectParticle;
use rand::Rng;
use rfid_geom::{Gaussian3, Point3};
use rfid_stream::Epoch;

/// A compressed object belief.
#[derive(Debug, Clone)]
pub struct CompressedBelief {
    /// The fitted Gaussian.
    pub gaussian: Gaussian3,
    /// Compression loss: cross-entropy of the Gaussian under the cloud
    /// it replaced (nats). Low = little information lost.
    pub loss: f64,
    /// When the belief was compressed.
    pub compressed_at: Epoch,
}

impl CompressedBelief {
    /// Fits the KL-optimal Gaussian to a weighted cloud. `None` when
    /// the cloud carries no weight.
    pub fn compress(cloud: &[(f64, Point3)], epoch: Epoch) -> Option<Self> {
        let gaussian = Gaussian3::fit_weighted(cloud)?;
        let loss = gaussian.cross_entropy(cloud);
        Some(Self {
            gaussian,
            loss,
            compressed_at: epoch,
        })
    }

    /// The location estimate of the compressed belief (the Gaussian
    /// mean) with its per-axis variances.
    pub fn estimate(&self) -> (Point3, [f64; 3]) {
        (
            self.gaussian.mean,
            [
                self.gaussian.cov.m[0][0],
                self.gaussian.cov.m[1][1],
                self.gaussian.cov.m[2][2],
            ],
        )
    }

    /// Decompression: draws `n` particles from the Gaussian with
    /// uniform weights, pointing at reader particles sampled by weight.
    pub fn decompress<R: Rng + ?Sized>(
        &self,
        n: usize,
        reader: &ReaderFilter,
        stamp: u64,
        rng: &mut R,
    ) -> ObjectFilter {
        assert!(n >= 1);
        let uniform = -(n as f64).ln();
        let particles: Vec<ObjectParticle> = (0..n)
            .map(|_| ObjectParticle {
                loc: self.gaussian.sample(rng),
                reader_idx: reader.sample_index(rng),
                log_w: uniform,
            })
            .collect();
        ObjectFilter::from_particles(particles, stamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_geom::Pose;

    fn tight_cloud(center: Point3, n: usize) -> Vec<(f64, Point3)> {
        (0..n)
            .map(|i| {
                let dx = ((i % 7) as f64 - 3.0) * 0.01;
                let dy = ((i % 5) as f64 - 2.0) * 0.01;
                (
                    1.0 / n as f64,
                    Point3::new(center.x + dx, center.y + dy, center.z),
                )
            })
            .collect()
    }

    #[test]
    fn compress_preserves_mean() {
        let center = Point3::new(3.0, 4.0, 0.0);
        let cloud = tight_cloud(center, 100);
        let c = CompressedBelief::compress(&cloud, Epoch(7)).unwrap();
        assert!(c.gaussian.mean.dist(&center) < 0.05);
        assert_eq!(c.compressed_at, Epoch(7));
        let (est, var) = c.estimate();
        assert!(est.dist(&center) < 0.05);
        assert!(var[0] >= 0.0 && var[0] < 0.01);
    }

    #[test]
    fn compress_empty_cloud_is_none() {
        assert!(CompressedBelief::compress(&[], Epoch(0)).is_none());
        assert!(CompressedBelief::compress(&[(0.0, Point3::origin())], Epoch(0)).is_none());
    }

    #[test]
    fn tighter_cloud_compresses_with_lower_loss() {
        let tight = tight_cloud(Point3::origin(), 100);
        let wide: Vec<(f64, Point3)> = (0..100)
            .map(|i| (0.01, Point3::new((i % 10) as f64, (i / 10) as f64, 0.0)))
            .collect();
        let ct = CompressedBelief::compress(&tight, Epoch(0)).unwrap();
        let cw = CompressedBelief::compress(&wide, Epoch(0)).unwrap();
        assert!(ct.loss < cw.loss);
    }

    #[test]
    fn decompress_recovers_location() {
        let mut rng = StdRng::seed_from_u64(1);
        let center = Point3::new(5.0, 5.0, 0.0);
        let cloud = tight_cloud(center, 200);
        let c = CompressedBelief::compress(&cloud, Epoch(0)).unwrap();
        let reader = ReaderFilter::new(10, Pose::identity());
        let f = c.decompress(10, &reader, 3, &mut rng);
        assert_eq!(f.len(), 10);
        let (est, _) = f.estimate(&reader);
        assert!(est.dist(&center) < 0.2, "decompressed estimate {est:?}");
    }

    #[test]
    fn roundtrip_compress_decompress_compress() {
        // compress -> decompress -> re-compress keeps the mean stable
        let mut rng = StdRng::seed_from_u64(2);
        let center = Point3::new(-2.0, 8.0, 0.0);
        let cloud = tight_cloud(center, 500);
        let c1 = CompressedBelief::compress(&cloud, Epoch(0)).unwrap();
        let reader = ReaderFilter::new(10, Pose::identity());
        let f = c1.decompress(50, &reader, 0, &mut rng);
        let cloud2 = f.weighted_cloud(&reader);
        let c2 = CompressedBelief::compress(&cloud2, Epoch(1)).unwrap();
        assert!(c1.gaussian.mean.dist(&c2.gaussian.mean) < 0.1);
    }
}
