//! Deterministic execution of per-object updates — sequential or
//! parallel, same bits.
//!
//! The factored decomposition (Eq. 5) makes the per-epoch object
//! updates independent given the reader filter: each object only reads
//! the (frozen) reader particle list and mutates its own particle set.
//! This module supplies the three ingredients the engine needs to
//! exploit that without giving up reproducibility:
//!
//! 1. **Per-task RNG streams** ([`task_rng`]): every object step draws
//!    from its own `StdRng` seeded from `(master_seed, tag, epoch)`.
//!    The random numbers an object consumes are therefore a function of
//!    *what* is being stepped, not of *when or where* it runs — the
//!    emitted event stream is bit-identical for any `worker_threads`,
//!    including 1 (the default).
//! 2. **Scratch buffers** ([`StepScratch`], [`WorkerScratch`]): the
//!    joint-weight buffer, the resampling-count buffer, and the staged
//!    reader-support matrix are owned per worker and reused across
//!    epochs, so the steady-state step path performs no heap
//!    allocation.
//! 3. **A deterministic fork/join primitive** ([`parallel_chunks`],
//!    [`chunk_ranges`]): tasks are partitioned into contiguous chunks
//!    (`std::thread::scope`, no dependencies), and side effects that
//!    must merge into shared state (reader support, engine statistics)
//!    are *staged* per task and folded back on the calling thread in
//!    task order — the floating-point reduction order is fixed
//!    regardless of the worker count.
//!
//! Choosing `worker_threads`: object stepping is compute-bound (sensor
//! likelihoods per particle), so a good default for large workloads is
//! the number of physical cores, capped by the typical active-set size
//! — workers beyond `|active set|` idle. Small active sets (spatial
//! indexing at its best) are dominated by the reader update; keep
//! `worker_threads = 1` there and spend the cores across engine shards
//! instead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Per-worker scratch for one object step: the normalized joint-weight
/// buffer, its exponentiated mirror, the systematic-resampling count
/// buffer, and the per-reader grouping buffers of the batched weight
/// pass. Buffers grow to the particle/reader count on first use and
/// are reused afterwards.
#[derive(Debug, Default, Clone)]
pub struct StepScratch {
    /// Joint (object × reader) weights, log space — the single
    /// per-step weight pass lives here.
    pub joint: Vec<f64>,
    /// `joint` in probability space (`joint[i].exp()`), computed once
    /// per pass and shared by the support staging, the ESS decision,
    /// and the moment estimate.
    pub probs: Vec<f64>,
    /// Systematic-resampling replication counts.
    pub counts: Vec<u32>,
    /// Particle indices grouped by reader pointer (counting-sort
    /// output): the batched likelihood pass walks one reader cone's
    /// particles at a time.
    pub order: Vec<u32>,
    /// Start offset of each reader's group in `order`
    /// (`reader.len() + 1` entries; group `j` is
    /// `order[group_start[j]..group_start[j + 1]]`).
    pub group_start: Vec<u32>,
    /// Counting-sort write cursors (`reader.len()` entries).
    pub cursors: Vec<u32>,
}

/// Everything one worker owns across its chunk of object steps.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Step buffers (joint weights, resample counts).
    pub step: StepScratch,
    /// Staged reader support: one dense `reader.len()`-sized row per
    /// task in this worker's chunk, merged into the reader filter in
    /// global task order after the join.
    pub staged_support: Vec<f64>,
}

/// Mixes `(master_seed, tag, epoch)` into a single seed word with a
/// SplitMix64-style avalanche, so neighbouring tags and epochs land in
/// unrelated streams.
pub fn stream_seed(master_seed: u64, tag: u64, epoch: u64) -> u64 {
    let mut h = master_seed ^ 0x9E37_79B9_7F4A_7C15;
    for word in [tag, epoch] {
        h ^= word.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 29;
    }
    h
}

/// The RNG for one object step: a fresh `StdRng` on the
/// `(master_seed, tag, epoch)` stream.
pub fn task_rng(master_seed: u64, tag: u64, epoch: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(master_seed, tag, epoch))
}

/// Splits `0..n` into `workers` contiguous near-equal ranges (the first
/// `n % workers` ranges are one longer). Ranges can be empty when
/// `workers > n`; the partition depends only on `(n, workers)`.
pub fn chunk_ranges(n: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    let workers = workers.max(1);
    let base = n / workers;
    let rem = n % workers;
    (0..workers).map(move |i| {
        let start = i * base + i.min(rem);
        let len = base + usize::from(i < rem);
        start..start + len
    })
}

/// Runs `f` over every task, fanning the tasks out across
/// `scratches.len()` workers in contiguous chunks. `f` receives the
/// task's *global* index, its *chunk-local* index (the row into any
/// per-chunk staging buffer), the task, and the worker's scratch.
///
/// With one worker (or one task) everything runs on the calling thread
/// — no spawn, no overhead. Correctness does not depend on the worker
/// count: any cross-task side effects must be staged inside the task or
/// scratch and merged by the caller afterwards.
pub fn parallel_chunks<T, W, F>(tasks: &mut [T], scratches: &mut [W], f: F)
where
    T: Send,
    W: Send,
    F: Fn(usize, usize, &mut T, &mut W) + Sync,
{
    let workers = scratches.len().min(tasks.len()).max(1);
    if workers <= 1 {
        let scratch = scratches.first_mut().expect("at least one scratch");
        for (i, task) in tasks.iter_mut().enumerate() {
            f(i, i, task, scratch);
        }
        return;
    }
    let n = tasks.len();
    std::thread::scope(|scope| {
        let mut rest = tasks;
        let mut scratch_rest = scratches;
        let f = &f;
        let mut first: Option<(&mut [T], &mut W, usize)> = None;
        for range in chunk_ranges(n, workers) {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let (scratch, scratch_tail) = scratch_rest.split_first_mut().expect("worker scratch");
            scratch_rest = scratch_tail;
            let start = range.start;
            if first.is_none() {
                // the calling thread works the first chunk itself
                // instead of idling behind `workers` spawns
                first = Some((chunk, scratch, start));
                continue;
            }
            scope.spawn(move || {
                for (local, task) in chunk.iter_mut().enumerate() {
                    f(start + local, local, task, scratch);
                }
            });
        }
        let (chunk, scratch, start) = first.expect("workers >= 2 implies a first chunk");
        for (local, task) in chunk.iter_mut().enumerate() {
            f(start + local, local, task, scratch);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17, 100] {
            for workers in [1usize, 2, 3, 4, 7] {
                let ranges: Vec<_> = chunk_ranges(n, workers).collect();
                assert_eq!(ranges.len(), workers);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous n={n} w={workers}");
                    next = r.end;
                }
                assert_eq!(next, n, "complete n={n} w={workers}");
                let (max, min) = (
                    ranges.iter().map(|r| r.len()).max().unwrap(),
                    ranges.iter().map(|r| r.len()).min().unwrap(),
                );
                assert!(max - min <= 1, "balanced n={n} w={workers}");
            }
        }
    }

    #[test]
    fn stream_seeds_distinct_and_stable() {
        let a = stream_seed(7, 1, 1);
        assert_eq!(a, stream_seed(7, 1, 1), "pure function");
        // neighbouring tags/epochs/seeds all diverge
        assert_ne!(a, stream_seed(7, 2, 1));
        assert_ne!(a, stream_seed(7, 1, 2));
        assert_ne!(a, stream_seed(8, 1, 1));
        // tag/epoch must not be interchangeable
        assert_ne!(stream_seed(7, 3, 5), stream_seed(7, 5, 3));
    }

    #[test]
    fn task_rng_streams_are_independent_of_worker_count() {
        // the same tasks produce the same draws whether run on 1, 2, or
        // 4 workers
        let run = |workers: usize| -> Vec<u64> {
            let mut tasks: Vec<(u64, u64)> = (0..13).map(|t| (t, 0)).collect();
            let mut scratches: Vec<WorkerScratch> =
                (0..workers).map(|_| WorkerScratch::default()).collect();
            parallel_chunks(&mut tasks, &mut scratches, |_, _, task, _| {
                task.1 = task_rng(42, task.0, 9).gen::<u64>();
            });
            tasks.into_iter().map(|(_, draw)| draw).collect()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn parallel_chunks_preserves_task_order_side_effects() {
        let mut tasks: Vec<usize> = vec![0; 101];
        let mut scratches: Vec<WorkerScratch> = (0..4).map(|_| WorkerScratch::default()).collect();
        parallel_chunks(&mut tasks, &mut scratches, |i, _, task, _| {
            *task = i * 3;
        });
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(*t, i * 3);
        }
    }
}
