//! Filter configuration.

use crate::error::ConfigError;

/// How the engine treats reader location reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReaderMode {
    /// Maintain a reader particle filter (the paper's system; "motion
    /// model On" in Fig. 5(g)).
    Filter,
    /// Take the reported location as the true location ("motion model
    /// Off"); no reader particles, no correction from shelf tags.
    TrustReports,
}

/// Belief-compression policy (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Compress an object once its tag has been silent for this many
    /// epochs *and* it left the active (processed) set.
    pub idle_epochs: u64,
    /// Only compress when the cross-entropy of the fitted Gaussian
    /// under the particle cloud is below this threshold (nats); `inf`
    /// disables the check. Low values compress only well-behaved,
    /// tight clouds.
    pub max_cross_entropy: f64,
    /// Particles drawn when decompressing (the paper uses 10).
    pub decompressed_particles: usize,
}

impl CompressionPolicy {
    /// Compression off.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            idle_epochs: u64::MAX,
            max_cross_entropy: f64::INFINITY,
            decompressed_particles: 10,
        }
    }

    /// The paper's operating point: compress whenever an object leaves
    /// the reader's scope, decompress with 10 particles.
    pub fn paper_default() -> Self {
        Self {
            enabled: true,
            idle_epochs: 10,
            max_cross_entropy: f64::INFINITY,
            decompressed_particles: 10,
        }
    }
}

/// Quantized likelihood-table policy (`rfid_model::table`).
///
/// When enabled, the engine builds one immutable log-likelihood grid
/// over `(distance, bearing)` at the first inference step and the
/// batched weight pass reads cells instead of evaluating the sensor's
/// `exp()` per particle. Off by default: the table trades a bounded
/// quantization error (half a cell times the model's Lipschitz
/// constants) for speed, which is a good deal for smooth logistic
/// sensors and a bad one for hard-edged ground-truth cones — and the
/// golden traces are pinned to the exact path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LikelihoodTableConfig {
    /// Master switch.
    pub enabled: bool,
    /// Distance bin width, feet.
    pub d_step: f64,
    /// Bearing bin width, radians.
    pub theta_step: f64,
}

impl LikelihoodTableConfig {
    /// Table off (the default; exact likelihoods everywhere).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            d_step: 0.05,
            theta_step: 0.02,
        }
    }

    /// Table on with the given bin widths.
    pub fn with_steps(d_step: f64, theta_step: f64) -> Self {
        Self {
            enabled: true,
            d_step,
            theta_step,
        }
    }
}

/// Full configuration of the inference engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Particles per object (the paper's factored filter uses 1000).
    pub particles_per_object: usize,
    /// Reader particles.
    pub reader_particles: usize,
    /// Resample a particle set when its effective sample size falls
    /// below this fraction of the set size.
    pub resample_ess_frac: f64,
    /// Multiplier on the sensor detection range when initializing
    /// particles in a cone at the reader ("chosen to be an overestimate
    /// of the true range").
    pub init_range_overestimate: f64,
    /// Half-angle (radians) of the particle-initialization cone. Like
    /// the range, this should overestimate the sensor's angular width
    /// (paper cone: 15° major + 15° minor half-angle; default adds 5°).
    pub init_cone_half_angle: f64,
    /// Hard cap on the initialization range in feet, applied after the
    /// overestimate factor. Learned sensor models on geometries that
    /// cannot identify distance decay (tags all at one standoff) can
    /// report enormous detection ranges; the cap keeps the
    /// initialization cone physical.
    pub max_init_range: f64,
    /// A re-detection farther than this from the current estimate
    /// respawns half of the object's particles at the new location
    /// (§IV-A's "keep half of the old particles and move the other
    /// half"). In feet.
    pub respawn_distance: f64,
    /// Below this re-detection distance the existing particles are
    /// simply reweighted ("if the distance ... is very small, we just
    /// use the existing particles"). In feet.
    pub small_move_distance: f64,
    /// Reader handling mode.
    pub reader_mode: ReaderMode,
    /// Use the spatial index to restrict per-epoch work (§IV-C).
    pub use_spatial_index: bool,
    /// Belief compression policy (§IV-D).
    pub compression: CompressionPolicy,
    /// Quantized likelihood-table policy. Changes the weights the
    /// filter computes (within the documented quantization bound), so
    /// it is part of the checkpoint config fingerprint.
    pub likelihood_table: LikelihoodTableConfig,
    /// Epochs after first entering reader scope at which the object's
    /// location event is emitted (the paper reports 60 s after an
    /// object comes into scope).
    pub report_delay_epochs: u64,
    /// RNG seed for the engine.
    pub seed: u64,
    /// Worker threads for the per-object update fan-out (`rfid_core::exec`).
    /// Per-object RNG streams are seeded from `(seed, tag, epoch)`, so
    /// the emitted events are bit-identical for every value, including
    /// the default of 1 (fully sequential, no threads spawned). See the
    /// `exec` module docs for guidance on picking a value.
    pub worker_threads: usize,
    /// Shards the object state is partitioned into (`tag % num_shards`;
    /// `rfid_core::shard`). Each shard owns its objects, output policy,
    /// and compression cooldown. Like `worker_threads`, this changes
    /// cost only: emitted events are bit-identical for every
    /// `(worker_threads, num_shards)` combination.
    pub num_shards: usize,
}

impl FilterConfig {
    /// The factored filter at the paper's operating point, without
    /// spatial indexing or compression.
    pub fn factored_default() -> Self {
        Self {
            particles_per_object: 1000,
            reader_particles: 100,
            resample_ess_frac: 0.5,
            init_range_overestimate: 1.25,
            max_init_range: 10.0,
            init_cone_half_angle: 35f64.to_radians(),
            respawn_distance: 2.0,
            small_move_distance: 0.25,
            reader_mode: ReaderMode::Filter,
            use_spatial_index: false,
            compression: CompressionPolicy::disabled(),
            likelihood_table: LikelihoodTableConfig::disabled(),
            report_delay_epochs: 60,
            seed: 0x5eed,
            worker_threads: 1,
            num_shards: 1,
        }
    }

    /// Factored + spatial index.
    pub fn indexed_default() -> Self {
        Self {
            use_spatial_index: true,
            ..Self::factored_default()
        }
    }

    /// Factored + spatial index + belief compression — the full system.
    pub fn full_default() -> Self {
        Self {
            use_spatial_index: true,
            compression: CompressionPolicy::paper_default(),
            ..Self::factored_default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.particles_per_object == 0 {
            return Err(ConfigError::new("particles_per_object must be >= 1"));
        }
        if self.reader_particles == 0 {
            return Err(ConfigError::new("reader_particles must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.resample_ess_frac) {
            return Err(ConfigError::new("resample_ess_frac must lie in [0, 1]"));
        }
        if self.init_range_overestimate < 1.0 {
            return Err(ConfigError::new(
                "init_range_overestimate must be >= 1 (an overestimate)",
            ));
        }
        if self.max_init_range <= 0.0 {
            return Err(ConfigError::new("max_init_range must be positive"));
        }
        if self.respawn_distance < self.small_move_distance {
            return Err(ConfigError::new(
                "respawn_distance must be >= small_move_distance",
            ));
        }
        if self.compression.enabled && self.compression.decompressed_particles == 0 {
            return Err(ConfigError::new(
                "decompressed_particles must be >= 1 when compression is on",
            ));
        }
        if self.likelihood_table.enabled {
            let t = &self.likelihood_table;
            if !(t.d_step > 0.0 && t.d_step.is_finite()) {
                return Err(ConfigError::new(
                    "likelihood_table.d_step must be positive and finite",
                ));
            }
            if !(t.theta_step > 0.0 && t.theta_step.is_finite()) {
                return Err(ConfigError::new(
                    "likelihood_table.theta_step must be positive and finite",
                ));
            }
        }
        if self.worker_threads == 0 {
            return Err(ConfigError::new("worker_threads must be >= 1"));
        }
        if self.num_shards == 0 {
            return Err(ConfigError::new("num_shards must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FilterConfig::factored_default().validate().unwrap();
        FilterConfig::indexed_default().validate().unwrap();
        FilterConfig::full_default().validate().unwrap();
    }

    #[test]
    fn full_default_stacks_enhancements() {
        let c = FilterConfig::full_default();
        assert!(c.use_spatial_index);
        assert!(c.compression.enabled);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = FilterConfig::factored_default();
        c.particles_per_object = 0;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.resample_ess_frac = 1.5;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.init_range_overestimate = 0.5;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.respawn_distance = 0.1;
        c.small_move_distance = 0.5;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::full_default();
        c.compression.decompressed_particles = 0;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.worker_threads = 0;
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.likelihood_table = LikelihoodTableConfig::with_steps(0.0, 0.02);
        assert!(c.validate().is_err());

        let mut c = FilterConfig::factored_default();
        c.likelihood_table = LikelihoodTableConfig::with_steps(0.05, f64::NAN);
        assert!(c.validate().is_err());

        // the same invalid steps are fine while the table is off
        let mut c = FilterConfig::factored_default();
        c.likelihood_table.d_step = 0.0;
        assert!(c.validate().is_ok());

        let mut c = FilterConfig::factored_default();
        c.num_shards = 0;
        assert!(c.validate().is_err());
    }
}
