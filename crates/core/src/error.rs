//! Error types for the inference crate.

use std::fmt;

/// An invalid filter configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    pub(crate) fn new(message: &'static str) -> Self {
        Self { message }
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("boom");
        assert!(e.to_string().contains("boom"));
        assert_eq!(e.message(), "boom");
    }
}
