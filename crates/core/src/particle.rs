//! Particle types and weight arithmetic shared by every filter variant.
//!
//! Weights live in log space while being accumulated (sensor and
//! sensing likelihoods multiply many small numbers) and are normalized
//! with log-sum-exp. Resampling is *systematic* (one uniform draw, `n`
//! evenly spaced pointers), the standard low-variance scheme.

use rand::Rng;
use rfid_geom::{Point3, Pose};

/// A hypothesis about the reader pose, with a factored log weight
/// (`w_rt` in Eq. 5).
#[derive(Debug, Clone, Copy)]
pub struct ReaderParticle {
    pub pose: Pose,
    pub log_w: f64,
}

/// A hypothesis about one object's location, with a pointer to the
/// reader particle it was weighted against (Fig. 3(b)) and a factored
/// log weight (`w_ti` in Eq. 5).
#[derive(Debug, Clone, Copy)]
pub struct ObjectParticle {
    pub loc: Point3,
    /// Index into the reader particle list.
    pub reader_idx: u32,
    pub log_w: f64,
}

/// Normalizes log weights in place so that `sum(exp(w)) == 1`.
/// Returns the log normalizer (useful as an incremental evidence
/// estimate). All `-inf` weights (impossible particles) stay `-inf`;
/// if *every* weight is `-inf` the weights are reset to uniform and
/// `None` is returned (total particle depletion).
pub fn log_normalize(log_w: &mut [f64]) -> Option<f64> {
    let max = log_w.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        let u = -(log_w.len() as f64).ln();
        for w in log_w.iter_mut() {
            *w = u;
        }
        return None;
    }
    let sum: f64 = log_w.iter().map(|w| (w - max).exp()).sum();
    let log_z = max + sum.ln();
    for w in log_w.iter_mut() {
        *w -= log_z;
    }
    Some(log_z)
}

/// Effective sample size of normalized log weights:
/// `1 / sum(w_i^2)`. Ranges from 1 (degenerate) to `n` (uniform).
///
/// # Contract
///
/// The input **must** be normalized (`sum(exp(w)) == 1`, e.g. via
/// [`log_normalize`]); on unnormalized input the result is meaningless
/// — it silently scales with the square of the stray normalizer. The
/// contract is checked with a `debug_assert!` so debug/test builds
/// catch violations while release builds pay nothing.
///
/// Each squared weight is computed as `exp(w) * exp(w)` — not
/// `exp(2w)` — so the result is bit-identical to
/// [`effective_sample_size_probs`] over the exponentiated weights.
/// This lets the fused step reuse its probability buffer for the
/// resample decision (no second `exp` pass) while the unfused
/// reference path, which calls this function, decides identically.
pub fn effective_sample_size(log_w: &[f64]) -> f64 {
    debug_assert!(
        log_w.is_empty() || {
            let total: f64 = log_w.iter().map(|w| w.exp()).sum();
            (total - 1.0).abs() < 1e-6
        },
        "effective_sample_size requires normalized log weights"
    );
    let sum_sq: f64 = log_w
        .iter()
        .map(|w| {
            let p = w.exp();
            p * p
        })
        .sum();
    if sum_sq > 0.0 {
        1.0 / sum_sq
    } else {
        0.0
    }
}

/// [`effective_sample_size`] over probability-space weights that were
/// already exponentiated (`probs[i] == log_w[i].exp()`): a pure
/// multiply-add reduction the hot path runs against its reusable
/// probability buffer. Same normalization contract, same result bits
/// as the log-space version over the corresponding log weights.
pub fn effective_sample_size_probs(probs: &[f64]) -> f64 {
    debug_assert!(
        probs.is_empty() || (probs.iter().sum::<f64>() - 1.0).abs() < 1e-6,
        "effective_sample_size_probs requires normalized weights"
    );
    let sum_sq: f64 = probs.iter().map(|p| p * p).sum();
    if sum_sq > 0.0 {
        1.0 / sum_sq
    } else {
        0.0
    }
}

/// Systematic resampling: draws `n` ancestor indices from the
/// categorical distribution given by normalized log weights.
pub fn systematic_resample<R: Rng + ?Sized>(log_w: &[f64], n: usize, rng: &mut R) -> Vec<u32> {
    debug_assert!(!log_w.is_empty());
    let mut out = Vec::with_capacity(n);
    let step = 1.0 / n as f64;
    let mut u = rng.gen::<f64>() * step;
    let mut cum = 0.0;
    let mut i = 0usize;
    let mut w_i = log_w[0].exp();
    for _ in 0..n {
        while cum + w_i < u && i + 1 < log_w.len() {
            cum += w_i;
            i += 1;
            w_i = log_w[i].exp();
        }
        out.push(i as u32);
        u += step;
    }
    out
}

/// Streaming variant of [`effective_sample_size`] over an iterator of
/// normalized log weights — same `debug_assert!`-checked normalization
/// contract, without materializing a buffer. Keeps the original
/// `exp(2w)` form: its results land in emitted event statistics
/// (`ObjectFilter::object_ess`) pinned by the golden traces, so its
/// bit pattern must not change with the hot path's `exp(w)²`
/// restructuring (the two differ by at most an ulp per term).
pub fn effective_sample_size_iter<I: Iterator<Item = f64> + Clone>(log_w: I) -> f64 {
    debug_assert!(
        {
            let mut probe = log_w.clone().map(f64::exp).peekable();
            probe.peek().is_none() || (probe.sum::<f64>() - 1.0).abs() < 1e-6
        },
        "effective_sample_size_iter requires normalized log weights"
    );
    let sum_sq: f64 = log_w.map(|w| (2.0 * w).exp()).sum();
    if sum_sq > 0.0 {
        1.0 / sum_sq
    } else {
        0.0
    }
}

/// In-place [`log_normalize`] over a projected weight field — identical
/// arithmetic (including the total-depletion uniform reset) applied
/// directly to a particle array instead of a collected buffer. The one
/// implementation both filters' hot paths normalize through.
pub fn log_normalize_by<T>(
    items: &mut [T],
    get: impl Fn(&T) -> f64,
    mut set: impl FnMut(&mut T, f64),
) {
    let max = items.iter().map(&get).fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        let u = -(items.len() as f64).ln();
        for it in items.iter_mut() {
            set(it, u);
        }
        return;
    }
    let sum: f64 = items.iter().map(|it| (get(it) - max).exp()).sum();
    let log_z = max + sum.ln();
    for it in items.iter_mut() {
        let w = get(it) - log_z;
        set(it, w);
    }
}

/// Systematic resampling into per-source replication counts: after the
/// call, `counts[i]` is the number of times particle `i` appears in the
/// resampled set. Consumes exactly one RNG draw and selects the same
/// ancestors as [`systematic_resample`] (whose ancestry vector is the
/// non-decreasing sequence `i` repeated `counts[i]` times) — but fills
/// a caller-owned buffer instead of allocating, which combined with
/// [`reorder_by_counts`] makes resampling allocation-free.
pub fn systematic_resample_counts<R: Rng + ?Sized>(
    log_w: &[f64],
    n: usize,
    counts: &mut Vec<u32>,
    rng: &mut R,
) {
    debug_assert!(!log_w.is_empty());
    counts.clear();
    counts.resize(log_w.len(), 0);
    let step = 1.0 / n as f64;
    let mut u = rng.gen::<f64>() * step;
    let mut cum = 0.0;
    let mut i = 0usize;
    let mut w_i = log_w[0].exp();
    for _ in 0..n {
        while cum + w_i < u && i + 1 < log_w.len() {
            cum += w_i;
            i += 1;
            w_i = log_w[i].exp();
        }
        counts[i] += 1;
        u += step;
    }
}

/// Reorders `items` in place into the resampled sequence described by
/// `counts` (each survivor `i` repeated `counts[i]` times, in index
/// order) — the exact sequence [`systematic_resample`]'s ancestry
/// vector produces, without the second allocation.
///
/// Two passes: survivors are first compacted to the front (the write
/// cursor never passes the read cursor), then expanded from the back.
/// The back-expansion is safe because survivors each contribute at
/// least one copy, so survivor `r`'s output block starts at an index
/// `>= r` and never clobbers a survivor that is still to be read.
/// `counts` is clobbered by the compaction.
pub fn reorder_by_counts<T: Copy>(items: &mut [T], counts: &mut [u32]) {
    let n = items.len();
    debug_assert_eq!(counts.len(), n);
    debug_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), n);
    let mut survivors = 0usize;
    for i in 0..n {
        if counts[i] > 0 {
            items[survivors] = items[i];
            counts[survivors] = counts[i];
            survivors += 1;
        }
    }
    let mut write = n;
    for r in (0..survivors).rev() {
        let item = items[r];
        for _ in 0..counts[r] {
            write -= 1;
            items[write] = item;
        }
    }
    debug_assert_eq!(write, 0);
}

/// Struct-of-arrays storage for an object's particle set: parallel
/// coordinate, pointer, and weight columns instead of a
/// `Vec<ObjectParticle>`.
///
/// The fused step's hot loops (weight accumulation, normalization,
/// support staging, moments) each touch only a subset of the particle
/// fields; with AoS storage every loop drags the full 40-byte particle
/// through the cache and the stride defeats autovectorization. The
/// columnar layout keeps each loop on contiguous `f64` slices. The
/// logical particle sequence is unchanged — `get`/`iter` reconstruct
/// [`ObjectParticle`] values bit-identical to the AoS representation,
/// and [`reorder_by_counts`](ParticleSoa::reorder_by_counts) applies
/// the exact permutation of the free-function [`reorder_by_counts`]
/// to every column.
#[derive(Debug, Clone, Default)]
pub struct ParticleSoa {
    /// Particle x coordinates.
    pub xs: Vec<f64>,
    /// Particle y coordinates.
    pub ys: Vec<f64>,
    /// Particle z coordinates.
    pub zs: Vec<f64>,
    /// Indices into the reader particle list (Fig. 3(b)).
    pub reader_idx: Vec<u32>,
    /// Factored log weights (`w_ti` in Eq. 5).
    pub log_w: Vec<f64>,
}

impl ParticleSoa {
    /// An empty set with per-column capacity for `n` particles.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
            zs: Vec::with_capacity(n),
            reader_idx: Vec::with_capacity(n),
            log_w: Vec::with_capacity(n),
        }
    }

    /// Columnar copy of an AoS particle vector, preserving order.
    pub fn from_aos(particles: &[ObjectParticle]) -> Self {
        let mut soa = Self::with_capacity(particles.len());
        for p in particles {
            soa.push(*p);
        }
        soa
    }

    /// Number of particles.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Appends one particle to every column.
    pub fn push(&mut self, p: ObjectParticle) {
        self.xs.push(p.loc.x);
        self.ys.push(p.loc.y);
        self.zs.push(p.loc.z);
        self.reader_idx.push(p.reader_idx);
        self.log_w.push(p.log_w);
    }

    /// Particle `i` reassembled as an [`ObjectParticle`] value.
    pub fn get(&self, i: usize) -> ObjectParticle {
        ObjectParticle {
            loc: Point3::new(self.xs[i], self.ys[i], self.zs[i]),
            reader_idx: self.reader_idx[i],
            log_w: self.log_w[i],
        }
    }

    /// Overwrites particle `i` across every column.
    pub fn set(&mut self, i: usize, p: ObjectParticle) {
        self.xs[i] = p.loc.x;
        self.ys[i] = p.loc.y;
        self.zs[i] = p.loc.z;
        self.reader_idx[i] = p.reader_idx;
        self.log_w[i] = p.log_w;
    }

    /// The location of particle `i`.
    pub fn loc(&self, i: usize) -> Point3 {
        Point3::new(self.xs[i], self.ys[i], self.zs[i])
    }

    /// Overwrites the location of particle `i`.
    pub fn set_loc(&mut self, i: usize, loc: Point3) {
        self.xs[i] = loc.x;
        self.ys[i] = loc.y;
        self.zs[i] = loc.z;
    }

    /// Iterates the particles as [`ObjectParticle`] values, in order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectParticle> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Approximate heap footprint of the live particle data, in bytes
    /// (three coordinate columns + weight column + pointer column).
    pub fn approx_bytes(&self) -> usize {
        self.len() * (4 * std::mem::size_of::<f64>() + std::mem::size_of::<u32>())
    }

    /// Columnar [`reorder_by_counts`]: applies the identical resampled
    /// permutation (survivor `i` repeated `counts[i]` times, in index
    /// order) to all five columns in one two-pass sweep. `counts` is
    /// clobbered, exactly like the free function.
    pub fn reorder_by_counts(&mut self, counts: &mut [u32]) {
        let n = self.len();
        debug_assert_eq!(counts.len(), n);
        debug_assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), n);
        let mut survivors = 0usize;
        for i in 0..n {
            if counts[i] > 0 {
                self.xs[survivors] = self.xs[i];
                self.ys[survivors] = self.ys[i];
                self.zs[survivors] = self.zs[i];
                self.reader_idx[survivors] = self.reader_idx[i];
                self.log_w[survivors] = self.log_w[i];
                counts[survivors] = counts[i];
                survivors += 1;
            }
        }
        let mut write = n;
        for r in (0..survivors).rev() {
            let (x, y, z) = (self.xs[r], self.ys[r], self.zs[r]);
            let (ri, w) = (self.reader_idx[r], self.log_w[r]);
            for _ in 0..counts[r] {
                write -= 1;
                self.xs[write] = x;
                self.ys[write] = y;
                self.zs[write] = z;
                self.reader_idx[write] = ri;
                self.log_w[write] = w;
            }
        }
        debug_assert_eq!(write, 0);
    }
}

/// Weighted mean location of object particles (normalized log weights).
pub fn weighted_mean_loc(particles: &[ObjectParticle]) -> Option<Point3> {
    rfid_geom::point::weighted_mean(particles.iter().map(|p| (p.log_w.exp(), p.loc)))
}

/// Weighted per-axis variance of object particles around their mean.
pub fn weighted_variance(particles: &[ObjectParticle], mean: &Point3) -> [f64; 3] {
    let mut var = [0.0f64; 3];
    let mut wsum = 0.0;
    for p in particles {
        let w = p.log_w.exp();
        wsum += w;
        var[0] += w * (p.loc.x - mean.x) * (p.loc.x - mean.x);
        var[1] += w * (p.loc.y - mean.y) * (p.loc.y - mean.y);
        var[2] += w * (p.loc.z - mean.z) * (p.loc.z - mean.z);
    }
    if wsum > 0.0 {
        for v in var.iter_mut() {
            *v /= wsum;
        }
    }
    var
}

/// Weighted mean pose of reader particles: mean position plus circular
/// mean heading.
pub fn weighted_mean_pose(particles: &[ReaderParticle]) -> Option<Pose> {
    let mut wsum = 0.0;
    let (mut x, mut y, mut z) = (0.0, 0.0, 0.0);
    let (mut s, mut c) = (0.0, 0.0);
    for p in particles {
        let w = p.log_w.exp();
        wsum += w;
        x += w * p.pose.pos.x;
        y += w * p.pose.pos.y;
        z += w * p.pose.pos.z;
        s += w * p.pose.phi.sin();
        c += w * p.pose.phi.cos();
    }
    if wsum <= 0.0 {
        return None;
    }
    Some(Pose::new(
        Point3::new(x / wsum, y / wsum, z / wsum),
        s.atan2(c),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_normalize_sums_to_one() {
        let mut w = vec![-1.0, -2.0, -3.0];
        let z = log_normalize(&mut w).unwrap();
        let sum: f64 = w.iter().map(|x| x.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(z.is_finite());
    }

    #[test]
    fn log_normalize_handles_extreme_magnitudes() {
        let mut w = vec![-1000.0, -1001.0, -2000.0];
        log_normalize(&mut w).unwrap();
        let sum: f64 = w.iter().map(|x| x.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(w[0] > w[1]);
        assert!(w[2] < -600.0); // vanishingly small but well-defined
    }

    #[test]
    fn log_normalize_total_depletion_resets_uniform() {
        let mut w = vec![f64::NEG_INFINITY; 4];
        assert!(log_normalize(&mut w).is_none());
        for x in &w {
            assert!((x.exp() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn ess_bounds() {
        let mut uniform = vec![0.0f64; 10];
        log_normalize(&mut uniform).unwrap();
        assert!((effective_sample_size(&uniform) - 10.0).abs() < 1e-9);

        let mut degen = vec![f64::NEG_INFINITY; 10];
        degen[3] = 0.0;
        log_normalize(&mut degen).unwrap();
        assert!((effective_sample_size(&degen) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn systematic_resample_matches_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = vec![(0.7f64).ln(), (0.2f64).ln(), (0.1f64).ln()];
        log_normalize(&mut w).unwrap();
        let n = 10_000;
        let idx = systematic_resample(&w, n, &mut rng);
        let c0 = idx.iter().filter(|&&i| i == 0).count() as f64 / n as f64;
        let c1 = idx.iter().filter(|&&i| i == 1).count() as f64 / n as f64;
        assert!((c0 - 0.7).abs() < 0.02, "c0 {c0}");
        assert!((c1 - 0.2).abs() < 0.02, "c1 {c1}");
    }

    #[test]
    fn systematic_resample_deterministic_for_point_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = vec![f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        log_normalize(&mut w).unwrap();
        let idx = systematic_resample(&w, 100, &mut rng);
        assert!(idx.iter().all(|&i| i == 1));
    }

    #[test]
    fn counts_match_ancestry_and_reorder_matches_gather() {
        // the counts + in-place-reorder pair must reproduce exactly the
        // sequence the allocating ancestry path produces, from the same
        // RNG draw
        for seed in 0..20u64 {
            let mut w: Vec<f64> = (0..17).map(|i| (-(i as f64) * 0.3).exp().ln()).collect();
            log_normalize(&mut w).unwrap();
            let n = w.len();
            let ancestry = systematic_resample(&w, n, &mut StdRng::seed_from_u64(seed));
            let mut counts = Vec::new();
            systematic_resample_counts(&w, n, &mut counts, &mut StdRng::seed_from_u64(seed));
            // ancestry is non-decreasing and is the histogram expansion
            let expanded: Vec<u32> = counts
                .iter()
                .enumerate()
                .flat_map(|(i, &c)| std::iter::repeat_n(i as u32, c as usize))
                .collect();
            assert_eq!(ancestry, expanded, "seed {seed}");
            // in-place reorder equals the gather the old path performed
            let mut items: Vec<u64> = (0..n as u64).map(|i| i * 100).collect();
            let gathered: Vec<u64> = ancestry.iter().map(|&a| items[a as usize]).collect();
            reorder_by_counts(&mut items, &mut counts);
            assert_eq!(items, gathered, "seed {seed}");
        }
    }

    #[test]
    fn reorder_handles_point_mass_and_identity() {
        // all mass on the last source
        let mut items = vec![10, 20, 30, 40];
        let mut counts = vec![0u32, 0, 0, 4];
        reorder_by_counts(&mut items, &mut counts);
        assert_eq!(items, vec![40, 40, 40, 40]);
        // identity counts leave items untouched
        let mut items = vec![1, 2, 3];
        let mut counts = vec![1u32, 1, 1];
        reorder_by_counts(&mut items, &mut counts);
        assert_eq!(items, vec![1, 2, 3]);
        // the adversarial shape for naive one-pass copies: a middle
        // survivor whose block lands on a later survivor's slot
        let mut items = vec![0, 1, 2, 3];
        let mut counts = vec![0u32, 3, 1, 0];
        reorder_by_counts(&mut items, &mut counts);
        assert_eq!(items, vec![1, 1, 1, 2]);
    }

    #[test]
    fn ess_probs_matches_log_space_bitwise() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w: Vec<f64> = (0..37).map(|_| rng.gen::<f64>().ln() * 3.0).collect();
            log_normalize(&mut w).unwrap();
            let probs: Vec<f64> = w.iter().map(|x| x.exp()).collect();
            assert_eq!(
                effective_sample_size(&w).to_bits(),
                effective_sample_size_probs(&probs).to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn soa_roundtrips_and_reorders_like_aos() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 5, 64] {
            let aos: Vec<ObjectParticle> = (0..n)
                .map(|i| ObjectParticle {
                    loc: Point3::new(rng.gen(), rng.gen(), rng.gen()),
                    reader_idx: i as u32 % 7,
                    log_w: -(rng.gen::<f64>() + 0.1),
                })
                .collect();
            let soa = ParticleSoa::from_aos(&aos);
            assert_eq!(soa.len(), n);
            for (i, p) in soa.iter().enumerate() {
                assert_eq!(p.loc.x.to_bits(), aos[i].loc.x.to_bits());
                assert_eq!(p.reader_idx, aos[i].reader_idx);
                assert_eq!(p.log_w.to_bits(), aos[i].log_w.to_bits());
            }

            // the columnar reorder must equal the generic AoS reorder
            let mut w: Vec<f64> = aos.iter().map(|p| p.log_w).collect();
            log_normalize(&mut w).unwrap();
            let mut counts = Vec::new();
            systematic_resample_counts(&w, n, &mut counts, &mut StdRng::seed_from_u64(n as u64));
            let mut counts_soa = counts.clone();
            let mut aos_reordered = aos.clone();
            reorder_by_counts(&mut aos_reordered, &mut counts);
            let mut soa_reordered = soa.clone();
            soa_reordered.reorder_by_counts(&mut counts_soa);
            for (i, p) in soa_reordered.iter().enumerate() {
                assert_eq!(p.loc.x.to_bits(), aos_reordered[i].loc.x.to_bits());
                assert_eq!(p.loc.y.to_bits(), aos_reordered[i].loc.y.to_bits());
                assert_eq!(p.loc.z.to_bits(), aos_reordered[i].loc.z.to_bits());
                assert_eq!(p.reader_idx, aos_reordered[i].reader_idx);
                assert_eq!(p.log_w.to_bits(), aos_reordered[i].log_w.to_bits());
            }
        }
    }

    #[test]
    fn weighted_mean_and_variance() {
        let mk = |x: f64, w: f64| ObjectParticle {
            loc: Point3::new(x, 0.0, 0.0),
            reader_idx: 0,
            log_w: w.ln(),
        };
        let ps = vec![mk(0.0, 0.5), mk(2.0, 0.5)];
        let m = weighted_mean_loc(&ps).unwrap();
        assert!((m.x - 1.0).abs() < 1e-12);
        let v = weighted_variance(&ps, &m);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn mean_pose_circular_heading() {
        let mk = |phi: f64| ReaderParticle {
            pose: Pose::new(Point3::origin(), phi),
            log_w: (0.5f64).ln(),
        };
        let ps = vec![mk(170f64.to_radians()), mk(-170f64.to_radians())];
        let m = weighted_mean_pose(&ps).unwrap();
        assert!((m.phi.abs() - std::f64::consts::PI).abs() < 1e-9);
    }
}
