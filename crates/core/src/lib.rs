//! Scalable particle-filter inference over mobile RFID streams — the
//! paper's primary contribution (§IV).
//!
//! The input is the synchronized epoch stream of [`rfid_stream`]; the
//! output is the clean location-event stream applications query. Four
//! inference strategies are provided, matching the four curves of the
//! scalability study (Fig. 5(i)/(j)):
//!
//! * [`basic::BasicParticleFilter`] — textbook (unfactorized) particle
//!   filtering over the joint state of the reader and *all* objects.
//!   Needs a number of particles exponential-ish in the object count;
//!   kept as the baseline.
//! * [`factored`] — **particle factorization** (§IV-B): reader particles
//!   and per-object particles with factored weights (Eq. 5), combined
//!   through pointers from object particles to reader particles.
//! * [`spatial_hook`] — **spatial indexing** (§IV-C): a region index over
//!   past sensing areas restricts each epoch's work to objects read now
//!   (Case 1) or read before near the current location (Case 2).
//! * [`compression`] — **belief compression** (§IV-D): per-object
//!   particle clouds that have stabilized are collapsed into 3-D
//!   Gaussians and re-expanded with far fewer particles when the object
//!   is encountered again (selective Boyen–Koller).
//!
//! [`engine::InferenceEngine`] wires everything together behind one
//! `process_batch` API and applies the output policy of §II-A
//! ([`output`]).

pub mod basic;
pub mod compression;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod factored;
pub mod output;
pub mod particle;
pub mod shard;
pub mod spatial_hook;

pub use basic::BasicParticleFilter;
pub use config::{CompressionPolicy, FilterConfig, LikelihoodTableConfig, ReaderMode};
pub use engine::checkpoint::{self, CheckpointError};
pub use engine::{EngineStats, InferenceEngine};
pub use error::ConfigError;
pub use shard::ShardCounts;
