//! The inference engine: raw epoch batches in, location events out.
//!
//! [`InferenceEngine::process_batch`] runs one epoch of §IV's filter:
//! reader prediction and weighting, active-set selection (all objects,
//! or Cases 1–2 via the spatial index), per-object prediction /
//! weighting / resampling, re-detection handling, event emission per
//! the output policy, instrumented reader resampling, and the belief
//! compression sweep.
//!
//! # Execution model
//!
//! The per-object updates are the hot path and are built to be
//! **allocation-free in steady state** and **deterministically
//! parallel**:
//!
//! * every buffer the per-object step needs (joint weights, resampling
//!   counts, staged reader support, the active/read sets) lives in
//!   reusable scratch owned by the engine ([`crate::exec`]);
//! * the fused [`ObjectFilter::step_fused`] computes the normalized
//!   joint weights once per step instead of once each for weighting,
//!   resampling, and estimation, and resamples in place;
//! * each object's step draws from its own RNG stream seeded from
//!   `(config.seed, tag, epoch)`, and all cross-object side effects
//!   (reader support, statistics) are staged per object and merged in
//!   active-set order on the calling thread — so the emitted event
//!   stream is bit-identical for every `config.worker_threads` value.

use crate::compression::CompressedBelief;
use crate::config::{FilterConfig, ReaderMode};
use crate::error::ConfigError;
use crate::exec::{self, StepScratch, WorkerScratch};
use crate::factored::{ObjectFilter, ReaderFilter};
use crate::output::OutputPolicy;
use crate::spatial_hook::{sensing_box, SpatialHook};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Point3, Pose};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_model::JointModel;
use rfid_stream::{Epoch, EpochBatch, EventStats, LocationEvent, TagId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One object's belief representation.
// Compressed is the larger variant but keeps dormant objects heap-free;
// Active dominates during tracking and already owns a particle Vec.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Belief {
    Active(ObjectFilter),
    Compressed(CompressedBelief),
}

#[derive(Debug, Clone)]
struct ObjectState {
    belief: Belief,
    last_estimate: (Point3, [f64; 3]),
    last_read: Epoch,
    /// Epoch at which the compression sweep should next consider this
    /// object (0 = no check queued). Bumped on every *read* epoch
    /// (Case-2 activity does not reset the clock) and on failed
    /// compression attempts, so the cooldown queue holds at most one
    /// live entry per tag instead of one per active epoch.
    compression_due: u64,
}

/// Counters exposed for tests, benchmarks, and EXPERIMENTS.md tables.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    pub epochs: u64,
    pub readings: u64,
    /// Total object-filter updates across all epochs (the quantity the
    /// spatial index is meant to shrink).
    pub object_updates: u64,
    pub events_emitted: u64,
    pub object_resamples: u64,
    pub reader_resamples: u64,
    pub compressions: u64,
    pub decompressions: u64,
    pub half_respawns: u64,
    pub full_reinits: u64,
}

/// Statistic deltas produced by one object step, merged into
/// [`EngineStats`] on the calling thread in active-set order.
#[derive(Debug, Clone, Copy, Default)]
struct StepDelta {
    resampled: bool,
    decompressed: bool,
    full_reinit: bool,
    half_respawn: bool,
}

/// One queued per-object update: built during the epoch pre-pass,
/// executed sequentially or fanned out across workers.
#[derive(Debug)]
struct StepTask {
    tag: TagId,
    read: bool,
    /// Owned state while the task is in flight (parallel path only;
    /// the sequential path mutates the map entry directly).
    state: Option<ObjectState>,
    delta: StepDelta,
}

/// The read-only environment one object step runs against.
struct StepCtx<'a, P, S> {
    model: &'a JointModel<S>,
    prior: &'a P,
    config: &'a FilterConfig,
    range_over: f64,
    /// Posterior-mean reader position this epoch (for re-detection).
    reader_pos: Point3,
    /// Reader-weight CDF, built once per epoch (the reader is frozen
    /// while objects step) and shared by every pointer refresh, cone
    /// initialization, and respawn.
    reader_cdf: &'a [f64],
    epoch: Epoch,
    stamp: u64,
}

/// The end-to-end inference engine, generic over the location prior
/// and the sensor model (logistic by default; a ground-truth sensor
/// shape can be plugged in for oracle experiments). Priors and sensor
/// models are `Send + Sync` by trait contract, so the per-object
/// updates can fan out across `config.worker_threads` scoped threads.
pub struct InferenceEngine<P: LocationPrior, S: ReadRateModel = rfid_model::LogisticSensorModel> {
    model: JointModel<S>,
    config: FilterConfig,
    prior: P,
    shelf_tags: Vec<(TagId, Point3)>,
    shelf_ids: BTreeSet<TagId>,
    reader: Option<ReaderFilter>,
    objects: HashMap<TagId, ObjectState>,
    policy: OutputPolicy,
    hook: Option<SpatialHook>,
    /// Compression schedule: epoch -> objects to check (at most one
    /// live entry per tag; see `ObjectState::compression_due`).
    cooldown: BTreeMap<u64, Vec<TagId>>,
    rng: StdRng,
    stats: EngineStats,
    /// Overestimated sensor range used for initialization cones,
    /// sensing boxes, and re-detection thresholds.
    range_over: f64,
    last_report: Option<Pose>,
    // --- reusable per-epoch scratch (allocation-free steady state) ---
    /// Sorted active set (Cases 1–2) of the current epoch.
    active: Vec<TagId>,
    /// Sorted object tags read this epoch.
    object_read: Vec<TagId>,
    /// Sorted shelf tags read this epoch.
    shelf_read: Vec<TagId>,
    /// Shelf observations relevant to the reader update.
    shelf_obs: Vec<(Point3, bool)>,
    /// Active objects with a particle in the sensing box.
    members: Vec<TagId>,
    /// Per-object update queue for the current epoch.
    steps: Vec<StepTask>,
    /// Per-worker step scratch (`config.worker_threads` entries).
    scratches: Vec<WorkerScratch>,
    /// Reader-weight CDF of the current epoch (reused buffer).
    reader_cdf: Vec<f64>,
}

impl<P: LocationPrior, S: ReadRateModel> InferenceEngine<P, S> {
    /// Builds an engine. `shelf_tags` are the reference tags with known
    /// locations; every other tag id encountered is treated as an
    /// object.
    pub fn new(
        model: JointModel<S>,
        prior: P,
        shelf_tags: Vec<(TagId, Point3)>,
        config: FilterConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let range_over = (model.sensor.detection_range(0.02) * config.init_range_overestimate)
            .min(config.max_init_range);
        let shelf_ids = shelf_tags.iter().map(|(t, _)| *t).collect();
        let hook = config
            .use_spatial_index
            .then(|| SpatialHook::new(range_over));
        Ok(Self {
            model,
            prior,
            shelf_ids,
            shelf_tags,
            reader: None,
            objects: HashMap::new(),
            policy: OutputPolicy::new(
                config.report_delay_epochs,
                config.report_delay_epochs.saturating_mul(2),
            ),
            hook,
            cooldown: BTreeMap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            stats: EngineStats::default(),
            range_over,
            last_report: None,
            active: Vec::new(),
            object_read: Vec::new(),
            shelf_read: Vec::new(),
            shelf_obs: Vec::new(),
            members: Vec::new(),
            steps: Vec::new(),
            scratches: (0..config.worker_threads)
                .map(|_| WorkerScratch::default())
                .collect(),
            reader_cdf: Vec::new(),
            config,
        })
    }

    /// The engine's statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The current posterior-mean reader pose (`None` before the first
    /// batch).
    pub fn reader_estimate(&self) -> Option<Pose> {
        self.reader.as_ref().map(|r| r.estimate())
    }

    /// The current location estimate of an object.
    pub fn object_estimate(&self, tag: TagId) -> Option<(Point3, [f64; 3])> {
        self.objects.get(&tag).map(|s| s.last_estimate)
    }

    /// Tags of all objects the engine tracks.
    pub fn tracked_objects(&self) -> impl Iterator<Item = TagId> + '_ {
        self.objects.keys().copied()
    }

    /// Live entries in the compression cooldown queue (diagnostics).
    /// The scheduler keeps at most one entry per tracked tag, so this
    /// is bounded by the object count no matter how long the engine
    /// runs or how often compression attempts fail and retry.
    pub fn cooldown_entries(&self) -> usize {
        self.cooldown.values().map(Vec::len).sum()
    }

    /// Number of objects currently in compressed representation.
    pub fn num_compressed(&self) -> usize {
        self.objects
            .values()
            .filter(|s| matches!(s.belief, Belief::Compressed(_)))
            .count()
    }

    /// Reader particles (exposed for the EM learner's E-step).
    pub fn reader_particles(&self) -> Option<&[crate::particle::ReaderParticle]> {
        self.reader.as_ref().map(|r| r.particles())
    }

    /// Object particles of a tag, when its belief is active.
    pub fn object_particles(&self, tag: TagId) -> Option<&[crate::particle::ObjectParticle]> {
        match self.objects.get(&tag).map(|s| &s.belief) {
            Some(Belief::Active(f)) => Some(f.particles()),
            _ => None,
        }
    }

    /// Rough memory footprint of the belief state, in bytes. Tracks the
    /// paper's claim that compression keeps memory small.
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0usize;
        for s in self.objects.values() {
            total += match &s.belief {
                Belief::Active(f) => {
                    f.len() * std::mem::size_of::<crate::particle::ObjectParticle>()
                }
                Belief::Compressed(_) => std::mem::size_of::<CompressedBelief>(),
            };
        }
        if let Some(r) = &self.reader {
            total += r.len() * std::mem::size_of::<crate::particle::ReaderParticle>();
        }
        total
    }

    /// Processes one synchronized epoch batch and returns the events
    /// due this epoch.
    pub fn process_batch(&mut self, batch: &EpochBatch) -> Vec<LocationEvent> {
        let epoch = batch.epoch;
        let stamp = epoch.0;
        self.stats.epochs += 1;
        self.stats.readings += batch.readings.len() as u64;

        // --- partition readings (reused sorted Vecs) -----------------
        self.shelf_read.clear();
        self.object_read.clear();
        for tag in &batch.readings {
            if self.shelf_ids.contains(tag) {
                self.shelf_read.push(*tag);
            } else {
                self.object_read.push(*tag);
            }
        }
        self.shelf_read.sort_unstable();
        self.shelf_read.dedup();
        self.object_read.sort_unstable();
        self.object_read.dedup();

        // --- reader update -------------------------------------------
        self.update_reader(batch.reader_report.as_ref());
        let reader_est = self
            .reader
            .as_ref()
            .expect("reader initialized above")
            .estimate();

        // --- active set (Cases 1 and 2) ------------------------------
        let sensing_box = sensing_box(self.range_over, &reader_est);
        self.active.clear();
        self.active.extend_from_slice(&self.object_read);
        match &self.hook {
            Some(hook) => {
                let known_from = self.active.len();
                hook.candidates_into(&sensing_box, &mut self.active);
                // hook candidates may be stale; only keep known objects
                let objects = &self.objects;
                let mut keep = known_from;
                for i in known_from..self.active.len() {
                    if objects.contains_key(&self.active[i]) {
                        self.active[keep] = self.active[i];
                        keep += 1;
                    }
                }
                self.active.truncate(keep);
            }
            None => {
                // no index: every known object is processed (Cases 1-4)
                self.active.extend(self.objects.keys().copied());
            }
        }
        self.active.sort_unstable();
        self.active.dedup();

        // --- pre-pass: output policy, compressed-miss skip -----------
        self.steps.clear();
        for i in 0..self.active.len() {
            let tag = self.active[i];
            let read = self.object_read.binary_search(&tag).is_ok();
            if read {
                self.policy.on_read(tag, epoch);
            } else if matches!(
                self.objects.get(&tag),
                Some(ObjectState {
                    belief: Belief::Compressed(_),
                    ..
                })
            ) {
                // "when a compressed object has its tag read again, we
                // ... decompress" (§IV-D): a compressed Case-2 object
                // stays compressed — a miss carries almost no
                // information about a belief that already stabilized,
                // and decompressing for it would thrash.
                continue;
            }
            self.steps.push(StepTask {
                tag,
                read,
                state: None,
                delta: StepDelta::default(),
            });
        }

        // --- per-object updates (sequential or fanned out) -----------
        self.run_steps(epoch, stamp, reader_est.pos);

        // --- compression scheduling (one live entry per tag) ---------
        // An object becomes a compression candidate `idle_epochs` after
        // its last *read* (continued Case-2 processing does not reset
        // the clock — a silent object compresses even while the reader
        // keeps passing it). The seed code pushed one cooldown entry per
        // active epoch per tag; a read epoch now just bumps the tag's
        // authoritative due epoch, and the queue holds one live entry.
        if self.config.compression.enabled {
            let due = epoch.0 + self.config.compression.idle_epochs;
            for i in 0..self.steps.len() {
                let StepTask { tag, read, .. } = self.steps[i];
                if !read {
                    continue;
                }
                let Some(state) = self.objects.get_mut(&tag) else {
                    continue;
                };
                if state.compression_due == 0 {
                    self.cooldown.entry(due).or_default().push(tag);
                }
                state.compression_due = due;
            }
        }

        // --- record the sensing region -------------------------------
        if self.hook.is_some() {
            self.members.clear();
            for tag in &self.active {
                if let Some(ObjectState {
                    belief: Belief::Active(f),
                    ..
                }) = self.objects.get(tag)
                {
                    if f.particles().iter().any(|p| sensing_box.contains(&p.loc)) {
                        self.members.push(*tag);
                    }
                }
            }
            if let Some(hook) = self.hook.as_mut() {
                hook.record(sensing_box, self.members.drain(..));
            }
        }

        // --- emit due events -----------------------------------------
        let mut events = Vec::new();
        for tag in self.policy.due(epoch) {
            if let Some(s) = self.objects.get(&tag) {
                events.push(self.make_event(epoch, tag, s));
            }
        }
        self.stats.events_emitted += events.len() as u64;

        // --- instrumented reader resampling --------------------------
        if self.config.reader_mode == ReaderMode::Filter {
            let remap = self
                .reader
                .as_mut()
                .expect("reader exists")
                .maybe_resample(self.config.resample_ess_frac, &mut self.rng);
            if let Some(remap) = remap {
                self.stats.reader_resamples += 1;
                // realign pointers of the objects touched this epoch;
                // untouched objects will refresh on next activation
                for tag in &self.active {
                    if let Some(ObjectState {
                        belief: Belief::Active(f),
                        ..
                    }) = self.objects.get_mut(tag)
                    {
                        f.apply_reader_remap(&remap, &mut self.rng);
                    }
                }
            }
        }

        // --- compression sweep ---------------------------------------
        self.run_compression_sweep(epoch);

        events
    }

    /// Flushes pending reports at end of trace.
    pub fn finalize(&mut self, epoch: Epoch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        for tag in self.policy.flush() {
            if let Some(s) = self.objects.get(&tag) {
                events.push(self.make_event(epoch, tag, s));
            }
        }
        self.stats.events_emitted += events.len() as u64;
        events
    }

    // ------------------------------------------------------------------

    fn make_event(&self, epoch: Epoch, tag: TagId, s: &ObjectState) -> LocationEvent {
        let (loc, var) = s.last_estimate;
        let support = match &s.belief {
            Belief::Active(f) => f.object_ess(),
            Belief::Compressed(_) => self.config.compression.decompressed_particles as f64,
        };
        LocationEvent::new(epoch, tag, loc).with_stats(EventStats { var, support })
    }

    fn update_reader(&mut self, report: Option<&Pose>) {
        match self.config.reader_mode {
            ReaderMode::TrustReports => {
                // "motion model Off": the reported location is taken as
                // the true location; a single-particle filter carries it.
                let pose = report
                    .copied()
                    .or(self.last_report)
                    .unwrap_or_else(Pose::identity);
                self.reader = Some(ReaderFilter::new(1, pose));
            }
            ReaderMode::Filter => {
                match self.reader.as_mut() {
                    None => {
                        // "the initial reader location R_1 is known":
                        // anchor the filter at the first report.
                        let start = report.copied().unwrap_or_else(Pose::identity);
                        self.reader = Some(ReaderFilter::new(self.config.reader_particles, start));
                        // no prediction on the very first epoch
                    }
                    Some(filter) => {
                        let odom = match (self.last_report, report) {
                            (Some(prev), Some(cur)) => Some(cur.pos - prev.pos),
                            _ => None,
                        };
                        let heading = report.map(|r| r.phi);
                        filter.predict(&self.model, odom, heading, &mut self.rng);
                    }
                }
                // weight with the report and nearby shelf-tag evidence
                let filter = self.reader.as_mut().expect("created above");
                let est = filter.estimate();
                let anchor = report.map(|r| r.pos).unwrap_or(est.pos);
                self.shelf_obs.clear();
                for (tag, loc) in &self.shelf_tags {
                    let read = self.shelf_read.binary_search(tag).is_ok();
                    if read || loc.dist(&anchor) <= 2.0 * self.range_over {
                        self.shelf_obs.push((*loc, read));
                    }
                }
                filter.weight(
                    &self.model,
                    report,
                    self.shelf_obs.iter().map(|(loc, read)| (loc, *read)),
                );
            }
        }
        if let Some(r) = report {
            self.last_report = Some(*r);
        }
    }

    /// Executes the queued per-object updates — on the calling thread
    /// when `worker_threads == 1` (map entries mutated in place via
    /// `get_mut`/`entry`, no remove/insert churn), otherwise fanned out
    /// across scoped worker threads with staged side effects.
    fn run_steps(&mut self, epoch: Epoch, stamp: u64, reader_pos: Point3) {
        if self.steps.is_empty() {
            return;
        }
        self.stats.object_updates += self.steps.len() as u64;
        let mut reader = self.reader.take().expect("reader initialized");
        let mut steps = std::mem::take(&mut self.steps);
        let mut scratches = std::mem::take(&mut self.scratches);
        let mut reader_cdf = std::mem::take(&mut self.reader_cdf);
        let nr = reader.len();
        // one CDF build serves every pointer refresh / init / respawn
        // this epoch — the reader weights are frozen while objects step
        reader.sampling_cdf_into(&mut reader_cdf);
        let ctx = StepCtx {
            model: &self.model,
            prior: &self.prior,
            config: &self.config,
            range_over: self.range_over,
            reader_pos,
            reader_cdf: &reader_cdf,
            epoch,
            stamp,
        };
        let workers = self.config.worker_threads.min(steps.len()).max(1);

        if workers == 1 {
            let scratch = scratches.first_mut().expect("worker scratch");
            scratch.staged_support.clear();
            scratch.staged_support.resize(nr, 0.0);
            for task in &mut steps {
                scratch.staged_support.fill(0.0);
                match self.objects.entry(task.tag) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        task.delta = step_one(
                            &ctx,
                            &reader,
                            task.tag,
                            task.read,
                            Some(e.get_mut()),
                            &mut scratch.step,
                            &mut scratch.staged_support,
                        )
                        .0;
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let (delta, created) = step_one(
                            &ctx,
                            &reader,
                            task.tag,
                            task.read,
                            None,
                            &mut scratch.step,
                            &mut scratch.staged_support,
                        );
                        task.delta = delta;
                        v.insert(created.expect("step created a state"));
                    }
                }
                reader.merge_support(&scratch.staged_support);
            }
        } else {
            // move the states into the tasks, fan out, merge back
            for task in &mut steps {
                task.state = self.objects.remove(&task.tag);
            }
            let scratch_slice = &mut scratches[..workers];
            for (scratch, range) in scratch_slice
                .iter_mut()
                .zip(exec::chunk_ranges(steps.len(), workers))
            {
                // clear + resize leaves every element freshly zeroed
                scratch.staged_support.clear();
                scratch.staged_support.resize(range.len() * nr, 0.0);
            }
            let ctx_ref = &ctx;
            let reader_ref = &reader;
            exec::parallel_chunks(
                &mut steps,
                scratch_slice,
                |_global, local, task, scratch| {
                    let WorkerScratch {
                        step,
                        staged_support,
                    } = scratch;
                    let row = &mut staged_support[local * nr..(local + 1) * nr];
                    let (delta, created) = step_one(
                        ctx_ref,
                        reader_ref,
                        task.tag,
                        task.read,
                        task.state.as_mut(),
                        step,
                        row,
                    );
                    task.delta = delta;
                    if let Some(created) = created {
                        task.state = Some(created);
                    }
                },
            );
            // deterministic merge: support rows and states in global
            // task order, regardless of how many workers ran
            for (scratch, range) in scratches[..workers]
                .iter()
                .zip(exec::chunk_ranges(steps.len(), workers))
            {
                for local in 0..range.len() {
                    reader.merge_support(&scratch.staged_support[local * nr..(local + 1) * nr]);
                }
            }
            for task in &mut steps {
                let state = task.state.take().expect("state returned by step");
                self.objects.insert(task.tag, state);
            }
        }

        for task in &steps {
            self.stats.object_resamples += u64::from(task.delta.resampled);
            self.stats.decompressions += u64::from(task.delta.decompressed);
            self.stats.full_reinits += u64::from(task.delta.full_reinit);
            self.stats.half_respawns += u64::from(task.delta.half_respawn);
        }

        self.reader = Some(reader);
        self.steps = steps;
        self.scratches = scratches;
        self.reader_cdf = reader_cdf;
    }

    fn run_compression_sweep(&mut self, epoch: Epoch) {
        if !self.config.compression.enabled {
            return;
        }
        while let Some((&e, _)) = self.cooldown.range(..=epoch.0).next() {
            let tags = self.cooldown.remove(&e).unwrap_or_default();
            for tag in tags {
                let Some(state) = self.objects.get_mut(&tag) else {
                    continue;
                };
                if state.compression_due > e {
                    // activity after this entry was queued pushed the
                    // check out; re-queue at the authoritative epoch
                    let due = state.compression_due;
                    self.cooldown.entry(due).or_default().push(tag);
                    continue;
                }
                state.compression_due = 0;
                // compression_due is only ever last_read + idle_epochs
                // (or a later retry), so a popped-at-due object has
                // been silent for at least a full idle period
                debug_assert!(epoch.since(state.last_read) >= self.config.compression.idle_epochs);
                if let Belief::Active(f) = &state.belief {
                    let reader = self.reader.as_ref().expect("reader initialized");
                    let cloud = f.weighted_cloud(reader);
                    let mut compressed = false;
                    if let Some(c) = CompressedBelief::compress(&cloud, epoch) {
                        if c.loss <= self.config.compression.max_cross_entropy {
                            state.last_estimate = c.estimate();
                            state.belief = Belief::Compressed(c);
                            self.stats.compressions += 1;
                            compressed = true;
                        }
                    }
                    if !compressed {
                        // the belief has not converged enough yet (loss
                        // above threshold): retry one idle period later —
                        // the seed code retried every active epoch; a
                        // bounded cadence keeps the one-entry-per-tag
                        // invariant without dropping the object forever
                        let retry = epoch.0 + self.config.compression.idle_epochs.max(1);
                        state.compression_due = retry;
                        self.cooldown.entry(retry).or_default().push(tag);
                    }
                }
            }
        }
    }
}

/// One per-object update: materialize an active filter (init or
/// decompress), refresh pointers, predict, handle re-detection, then
/// the fused weight/resample/estimate pass. Runs on any thread; all
/// randomness comes from the task's own `(seed, tag, epoch)` stream and
/// all shared-state effects are staged in `support`/the returned delta.
fn step_one<P: LocationPrior, S: ReadRateModel>(
    ctx: &StepCtx<'_, P, S>,
    reader: &ReaderFilter,
    tag: TagId,
    read: bool,
    state: Option<&mut ObjectState>,
    scratch: &mut StepScratch,
    support: &mut [f64],
) -> (StepDelta, Option<ObjectState>) {
    let mut delta = StepDelta::default();
    let mut rng = exec::task_rng(ctx.config.seed, tag.0, ctx.epoch.0);
    let k = ctx.config.particles_per_object;
    let half_angle = ctx.config.init_cone_half_angle;

    let mut created: Option<ObjectState> = None;
    let state: &mut ObjectState = match state {
        Some(s) => s,
        None => {
            // first sighting: sensor-model-based initialization,
            // restricted to the legal object space
            let f = ObjectFilter::init_from_cone_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                k,
                ctx.stamp,
                Some(ctx.prior),
                &mut rng,
            );
            created.insert(ObjectState {
                last_estimate: f.estimate_with(reader, scratch),
                belief: Belief::Active(f),
                last_read: ctx.epoch,
                compression_due: 0,
            })
        }
    };

    if let Belief::Compressed(c) = &state.belief {
        let f = c.decompress(
            ctx.config.compression.decompressed_particles,
            reader,
            ctx.stamp,
            &mut rng,
        );
        delta.decompressed = true;
        state.belief = Belief::Active(f);
    }
    let Belief::Active(f) = &mut state.belief else {
        unreachable!("belief made active above")
    };
    f.refresh_pointers_with(reader, ctx.reader_cdf, ctx.stamp, &mut rng);
    f.predict(ctx.model, ctx.prior, read, &mut rng);

    // §IV-A re-detection handling: compare the current estimate with
    // the location the reading implies (the reader's vicinity).
    if read {
        let est = state.last_estimate.0;
        let gap = est.dist_xy(&ctx.reader_pos);
        if gap > ctx.range_over + ctx.config.respawn_distance {
            // moved far: discard all old particles, re-create at the
            // new location
            *f = ObjectFilter::init_from_cone_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                k,
                ctx.stamp,
                Some(ctx.prior),
                &mut rng,
            );
            delta.full_reinit = true;
        } else if gap > ctx.range_over + ctx.config.small_move_distance {
            // moved a little: keep half, move half
            f.respawn_half_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                Some(ctx.prior),
                &mut rng,
            );
            delta.half_respawn = true;
        }
        state.last_read = ctx.epoch;
    }

    let outcome = f.step_fused(
        ctx.model,
        reader,
        read,
        ctx.config.resample_ess_frac,
        scratch,
        support,
        &mut rng,
    );
    state.last_estimate = outcome.estimate;
    delta.resampled = outcome.resampled;
    (delta, created)
}

/// Convenience driver: runs the engine over a full batch sequence and
/// returns every emitted event (including the final flush).
pub fn run_engine<P: LocationPrior, S: ReadRateModel>(
    engine: &mut InferenceEngine<P, S>,
    batches: &[EpochBatch],
) -> Vec<LocationEvent> {
    let mut events = Vec::new();
    for b in batches {
        events.extend(engine.process_batch(b));
    }
    let last = batches.last().map(|b| b.epoch).unwrap_or(Epoch(0));
    events.extend(engine.finalize(last));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Aabb;
    use rfid_model::object::BoxPrior;
    use rfid_model::{JointModel, ModelParams};
    use rfid_stream::EpochBatch;

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 40.0, 0.0),
        ))
    }

    fn engine(config: FilterConfig) -> InferenceEngine<BoxPrior> {
        let model = JointModel::new(ModelParams::default_warehouse());
        let shelf = vec![
            (TagId(1_000_000), Point3::new(2.0, 2.0, 0.0)),
            (TagId(1_000_001), Point3::new(2.0, 6.0, 0.0)),
        ];
        InferenceEngine::new(model, prior(), shelf, config).unwrap()
    }

    fn batch(epoch: u64, reader_y: f64, tags: &[u64]) -> EpochBatch {
        EpochBatch {
            epoch: Epoch(epoch),
            readings: tags.iter().map(|t| TagId(*t)).collect(),
            reader_report: Some(Pose::new(Point3::new(0.0, reader_y, 0.0), 0.0)),
        }
    }

    #[test]
    fn engine_rejects_bad_config() {
        let model = JointModel::new(ModelParams::default_warehouse());
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 0;
        assert!(InferenceEngine::new(model, prior(), vec![], cfg).is_err());
    }

    #[test]
    fn object_estimate_converges_near_truth() {
        // object at (2.0, 3.0); reader scans along y reading it when close
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 500;
        cfg.reader_particles = 50;
        cfg.report_delay_epochs = 10;
        let mut e = engine(cfg);
        // reads generated from the same sensor model the engine uses
        use rand::{Rng, SeedableRng};
        // seed chosen to give a typical read sequence under the vendored
        // xoshiro256++ StdRng; unlucky streams can leave ~1.3 ft of error
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = JointModel::new(ModelParams::default_warehouse());
        let truth = Point3::new(2.0, 3.0, 0.0);
        let shelf_loc = Point3::new(2.0, 2.0, 0.0);
        let mut events = Vec::new();
        for t in 0..60u64 {
            let y = t as f64 * 0.1;
            let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
            let mut tags = Vec::new();
            if rng.gen::<f64>() < model.sensor.p_read(&pose, &truth) {
                tags.push(7u64);
            }
            if rng.gen::<f64>() < model.sensor.p_read(&pose, &shelf_loc) {
                tags.push(1_000_000);
            }
            events.extend(e.process_batch(&batch(t, y, &tags)));
        }
        events.extend(e.finalize(Epoch(60)));
        let ev: Vec<_> = events.iter().filter(|ev| ev.tag == TagId(7)).collect();
        assert!(!ev.is_empty(), "no event for the object");
        let err = ev[0].location.dist_xy(&truth);
        assert!(
            err < 1.0,
            "estimate too far: {err} ft, at {:?}",
            ev[0].location
        );
        // statistics attached
        assert!(ev[0].stats.is_some());
    }

    #[test]
    fn unread_objects_produce_no_events() {
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 100;
        cfg.reader_particles = 20;
        let mut e = engine(cfg);
        for t in 0..20u64 {
            let evs = e.process_batch(&batch(t, t as f64 * 0.1, &[]));
            assert!(evs.is_empty());
        }
        assert!(e.finalize(Epoch(20)).is_empty());
        assert_eq!(e.stats().events_emitted, 0);
    }

    #[test]
    fn spatial_index_reduces_object_updates() {
        use rand::{Rng, SeedableRng};
        let model = JointModel::new(ModelParams::default_warehouse());
        let run = |cfg: FilterConfig| -> (u64, Point3) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let mut e = engine(cfg);
            // two objects far apart; each read only near its location
            let o7 = Point3::new(2.0, 3.0, 0.0);
            let o8 = Point3::new(2.0, 15.0, 0.0);
            for t in 0..200u64 {
                let y = t as f64 * 0.1;
                let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
                let mut tags = Vec::new();
                if rng.gen::<f64>() < model.sensor.p_read(&pose, &o7) {
                    tags.push(7u64);
                }
                if rng.gen::<f64>() < model.sensor.p_read(&pose, &o8) {
                    tags.push(8u64);
                }
                e.process_batch(&batch(t, y, &tags));
            }
            (
                e.stats().object_updates,
                e.object_estimate(TagId(7)).unwrap().0,
            )
        };
        let mut plain = FilterConfig::factored_default();
        plain.particles_per_object = 200;
        plain.reader_particles = 30;
        let mut indexed = plain;
        indexed.use_spatial_index = true;
        let (updates_plain, est_plain) = run(plain);
        let (updates_indexed, est_indexed) = run(indexed);
        assert!(
            updates_indexed < updates_plain,
            "index should reduce updates: {updates_indexed} vs {updates_plain}"
        );
        // and estimates stay in the same neighborhood
        assert!(est_plain.dist_xy(&est_indexed) < 2.0);
    }

    #[test]
    fn compression_kicks_in_after_idle() {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        let mut e = engine(cfg);
        for t in 0..40u64 {
            let y = t as f64 * 0.1;
            let mut tags = Vec::new();
            if (y - 1.0).abs() < 1.0 {
                tags.push(7u64);
            }
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.stats().compressions >= 1, "stats: {:?}", e.stats());
        assert_eq!(e.num_compressed(), 1);
        // estimate still available after compression
        assert!(e.object_estimate(TagId(7)).is_some());
    }

    #[test]
    fn decompression_on_reencounter() {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        cfg.report_delay_epochs = 5;
        let mut e = engine(cfg);
        // pass 1: read object at y ~ 1
        for t in 0..30u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.num_compressed() >= 1);
        // pass 2 much later: the reader returns and reads it again
        for t in 100..115u64 {
            let y = 2.0 - (t - 100) as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.stats().decompressions >= 1, "stats: {:?}", e.stats());
    }

    #[test]
    fn failed_compression_retries_with_bounded_queue() {
        // an unpassable loss threshold: every compression attempt fails,
        // and each failure must schedule a retry (the seed code retried
        // every active epoch) while the queue stays at one entry per tag
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        cfg.compression.max_cross_entropy = f64::NEG_INFINITY;
        let mut e = engine(cfg);
        for t in 0..80u64 {
            let y = t as f64 * 0.1;
            let mut tags = Vec::new();
            if (y - 1.0).abs() < 1.0 {
                tags.push(7u64);
            }
            e.process_batch(&batch(t, y, &tags));
        }
        assert_eq!(e.stats().compressions, 0);
        assert_eq!(e.num_compressed(), 0);
        // retry is still scheduled — the object was not dropped from
        // the compression schedule — and the queue has not grown
        assert_eq!(e.cooldown_entries(), 1);
    }

    #[test]
    fn trust_reports_mode_runs_without_reader_filter() {
        let mut cfg = FilterConfig::factored_default();
        cfg.reader_mode = ReaderMode::TrustReports;
        cfg.particles_per_object = 200;
        let mut e = engine(cfg);
        for t in 0..30u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert_eq!(e.stats().reader_resamples, 0);
        assert!(e.object_estimate(TagId(7)).is_some());
    }

    #[test]
    fn moved_object_triggers_respawn_or_reinit() {
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 300;
        cfg.reader_particles = 30;
        let mut e = engine(cfg);
        // object seen at y ~ 1 first
        for t in 0..25u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        let before = e.object_estimate(TagId(7)).unwrap().0;
        assert!(before.y < 4.0);
        // then suddenly read when the reader is at y ~ 20 (object moved)
        for t in 25..40u64 {
            let y = 19.0 + (t - 25) as f64 * 0.1;
            e.process_batch(&batch(t, y, &[7]));
        }
        let s = e.stats();
        assert!(
            s.full_reinits + s.half_respawns >= 1,
            "re-detection should trigger respawn: {s:?}"
        );
        let after = e.object_estimate(TagId(7)).unwrap().0;
        assert!(after.y > 15.0, "estimate should follow the move: {after:?}");
    }

    #[test]
    fn memory_shrinks_with_compression() {
        let mut active_cfg = FilterConfig::factored_default();
        active_cfg.particles_per_object = 500;
        active_cfg.reader_particles = 30;
        let mut comp_cfg = active_cfg;
        comp_cfg.compression = crate::config::CompressionPolicy {
            enabled: true,
            idle_epochs: 3,
            max_cross_entropy: f64::INFINITY,
            decompressed_particles: 10,
        };
        let drive = |e: &mut InferenceEngine<BoxPrior>| {
            for t in 0..30u64 {
                let y = t as f64 * 0.1;
                let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                    vec![7]
                } else {
                    vec![]
                };
                e.process_batch(&batch(t, y, &tags));
            }
        };
        let mut ea = engine(active_cfg);
        drive(&mut ea);
        let mut ec = engine(comp_cfg);
        drive(&mut ec);
        assert!(
            ec.memory_bytes() < ea.memory_bytes() / 4,
            "compressed {} vs active {}",
            ec.memory_bytes(),
            ea.memory_bytes()
        );
    }
}
