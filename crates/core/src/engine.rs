//! The inference engine: raw epoch batches in, location events out.
//!
//! [`InferenceEngine::process_batch`] runs one epoch of §IV's filter in
//! three explicit stages:
//!
//! 1. **ingestion** ([`InferenceEngine::ingest`]): partition the
//!    epoch's readings into shelf evidence and per-shard object reads,
//!    then update the reader filter;
//! 2. **inference** ([`InferenceEngine::infer`]): build the per-shard
//!    active sets (Cases 1–2 via the spatial index), merge them into
//!    the global step queue, run the per-object updates, schedule
//!    compression checks, and record the sensing region;
//! 3. **emission** ([`InferenceEngine::emit`]): collect due events
//!    from every shard's output policy, resample the reader, and run
//!    the compression sweep.
//!
//! # Execution model
//!
//! Object state is partitioned into [`crate::shard`]s by
//! `tag % config.num_shards`; the per-object updates fan out across
//! `config.worker_threads` scoped threads. Both knobs change *cost
//! only*: the hot path is **allocation-free in steady state** and the
//! emitted event stream is **bit-identical for every
//! `(worker_threads, num_shards)` combination**, because
//!
//! * every buffer the per-object step needs lives in reusable scratch
//!   owned by the engine ([`crate::exec`]);
//! * the fused [`ObjectFilter::step_fused`] computes the normalized
//!   joint weights once per step and resamples in place;
//! * each object's step draws from its own RNG stream seeded from
//!   `(config.seed, tag, epoch)`, and all cross-object side effects
//!   (reader support, reader-remap draws, statistics, event order) are
//!   staged per shard/task and merged in **global tag order** on the
//!   calling thread (see [`crate::shard`] for the rule).

pub mod checkpoint;
pub mod cluster;

use crate::compression::CompressedBelief;
use crate::config::{FilterConfig, ReaderMode};
use crate::error::ConfigError;
use crate::exec::{self, StepScratch, WorkerScratch};
use crate::factored::{ObjectFilter, ReaderFilter};
use crate::output::OutputPolicy;
use crate::shard::{merge_by_tag, shard_index, Belief, ObjectState, Shard, ShardCounts};
use crate::spatial_hook::{sensing_box, SpatialHook};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_geom::{Point3, Pose};
use rfid_model::object::LocationPrior;
use rfid_model::sensor::ReadRateModel;
use rfid_model::table::LikelihoodTable;
use rfid_model::JointModel;
use rfid_stream::{Epoch, EpochBatch, EventStats, LocationEvent, TagId};

/// Counters exposed for tests, benchmarks, and EXPERIMENTS.md tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    pub epochs: u64,
    pub readings: u64,
    /// Total object-filter updates across all epochs (the quantity the
    /// spatial index is meant to shrink).
    pub object_updates: u64,
    pub events_emitted: u64,
    pub object_resamples: u64,
    pub reader_resamples: u64,
    pub compressions: u64,
    pub decompressions: u64,
    pub half_respawns: u64,
    pub full_reinits: u64,
    /// Microseconds spent in the ingest stage (reader update) across
    /// all epochs. Timing counters are process-local measurements, not
    /// filter state: checkpoints neither save nor restore them.
    pub ingest_us: u64,
    /// Microseconds spent in the infer stage (object steps).
    pub infer_us: u64,
    /// Microseconds spent in the emit stage (output policy).
    pub emit_us: u64,
    /// Current per-shard state counters (objects, compressed, cooldown
    /// entries), refreshed after every processed batch.
    pub per_shard: Vec<ShardCounts>,
}

/// The [`EngineStats`] counter fields, copied as plain values — the
/// delta baseline for registry mirroring (no `per_shard` vector, so
/// taking a copy never allocates).
#[derive(Debug, Clone, Copy, Default)]
struct StatCounters {
    epochs: u64,
    readings: u64,
    object_updates: u64,
    events_emitted: u64,
    object_resamples: u64,
    reader_resamples: u64,
    compressions: u64,
    decompressions: u64,
    ingest_us: u64,
    infer_us: u64,
    emit_us: u64,
}

impl StatCounters {
    fn of(s: &EngineStats) -> Self {
        Self {
            epochs: s.epochs,
            readings: s.readings,
            object_updates: s.object_updates,
            events_emitted: s.events_emitted,
            object_resamples: s.object_resamples,
            reader_resamples: s.reader_resamples,
            compressions: s.compressions,
            decompressions: s.decompressions,
            ingest_us: s.ingest_us,
            infer_us: s.infer_us,
            emit_us: s.emit_us,
        }
    }
}

/// Mirrors [`EngineStats`] onto the global metrics registry (see
/// `rfid_obs`): every struct counter doubles as a scrapeable metric,
/// and the stage timers feed per-epoch latency histograms. Handles
/// are registered once at engine construction; [`EngineMetrics::observe`]
/// then only performs relaxed atomic adds — lock-free, allocation-free,
/// RNG-free, so instrumentation cannot perturb inference.
#[derive(Debug)]
struct EngineMetrics {
    last: StatCounters,
    epochs: rfid_obs::Counter,
    readings: rfid_obs::Counter,
    object_updates: rfid_obs::Counter,
    events_emitted: rfid_obs::Counter,
    object_resamples: rfid_obs::Counter,
    reader_resamples: rfid_obs::Counter,
    compressions: rfid_obs::Counter,
    decompressions: rfid_obs::Counter,
    ingest_us: rfid_obs::Histogram,
    infer_us: rfid_obs::Histogram,
    emit_us: rfid_obs::Histogram,
}

impl EngineMetrics {
    fn registered() -> Self {
        let r = rfid_obs::global();
        Self {
            last: StatCounters::default(),
            epochs: r.counter("engine_epochs_total"),
            readings: r.counter("engine_readings_total"),
            object_updates: r.counter("engine_object_updates_total"),
            events_emitted: r.counter("engine_events_total"),
            object_resamples: r.counter("engine_object_resamples_total"),
            reader_resamples: r.counter("engine_reader_resamples_total"),
            compressions: r.counter("engine_compressions_total"),
            decompressions: r.counter("engine_decompressions_total"),
            ingest_us: r.histogram("engine_ingest_us"),
            infer_us: r.histogram("engine_infer_us"),
            emit_us: r.histogram("engine_emit_us"),
        }
    }

    /// Records the progress since the last observation. The exact
    /// `u64` stage micros added to [`EngineStats`] are recorded into
    /// the histograms, so `engine_ingest_us_sum` equals
    /// `EngineStats::ingest_us` at every observation point — the
    /// registry-vs-legacy agreement `experiments -- throughput`
    /// checks.
    fn observe(&mut self, stats: &EngineStats) {
        let now = StatCounters::of(stats);
        let last = self.last;
        self.last = now;
        if now.epochs == last.epochs
            && now.events_emitted == last.events_emitted
            && now.reader_resamples == last.reader_resamples
        {
            return;
        }
        self.epochs.add(now.epochs - last.epochs);
        self.readings.add(now.readings - last.readings);
        self.object_updates
            .add(now.object_updates - last.object_updates);
        self.events_emitted
            .add(now.events_emitted - last.events_emitted);
        self.object_resamples
            .add(now.object_resamples - last.object_resamples);
        self.reader_resamples
            .add(now.reader_resamples - last.reader_resamples);
        self.compressions.add(now.compressions - last.compressions);
        self.decompressions
            .add(now.decompressions - last.decompressions);
        if now.epochs > last.epochs {
            self.ingest_us.record(now.ingest_us - last.ingest_us);
            self.infer_us.record(now.infer_us - last.infer_us);
            self.emit_us.record(now.emit_us - last.emit_us);
        }
    }
}

/// Statistic deltas produced by one object step, merged into
/// [`EngineStats`] on the calling thread in global task order.
#[derive(Debug, Clone, Copy, Default)]
struct StepDelta {
    resampled: bool,
    decompressed: bool,
    full_reinit: bool,
    half_respawn: bool,
}

/// One queued per-object update: built during the epoch pre-pass,
/// executed sequentially or fanned out across workers.
#[derive(Debug)]
struct StepTask {
    tag: TagId,
    read: bool,
    /// Owned state while the task is in flight (parallel path only;
    /// the sequential path mutates the shard entry directly).
    state: Option<ObjectState>,
    delta: StepDelta,
}

/// The read-only environment one object step runs against.
struct StepCtx<'a, P, S> {
    model: &'a JointModel<S>,
    prior: &'a P,
    config: &'a FilterConfig,
    range_over: f64,
    /// Posterior-mean reader position this epoch (for re-detection).
    reader_pos: Point3,
    /// Reader-weight CDF, built once per epoch (the reader is frozen
    /// while objects step) and shared by every pointer refresh, cone
    /// initialization, and respawn.
    reader_cdf: &'a [f64],
    /// Per-reader-particle heading `[cos φ, sin φ]`, built once per
    /// epoch beside the CDF and shared by every object weight pass.
    reader_trig: &'a [[f64; 2]],
    /// Quantized likelihood table shared by every object step (`None`
    /// keeps the exact sensor path).
    table: Option<&'a LikelihoodTable>,
    epoch: Epoch,
    stamp: u64,
}

/// The end-to-end inference engine, generic over the location prior
/// and the sensor model (logistic by default; a ground-truth sensor
/// shape can be plugged in for oracle experiments). Priors and sensor
/// models are `Send + Sync` by trait contract, so the per-object
/// updates can fan out across `config.worker_threads` scoped threads.
pub struct InferenceEngine<P: LocationPrior, S: ReadRateModel = rfid_model::LogisticSensorModel> {
    model: JointModel<S>,
    config: FilterConfig,
    prior: P,
    shelf_tags: Vec<(TagId, Point3)>,
    shelf_ids: std::collections::BTreeSet<TagId>,
    reader: Option<ReaderFilter>,
    /// Object state, partitioned by `tag % num_shards`.
    shards: Vec<Shard>,
    /// `config.num_shards` as `u64`, cached for the modulo on every
    /// state lookup.
    num_shards: u64,
    hook: Option<SpatialHook>,
    rng: StdRng,
    stats: EngineStats,
    /// Registry handles mirroring [`EngineStats`] (see
    /// [`EngineMetrics`]); one delta baseline per engine instance, so
    /// every stats mutation path (batch, cluster head, cluster
    /// worker) records each increment exactly once.
    metrics: EngineMetrics,
    /// Overestimated sensor range used for initialization cones,
    /// sensing boxes, and re-detection thresholds.
    range_over: f64,
    last_report: Option<Pose>,
    // --- reusable per-epoch scratch (allocation-free steady state) ---
    /// Global active set of the current epoch: the per-shard active
    /// sets merged in tag order.
    active: Vec<TagId>,
    /// Sorted shelf tags read this epoch.
    shelf_read: Vec<TagId>,
    /// Shelf observations relevant to the reader update.
    shelf_obs: Vec<(Point3, bool)>,
    /// Spatial-index candidates of the current epoch.
    candidates: Vec<TagId>,
    /// Active objects with a particle in the sensing box.
    members: Vec<TagId>,
    /// Merged due tags of the emission stage.
    due_merged: Vec<TagId>,
    /// Cursor scratch for the k-way shard merges.
    merge_pos: Vec<usize>,
    /// Per-object update queue for the current epoch (global tag order).
    steps: Vec<StepTask>,
    /// Per-worker step scratch (`config.worker_threads` entries).
    scratches: Vec<WorkerScratch>,
    /// Reader-weight CDF of the current epoch (reused buffer).
    reader_cdf: Vec<f64>,
    /// Per-reader-particle heading trig of the current epoch (reused
    /// buffer; see [`ReaderFilter::trig_into`]).
    reader_trig: Vec<[f64; 2]>,
    /// Quantized likelihood table (`config.likelihood_table`), built
    /// lazily at the first inference step and immutable afterwards —
    /// one grid serves every reader, object, epoch, and worker thread.
    table: Option<LikelihoodTable>,
    /// When set, [`InferenceEngine::run_steps`] records each task's
    /// staged reader-support row (in global task order) instead of only
    /// merging it locally. Cluster workers enable this to ship the rows
    /// to the head, which merges them in global tag order across all
    /// workers (see [`cluster`]).
    support_tee: Option<Vec<(TagId, Vec<f64>)>>,
}

impl<P: LocationPrior, S: ReadRateModel> InferenceEngine<P, S> {
    /// Builds an engine. `shelf_tags` are the reference tags with known
    /// locations; every other tag id encountered is treated as an
    /// object.
    pub fn new(
        model: JointModel<S>,
        prior: P,
        shelf_tags: Vec<(TagId, Point3)>,
        config: FilterConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let range_over = (model.sensor.detection_range(0.02) * config.init_range_overestimate)
            .min(config.max_init_range);
        let shelf_ids = shelf_tags.iter().map(|(t, _)| *t).collect();
        let hook = config
            .use_spatial_index
            .then(|| SpatialHook::new(range_over));
        let shards = (0..config.num_shards)
            .map(|_| {
                Shard::new(OutputPolicy::new(
                    config.report_delay_epochs,
                    config.report_delay_epochs.saturating_mul(2),
                ))
            })
            .collect();
        Ok(Self {
            model,
            prior,
            shelf_ids,
            shelf_tags,
            reader: None,
            shards,
            num_shards: config.num_shards as u64,
            hook,
            rng: StdRng::seed_from_u64(config.seed),
            stats: EngineStats::default(),
            metrics: EngineMetrics::registered(),
            range_over,
            last_report: None,
            active: Vec::new(),
            shelf_read: Vec::new(),
            shelf_obs: Vec::new(),
            candidates: Vec::new(),
            members: Vec::new(),
            due_merged: Vec::new(),
            merge_pos: Vec::new(),
            steps: Vec::new(),
            scratches: (0..config.worker_threads)
                .map(|_| WorkerScratch::default())
                .collect(),
            reader_cdf: Vec::new(),
            reader_trig: Vec::new(),
            table: None,
            support_tee: None,
            config,
        })
    }

    /// The engine's statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The current posterior-mean reader pose (`None` before the first
    /// batch).
    pub fn reader_estimate(&self) -> Option<Pose> {
        self.reader.as_ref().map(|r| r.estimate())
    }

    #[inline]
    fn shard(&self, tag: TagId) -> &Shard {
        &self.shards[shard_index(self.num_shards, tag)]
    }

    #[inline]
    fn object(&self, tag: TagId) -> Option<&ObjectState> {
        self.shard(tag).objects.get(&tag)
    }

    /// The current location estimate of an object.
    pub fn object_estimate(&self, tag: TagId) -> Option<(Point3, [f64; 3])> {
        self.object(tag).map(|s| s.last_estimate)
    }

    /// Tags of all objects the engine tracks.
    pub fn tracked_objects(&self) -> impl Iterator<Item = TagId> + '_ {
        self.shards.iter().flat_map(|s| s.objects.keys().copied())
    }

    /// Live entries in the compression cooldown queues (diagnostics).
    /// The scheduler keeps at most one entry per tracked tag, so this
    /// is bounded by the object count no matter how long the engine
    /// runs or how often compression attempts fail and retry.
    pub fn cooldown_entries(&self) -> usize {
        self.shards.iter().map(|s| s.cooldown_len).sum()
    }

    /// Number of objects currently in compressed representation.
    pub fn num_compressed(&self) -> usize {
        self.shards.iter().map(|s| s.compressed).sum()
    }

    /// Reader particles (exposed for the EM learner's E-step).
    pub fn reader_particles(&self) -> Option<&[crate::particle::ReaderParticle]> {
        self.reader.as_ref().map(|r| r.particles())
    }

    /// Object particle columns of a tag, when its belief is active.
    pub fn object_particles(&self, tag: TagId) -> Option<&crate::particle::ParticleSoa> {
        match self.object(tag).map(|s| &s.belief) {
            Some(Belief::Active(f)) => Some(f.soa()),
            _ => None,
        }
    }

    /// Rough memory footprint of the belief state, in bytes. Tracks the
    /// paper's claim that compression keeps memory small.
    pub fn memory_bytes(&self) -> usize {
        let mut total = 0usize;
        for s in self.shards.iter().flat_map(|s| s.objects.values()) {
            total += match &s.belief {
                Belief::Active(f) => f.soa().approx_bytes(),
                Belief::Compressed(_) => std::mem::size_of::<CompressedBelief>(),
            };
        }
        if let Some(r) = &self.reader {
            total += r.len() * std::mem::size_of::<crate::particle::ReaderParticle>();
        }
        total
    }

    /// Processes one synchronized epoch batch and returns the events
    /// due this epoch.
    pub fn process_batch(&mut self, batch: &EpochBatch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        self.process_batch_into(batch, &mut events);
        events
    }

    /// [`InferenceEngine::process_batch`] appending into a caller-owned
    /// buffer — the pipeline entry point (one reused buffer, no
    /// per-epoch allocation).
    pub fn process_batch_into(&mut self, batch: &EpochBatch, events: &mut Vec<LocationEvent>) {
        let epoch = batch.epoch;
        self.stats.epochs += 1;
        self.stats.readings += batch.readings.len() as u64;
        let t0 = std::time::Instant::now();
        let reader_est = self.ingest(batch);
        let t1 = std::time::Instant::now();
        self.infer(epoch, &reader_est);
        let t2 = std::time::Instant::now();
        self.emit(epoch, events);
        let ingest_us = (t1 - t0).as_micros() as u64;
        let infer_us = (t2 - t1).as_micros() as u64;
        let emit_us = t2.elapsed().as_micros() as u64;
        self.stats.ingest_us += ingest_us;
        self.stats.infer_us += infer_us;
        self.stats.emit_us += emit_us;
        self.metrics.observe(&self.stats);
        let slow = rfid_obs::trace().slow_epoch_us();
        if slow > 0 {
            let total = ingest_us + infer_us + emit_us;
            if total >= slow {
                let mut entry = rfid_obs::TraceEntry::new("slow_epoch", total);
                entry.what = "ingest/infer/emit";
                entry.epoch = epoch.0;
                entry.detail = [ingest_us, infer_us, emit_us];
                rfid_obs::trace().record(entry);
            }
        }
    }

    /// Flushes pending reports at end of trace.
    pub fn finalize(&mut self, epoch: Epoch) -> Vec<LocationEvent> {
        let mut events = Vec::new();
        self.finalize_into(epoch, &mut events);
        events
    }

    /// [`InferenceEngine::finalize`] appending into a caller-owned
    /// buffer.
    pub fn finalize_into(&mut self, epoch: Epoch, events: &mut Vec<LocationEvent>) {
        for shard in &mut self.shards {
            shard.policy.flush_into(&mut shard.due);
        }
        let before = events.len();
        self.emit_due_events(epoch, events);
        self.stats.events_emitted += (events.len() - before) as u64;
        self.refresh_per_shard_stats();
        self.metrics.observe(&self.stats);
    }

    /// Mirrors any [`EngineStats`] progress since the last
    /// observation onto the global metrics registry. The batch and
    /// finalize paths call this themselves; callers that mutate stats
    /// through other paths (the cluster roles) invoke it once per
    /// epoch.
    pub fn observe_metrics(&mut self) {
        self.metrics.observe(&self.stats);
    }

    // ------------------------------------------------------------------
    // stage 1: ingestion
    // ------------------------------------------------------------------

    /// Partitions the epoch's readings into shelf evidence and
    /// per-shard object reads, then updates the reader filter. Returns
    /// the posterior reader estimate the rest of the epoch runs
    /// against.
    fn ingest(&mut self, batch: &EpochBatch) -> Pose {
        self.shelf_read.clear();
        for shard in &mut self.shards {
            shard.object_read.clear();
        }
        for tag in &batch.readings {
            if self.shelf_ids.contains(tag) {
                self.shelf_read.push(*tag);
            } else {
                self.shards[shard_index(self.num_shards, *tag)]
                    .object_read
                    .push(*tag);
            }
        }
        self.shelf_read.sort_unstable();
        self.shelf_read.dedup();
        for shard in &mut self.shards {
            shard.object_read.sort_unstable();
            shard.object_read.dedup();
        }

        self.update_reader(batch.reader_report.as_ref());
        self.reader
            .as_ref()
            .expect("reader initialized above")
            .estimate()
    }

    // ------------------------------------------------------------------
    // stage 2: inference
    // ------------------------------------------------------------------

    /// Builds the active sets, runs the per-object updates, schedules
    /// compression checks, and records the sensing region.
    fn infer(&mut self, epoch: Epoch, reader_est: &Pose) {
        let stamp = epoch.0;
        let sensing_box = sensing_box(self.range_over, reader_est);

        // --- one-time likelihood-table build -------------------------
        // Tabulate out to twice the overestimated sensing range: every
        // particle a read cone can produce lands inside, and farther
        // (miss-epoch) particles fall back to the exact sensor.
        if self.config.likelihood_table.enabled && self.table.is_none() {
            let t = self.config.likelihood_table;
            self.table = Some(LikelihoodTable::build(
                &self.model.sensor,
                2.0 * self.range_over,
                t.d_step,
                t.theta_step,
            ));
        }

        // --- per-shard active sets (Cases 1 and 2) -------------------
        for shard in &mut self.shards {
            shard.active.clear();
            shard.active.extend_from_slice(&shard.object_read);
        }
        match &self.hook {
            Some(hook) => {
                self.candidates.clear();
                hook.candidates_into(&sensing_box, &mut self.candidates);
                // hook candidates may be stale; only keep known objects
                for tag in &self.candidates {
                    let shard = &mut self.shards[shard_index(self.num_shards, *tag)];
                    if shard.objects.contains_key(tag) {
                        shard.active.push(*tag);
                    }
                }
            }
            None => {
                // no index: every known object is processed (Cases 1-4)
                for shard in &mut self.shards {
                    let objects = &shard.objects;
                    shard.active.extend(objects.keys().copied());
                }
            }
        }
        for shard in &mut self.shards {
            shard.active.sort_unstable();
            shard.active.dedup();
        }
        // merge into the canonical global order (see crate::shard)
        merge_by_tag(
            &self.shards,
            |s| &s.active,
            &mut self.merge_pos,
            &mut self.active,
        );

        // --- pre-pass: output policy, compressed-miss skip -----------
        self.steps.clear();
        for i in 0..self.active.len() {
            let tag = self.active[i];
            let shard = &mut self.shards[shard_index(self.num_shards, tag)];
            let read = shard.object_read.binary_search(&tag).is_ok();
            if read {
                shard.policy.on_read(tag, epoch);
            } else if matches!(
                shard.objects.get(&tag),
                Some(ObjectState {
                    belief: Belief::Compressed(_),
                    ..
                })
            ) {
                // "when a compressed object has its tag read again, we
                // ... decompress" (§IV-D): a compressed Case-2 object
                // stays compressed — a miss carries almost no
                // information about a belief that already stabilized,
                // and decompressing for it would thrash.
                continue;
            }
            self.steps.push(StepTask {
                tag,
                read,
                state: None,
                delta: StepDelta::default(),
            });
        }

        // --- per-object updates (sequential or fanned out) -----------
        self.run_steps(epoch, stamp, reader_est.pos);

        // --- compression scheduling (one live entry per tag) ---------
        // An object becomes a compression candidate `idle_epochs` after
        // its last *read* (continued Case-2 processing does not reset
        // the clock — a silent object compresses even while the reader
        // keeps passing it). A read epoch bumps the tag's authoritative
        // due epoch; the queue holds one live entry per tag.
        if self.config.compression.enabled {
            let due = epoch.0 + self.config.compression.idle_epochs;
            for i in 0..self.steps.len() {
                let StepTask { tag, read, .. } = self.steps[i];
                if !read {
                    continue;
                }
                let shard = &mut self.shards[shard_index(self.num_shards, tag)];
                let Some(state) = shard.objects.get_mut(&tag) else {
                    continue;
                };
                if state.compression_due == 0 {
                    shard.cooldown.entry(due).or_default().push(tag);
                    shard.cooldown_len += 1;
                }
                state.compression_due = due;
            }
        }

        // --- record the sensing region -------------------------------
        if self.hook.is_some() {
            self.members.clear();
            for tag in &self.active {
                if let Some(ObjectState {
                    belief: Belief::Active(f),
                    ..
                }) = self.shard(*tag).objects.get(tag)
                {
                    if f.iter_particles().any(|p| sensing_box.contains(&p.loc)) {
                        self.members.push(*tag);
                    }
                }
            }
            if let Some(hook) = self.hook.as_mut() {
                hook.record(sensing_box, self.members.drain(..));
            }
        }
    }

    // ------------------------------------------------------------------
    // stage 3: emission
    // ------------------------------------------------------------------

    /// Emits due events, resamples the reader, and runs the compression
    /// sweep.
    fn emit(&mut self, epoch: Epoch, events: &mut Vec<LocationEvent>) {
        // --- emit due events -----------------------------------------
        for shard in &mut self.shards {
            shard.policy.due_into(epoch, &mut shard.due);
        }
        let before = events.len();
        self.emit_due_events(epoch, events);
        self.stats.events_emitted += (events.len() - before) as u64;

        // --- instrumented reader resampling --------------------------
        if self.config.reader_mode == ReaderMode::Filter {
            let remap = self
                .reader
                .as_mut()
                .expect("reader exists")
                .maybe_resample(self.config.resample_ess_frac, &mut self.rng);
            if let Some(remap) = remap {
                self.stats.reader_resamples += 1;
                // realign pointers of the objects touched this epoch in
                // global tag order (the remap draws consume the engine
                // RNG stream, so the order is part of the determinism
                // contract); untouched objects refresh on activation
                for i in 0..self.active.len() {
                    let tag = self.active[i];
                    let shard = &mut self.shards[shard_index(self.num_shards, tag)];
                    if let Some(ObjectState {
                        belief: Belief::Active(f),
                        ..
                    }) = shard.objects.get_mut(&tag)
                    {
                        f.apply_reader_remap(&remap, &mut self.rng);
                    }
                }
            }
        }

        // --- compression sweep ---------------------------------------
        self.run_compression_sweep(epoch);

        self.refresh_per_shard_stats();
    }

    /// Turns the shards' staged `due` lists into events, in global tag
    /// order.
    fn emit_due_events(&mut self, epoch: Epoch, events: &mut Vec<LocationEvent>) {
        merge_by_tag(
            &self.shards,
            |s| &s.due,
            &mut self.merge_pos,
            &mut self.due_merged,
        );
        for i in 0..self.due_merged.len() {
            let tag = self.due_merged[i];
            if let Some(s) = self.shard(tag).objects.get(&tag) {
                events.push(self.make_event(epoch, tag, s));
            }
        }
    }

    fn refresh_per_shard_stats(&mut self) {
        self.stats.per_shard.clear();
        self.stats
            .per_shard
            .extend(self.shards.iter().map(Shard::counts));
    }

    // ------------------------------------------------------------------

    fn make_event(&self, epoch: Epoch, tag: TagId, s: &ObjectState) -> LocationEvent {
        let (loc, var) = s.last_estimate;
        let support = match &s.belief {
            Belief::Active(f) => f.object_ess(),
            Belief::Compressed(_) => self.config.compression.decompressed_particles as f64,
        };
        LocationEvent::new(epoch, tag, loc).with_stats(EventStats { var, support })
    }

    fn update_reader(&mut self, report: Option<&Pose>) {
        match self.config.reader_mode {
            ReaderMode::TrustReports => {
                // "motion model Off": the reported location is taken as
                // the true location; a single-particle filter carries it.
                let pose = report
                    .copied()
                    .or(self.last_report)
                    .unwrap_or_else(Pose::identity);
                self.reader = Some(ReaderFilter::new(1, pose));
            }
            ReaderMode::Filter => {
                match self.reader.as_mut() {
                    None => {
                        // "the initial reader location R_1 is known":
                        // anchor the filter at the first report.
                        let start = report.copied().unwrap_or_else(Pose::identity);
                        self.reader = Some(ReaderFilter::new(self.config.reader_particles, start));
                        // no prediction on the very first epoch
                    }
                    Some(filter) => {
                        let odom = match (self.last_report, report) {
                            (Some(prev), Some(cur)) => Some(cur.pos - prev.pos),
                            _ => None,
                        };
                        let heading = report.map(|r| r.phi);
                        filter.predict(&self.model, odom, heading, &mut self.rng);
                    }
                }
                // weight with the report and nearby shelf-tag evidence
                let filter = self.reader.as_mut().expect("created above");
                let est = filter.estimate();
                let anchor = report.map(|r| r.pos).unwrap_or(est.pos);
                self.shelf_obs.clear();
                for (tag, loc) in &self.shelf_tags {
                    let read = self.shelf_read.binary_search(tag).is_ok();
                    if read || loc.dist(&anchor) <= 2.0 * self.range_over {
                        self.shelf_obs.push((*loc, read));
                    }
                }
                filter.weight(
                    &self.model,
                    report,
                    self.shelf_obs.iter().map(|(loc, read)| (loc, *read)),
                );
            }
        }
        if let Some(r) = report {
            self.last_report = Some(*r);
        }
    }

    /// Executes the queued per-object updates — on the calling thread
    /// when `worker_threads == 1` (shard entries mutated in place via
    /// `get_mut`/`entry`, no remove/insert churn), otherwise fanned out
    /// across scoped worker threads with staged side effects.
    fn run_steps(&mut self, epoch: Epoch, stamp: u64, reader_pos: Point3) {
        if self.steps.is_empty() {
            return;
        }
        self.stats.object_updates += self.steps.len() as u64;
        let mut reader = self.reader.take().expect("reader initialized");
        let mut steps = std::mem::take(&mut self.steps);
        let mut scratches = std::mem::take(&mut self.scratches);
        let mut reader_cdf = std::mem::take(&mut self.reader_cdf);
        let mut reader_trig = std::mem::take(&mut self.reader_trig);
        let num_shards = self.num_shards;
        let nr = reader.len();
        // one CDF build serves every pointer refresh / init / respawn
        // this epoch — the reader weights are frozen while objects step;
        // likewise one heading-trig table serves every weight pass
        reader.sampling_cdf_into(&mut reader_cdf);
        reader.trig_into(&mut reader_trig);
        let ctx = StepCtx {
            model: &self.model,
            prior: &self.prior,
            config: &self.config,
            range_over: self.range_over,
            reader_pos,
            reader_cdf: &reader_cdf,
            reader_trig: &reader_trig,
            table: self.table.as_ref(),
            epoch,
            stamp,
        };
        let workers = self.config.worker_threads.min(steps.len()).max(1);

        if workers == 1 {
            let scratch = scratches.first_mut().expect("worker scratch");
            scratch.staged_support.clear();
            scratch.staged_support.resize(nr, 0.0);
            for task in &mut steps {
                scratch.staged_support.fill(0.0);
                let shard = &mut self.shards[shard_index(num_shards, task.tag)];
                match shard.objects.entry(task.tag) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        task.delta = step_one(
                            &ctx,
                            &reader,
                            task.tag,
                            task.read,
                            Some(e.get_mut()),
                            &mut scratch.step,
                            &mut scratch.staged_support,
                        )
                        .0;
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let (delta, created) = step_one(
                            &ctx,
                            &reader,
                            task.tag,
                            task.read,
                            None,
                            &mut scratch.step,
                            &mut scratch.staged_support,
                        );
                        task.delta = delta;
                        v.insert(created.expect("step created a state"));
                    }
                }
                if let Some(tee) = self.support_tee.as_mut() {
                    tee.push((task.tag, scratch.staged_support.clone()));
                }
                reader.merge_support(&scratch.staged_support);
            }
        } else {
            // move the states into the tasks, fan out, merge back
            for task in &mut steps {
                task.state = self.shards[shard_index(num_shards, task.tag)]
                    .objects
                    .remove(&task.tag);
            }
            let scratch_slice = &mut scratches[..workers];
            for (scratch, range) in scratch_slice
                .iter_mut()
                .zip(exec::chunk_ranges(steps.len(), workers))
            {
                // clear + resize leaves every element freshly zeroed
                scratch.staged_support.clear();
                scratch.staged_support.resize(range.len() * nr, 0.0);
            }
            let ctx_ref = &ctx;
            let reader_ref = &reader;
            exec::parallel_chunks(
                &mut steps,
                scratch_slice,
                |_global, local, task, scratch| {
                    let WorkerScratch {
                        step,
                        staged_support,
                    } = scratch;
                    let row = &mut staged_support[local * nr..(local + 1) * nr];
                    let (delta, created) = step_one(
                        ctx_ref,
                        reader_ref,
                        task.tag,
                        task.read,
                        task.state.as_mut(),
                        step,
                        row,
                    );
                    task.delta = delta;
                    if let Some(created) = created {
                        task.state = Some(created);
                    }
                },
            );
            // deterministic merge: support rows and states in global
            // task (= tag) order, regardless of how many workers ran
            // or how the tags are sharded
            for (scratch, range) in scratches[..workers]
                .iter()
                .zip(exec::chunk_ranges(steps.len(), workers))
            {
                for (local, global) in range.enumerate() {
                    let row = &scratch.staged_support[local * nr..(local + 1) * nr];
                    if let Some(tee) = self.support_tee.as_mut() {
                        tee.push((steps[global].tag, row.to_vec()));
                    }
                    reader.merge_support(row);
                }
            }
            for task in &mut steps {
                let state = task.state.take().expect("state returned by step");
                self.shards[shard_index(num_shards, task.tag)]
                    .objects
                    .insert(task.tag, state);
            }
        }

        for task in &steps {
            self.stats.object_resamples += u64::from(task.delta.resampled);
            self.stats.decompressions += u64::from(task.delta.decompressed);
            self.stats.full_reinits += u64::from(task.delta.full_reinit);
            self.stats.half_respawns += u64::from(task.delta.half_respawn);
            if task.delta.decompressed {
                self.shards[shard_index(num_shards, task.tag)].compressed -= 1;
            }
        }

        self.reader = Some(reader);
        self.steps = steps;
        self.scratches = scratches;
        self.reader_cdf = reader_cdf;
        self.reader_trig = reader_trig;
    }

    fn run_compression_sweep(&mut self, epoch: Epoch) {
        if !self.config.compression.enabled {
            return;
        }
        // Per-tag decisions are independent of sweep order (each
        // depends only on the tag's own belief and the frozen reader),
        // so sweeping shard-by-shard stays deterministic for every
        // shard count.
        let reader = self.reader.as_ref().expect("reader initialized");
        for shard in &mut self.shards {
            while let Some((&e, _)) = shard.cooldown.range(..=epoch.0).next() {
                let tags = shard.cooldown.remove(&e).unwrap_or_default();
                shard.cooldown_len -= tags.len();
                for tag in tags {
                    let Some(state) = shard.objects.get_mut(&tag) else {
                        continue;
                    };
                    if state.compression_due > e {
                        // activity after this entry was queued pushed the
                        // check out; re-queue at the authoritative epoch
                        let due = state.compression_due;
                        shard.cooldown.entry(due).or_default().push(tag);
                        shard.cooldown_len += 1;
                        continue;
                    }
                    state.compression_due = 0;
                    // compression_due is only ever last_read + idle_epochs
                    // (or a later retry), so a popped-at-due object has
                    // been silent for at least a full idle period
                    debug_assert!(
                        epoch.since(state.last_read) >= self.config.compression.idle_epochs
                    );
                    if let Belief::Active(f) = &state.belief {
                        let cloud = f.weighted_cloud(reader);
                        let mut compressed = false;
                        if let Some(c) = CompressedBelief::compress(&cloud, epoch) {
                            if c.loss <= self.config.compression.max_cross_entropy {
                                state.last_estimate = c.estimate();
                                state.belief = Belief::Compressed(c);
                                self.stats.compressions += 1;
                                shard.compressed += 1;
                                compressed = true;
                            }
                        }
                        if !compressed {
                            // the belief has not converged enough yet
                            // (loss above threshold): retry one idle
                            // period later — a bounded cadence keeps the
                            // one-entry-per-tag invariant without
                            // dropping the object forever
                            let retry = epoch.0 + self.config.compression.idle_epochs.max(1);
                            state.compression_due = retry;
                            shard.cooldown.entry(retry).or_default().push(tag);
                            shard.cooldown_len += 1;
                        }
                    }
                }
            }
        }
    }
}

/// One per-object update: materialize an active filter (init or
/// decompress), refresh pointers, predict, handle re-detection, then
/// the fused weight/resample/estimate pass. Runs on any thread; all
/// randomness comes from the task's own `(seed, tag, epoch)` stream and
/// all shared-state effects are staged in `support`/the returned delta.
fn step_one<P: LocationPrior, S: ReadRateModel>(
    ctx: &StepCtx<'_, P, S>,
    reader: &ReaderFilter,
    tag: TagId,
    read: bool,
    state: Option<&mut ObjectState>,
    scratch: &mut StepScratch,
    support: &mut [f64],
) -> (StepDelta, Option<ObjectState>) {
    let mut delta = StepDelta::default();
    let mut rng = exec::task_rng(ctx.config.seed, tag.0, ctx.epoch.0);
    let k = ctx.config.particles_per_object;
    let half_angle = ctx.config.init_cone_half_angle;

    let mut created: Option<ObjectState> = None;
    let state: &mut ObjectState = match state {
        Some(s) => s,
        None => {
            // first sighting: sensor-model-based initialization,
            // restricted to the legal object space
            let f = ObjectFilter::init_from_cone_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                k,
                ctx.stamp,
                Some(ctx.prior),
                &mut rng,
            );
            created.insert(ObjectState {
                last_estimate: f.estimate_with(reader, scratch),
                belief: Belief::Active(f),
                last_read: ctx.epoch,
                compression_due: 0,
            })
        }
    };

    if let Belief::Compressed(c) = &state.belief {
        let f = c.decompress(
            ctx.config.compression.decompressed_particles,
            reader,
            ctx.stamp,
            &mut rng,
        );
        delta.decompressed = true;
        state.belief = Belief::Active(f);
    }
    let Belief::Active(f) = &mut state.belief else {
        unreachable!("belief made active above")
    };
    f.refresh_pointers_with(reader, ctx.reader_cdf, ctx.stamp, &mut rng);
    f.predict(ctx.model, ctx.prior, read, &mut rng);

    // §IV-A re-detection handling: compare the current estimate with
    // the location the reading implies (the reader's vicinity).
    if read {
        let est = state.last_estimate.0;
        let gap = est.dist_xy(&ctx.reader_pos);
        if gap > ctx.range_over + ctx.config.respawn_distance {
            // moved far: discard all old particles, re-create at the
            // new location
            *f = ObjectFilter::init_from_cone_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                k,
                ctx.stamp,
                Some(ctx.prior),
                &mut rng,
            );
            delta.full_reinit = true;
        } else if gap > ctx.range_over + ctx.config.small_move_distance {
            // moved a little: keep half, move half
            f.respawn_half_with(
                reader,
                ctx.reader_cdf,
                ctx.range_over,
                half_angle,
                Some(ctx.prior),
                &mut rng,
            );
            delta.half_respawn = true;
        }
        state.last_read = ctx.epoch;
    }

    let outcome = f.step_fused(
        ctx.model,
        reader,
        read,
        ctx.config.resample_ess_frac,
        ctx.table,
        Some(ctx.reader_trig),
        scratch,
        support,
        &mut rng,
    );
    state.last_estimate = outcome.estimate;
    delta.resampled = outcome.resampled;
    (delta, created)
}

/// Convenience driver: runs the engine over a full batch sequence and
/// returns every emitted event (including the final flush). This is
/// the *legacy batch path*, kept as the reference the streaming
/// [`rfid_stream::pipeline::Pipeline`] is pinned against
/// (`crates/core/tests/determinism.rs`).
pub fn run_engine<P: LocationPrior, S: ReadRateModel>(
    engine: &mut InferenceEngine<P, S>,
    batches: &[EpochBatch],
) -> Vec<LocationEvent> {
    let mut events = Vec::new();
    for b in batches {
        engine.process_batch_into(b, &mut events);
    }
    let last = batches.last().map(|b| b.epoch).unwrap_or(Epoch(0));
    engine.finalize_into(last, &mut events);
    events
}

impl<P: LocationPrior, S: ReadRateModel> rfid_stream::pipeline::InferenceStage
    for InferenceEngine<P, S>
{
    fn process_batch_into(&mut self, batch: &EpochBatch, out: &mut Vec<LocationEvent>) {
        InferenceEngine::process_batch_into(self, batch, out);
    }

    fn finalize_into(&mut self, last_epoch: Epoch, out: &mut Vec<LocationEvent>) {
        InferenceEngine::finalize_into(self, last_epoch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Aabb;
    use rfid_model::object::BoxPrior;
    use rfid_model::{JointModel, ModelParams};
    use rfid_stream::EpochBatch;

    fn prior() -> BoxPrior {
        BoxPrior::new(Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(4.0, 40.0, 0.0),
        ))
    }

    fn engine(config: FilterConfig) -> InferenceEngine<BoxPrior> {
        let model = JointModel::new(ModelParams::default_warehouse());
        let shelf = vec![
            (TagId(1_000_000), Point3::new(2.0, 2.0, 0.0)),
            (TagId(1_000_001), Point3::new(2.0, 6.0, 0.0)),
        ];
        InferenceEngine::new(model, prior(), shelf, config).unwrap()
    }

    fn batch(epoch: u64, reader_y: f64, tags: &[u64]) -> EpochBatch {
        EpochBatch {
            epoch: Epoch(epoch),
            readings: tags.iter().map(|t| TagId(*t)).collect(),
            reader_report: Some(Pose::new(Point3::new(0.0, reader_y, 0.0), 0.0)),
        }
    }

    #[test]
    fn engine_rejects_bad_config() {
        let model = JointModel::new(ModelParams::default_warehouse());
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 0;
        assert!(InferenceEngine::new(model, prior(), vec![], cfg).is_err());
    }

    #[test]
    fn object_estimate_converges_near_truth() {
        // object at (2.0, 3.0); reader scans along y reading it when close
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 500;
        cfg.reader_particles = 50;
        cfg.report_delay_epochs = 10;
        let mut e = engine(cfg);
        // reads generated from the same sensor model the engine uses
        use rand::{Rng, SeedableRng};
        // seed chosen to give a typical read sequence under the vendored
        // xoshiro256++ StdRng; unlucky streams can leave ~1.3 ft of error
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let model = JointModel::new(ModelParams::default_warehouse());
        let truth = Point3::new(2.0, 3.0, 0.0);
        let shelf_loc = Point3::new(2.0, 2.0, 0.0);
        let mut events = Vec::new();
        for t in 0..60u64 {
            let y = t as f64 * 0.1;
            let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
            let mut tags = Vec::new();
            if rng.gen::<f64>() < model.sensor.p_read(&pose, &truth) {
                tags.push(7u64);
            }
            if rng.gen::<f64>() < model.sensor.p_read(&pose, &shelf_loc) {
                tags.push(1_000_000);
            }
            events.extend(e.process_batch(&batch(t, y, &tags)));
        }
        events.extend(e.finalize(Epoch(60)));
        let ev: Vec<_> = events.iter().filter(|ev| ev.tag == TagId(7)).collect();
        assert!(!ev.is_empty(), "no event for the object");
        let err = ev[0].location.dist_xy(&truth);
        assert!(
            err < 1.0,
            "estimate too far: {err} ft, at {:?}",
            ev[0].location
        );
        // statistics attached
        assert!(ev[0].stats.is_some());
    }

    #[test]
    fn unread_objects_produce_no_events() {
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 100;
        cfg.reader_particles = 20;
        let mut e = engine(cfg);
        for t in 0..20u64 {
            let evs = e.process_batch(&batch(t, t as f64 * 0.1, &[]));
            assert!(evs.is_empty());
        }
        assert!(e.finalize(Epoch(20)).is_empty());
        assert_eq!(e.stats().events_emitted, 0);
    }

    #[test]
    fn spatial_index_reduces_object_updates() {
        use rand::{Rng, SeedableRng};
        let model = JointModel::new(ModelParams::default_warehouse());
        let run = |cfg: FilterConfig| -> (u64, Point3) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            let mut e = engine(cfg);
            // two objects far apart; each read only near its location
            let o7 = Point3::new(2.0, 3.0, 0.0);
            let o8 = Point3::new(2.0, 15.0, 0.0);
            for t in 0..200u64 {
                let y = t as f64 * 0.1;
                let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
                let mut tags = Vec::new();
                if rng.gen::<f64>() < model.sensor.p_read(&pose, &o7) {
                    tags.push(7u64);
                }
                if rng.gen::<f64>() < model.sensor.p_read(&pose, &o8) {
                    tags.push(8u64);
                }
                e.process_batch(&batch(t, y, &tags));
            }
            (
                e.stats().object_updates,
                e.object_estimate(TagId(7)).unwrap().0,
            )
        };
        let mut plain = FilterConfig::factored_default();
        plain.particles_per_object = 200;
        plain.reader_particles = 30;
        let mut indexed = plain;
        indexed.use_spatial_index = true;
        let (updates_plain, est_plain) = run(plain);
        let (updates_indexed, est_indexed) = run(indexed);
        assert!(
            updates_indexed < updates_plain,
            "index should reduce updates: {updates_indexed} vs {updates_plain}"
        );
        // and estimates stay in the same neighborhood
        assert!(est_plain.dist_xy(&est_indexed) < 2.0);
    }

    #[test]
    fn compression_kicks_in_after_idle() {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        let mut e = engine(cfg);
        for t in 0..40u64 {
            let y = t as f64 * 0.1;
            let mut tags = Vec::new();
            if (y - 1.0).abs() < 1.0 {
                tags.push(7u64);
            }
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.stats().compressions >= 1, "stats: {:?}", e.stats());
        assert_eq!(e.num_compressed(), 1);
        // estimate still available after compression
        assert!(e.object_estimate(TagId(7)).is_some());
    }

    #[test]
    fn decompression_on_reencounter() {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        cfg.report_delay_epochs = 5;
        let mut e = engine(cfg);
        // pass 1: read object at y ~ 1
        for t in 0..30u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.num_compressed() >= 1);
        // pass 2 much later: the reader returns and reads it again
        for t in 100..115u64 {
            let y = 2.0 - (t - 100) as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert!(e.stats().decompressions >= 1, "stats: {:?}", e.stats());
        assert_eq!(e.num_compressed(), 0, "counter must track decompression");
    }

    #[test]
    fn failed_compression_retries_with_bounded_queue() {
        // an unpassable loss threshold: every compression attempt fails,
        // and each failure must schedule a retry while the queue stays
        // at one entry per tag
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 200;
        cfg.reader_particles = 30;
        cfg.compression.idle_epochs = 5;
        cfg.compression.max_cross_entropy = f64::NEG_INFINITY;
        let mut e = engine(cfg);
        for t in 0..80u64 {
            let y = t as f64 * 0.1;
            let mut tags = Vec::new();
            if (y - 1.0).abs() < 1.0 {
                tags.push(7u64);
            }
            e.process_batch(&batch(t, y, &tags));
        }
        assert_eq!(e.stats().compressions, 0);
        assert_eq!(e.num_compressed(), 0);
        // retry is still scheduled — the object was not dropped from
        // the compression schedule — and the queue has not grown
        assert_eq!(e.cooldown_entries(), 1);
    }

    #[test]
    fn trust_reports_mode_runs_without_reader_filter() {
        let mut cfg = FilterConfig::factored_default();
        cfg.reader_mode = ReaderMode::TrustReports;
        cfg.particles_per_object = 200;
        let mut e = engine(cfg);
        for t in 0..30u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        assert_eq!(e.stats().reader_resamples, 0);
        assert!(e.object_estimate(TagId(7)).is_some());
    }

    #[test]
    fn moved_object_triggers_respawn_or_reinit() {
        let mut cfg = FilterConfig::factored_default();
        cfg.particles_per_object = 300;
        cfg.reader_particles = 30;
        let mut e = engine(cfg);
        // object seen at y ~ 1 first
        for t in 0..25u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                vec![7]
            } else {
                vec![]
            };
            e.process_batch(&batch(t, y, &tags));
        }
        let before = e.object_estimate(TagId(7)).unwrap().0;
        assert!(before.y < 4.0);
        // then suddenly read when the reader is at y ~ 20 (object moved)
        for t in 25..40u64 {
            let y = 19.0 + (t - 25) as f64 * 0.1;
            e.process_batch(&batch(t, y, &[7]));
        }
        let s = e.stats();
        assert!(
            s.full_reinits + s.half_respawns >= 1,
            "re-detection should trigger respawn: {s:?}"
        );
        let after = e.object_estimate(TagId(7)).unwrap().0;
        assert!(after.y > 15.0, "estimate should follow the move: {after:?}");
    }

    #[test]
    fn memory_shrinks_with_compression() {
        let mut active_cfg = FilterConfig::factored_default();
        active_cfg.particles_per_object = 500;
        active_cfg.reader_particles = 30;
        let mut comp_cfg = active_cfg;
        comp_cfg.compression = crate::config::CompressionPolicy {
            enabled: true,
            idle_epochs: 3,
            max_cross_entropy: f64::INFINITY,
            decompressed_particles: 10,
        };
        let drive = |e: &mut InferenceEngine<BoxPrior>| {
            for t in 0..30u64 {
                let y = t as f64 * 0.1;
                let tags: Vec<u64> = if (y - 1.0).abs() < 1.0 {
                    vec![7]
                } else {
                    vec![]
                };
                e.process_batch(&batch(t, y, &tags));
            }
        };
        let mut ea = engine(active_cfg);
        drive(&mut ea);
        let mut ec = engine(comp_cfg);
        drive(&mut ec);
        assert!(
            ec.memory_bytes() < ea.memory_bytes() / 4,
            "compressed {} vs active {}",
            ec.memory_bytes(),
            ea.memory_bytes()
        );
    }

    #[test]
    fn sharded_engine_matches_single_shard() {
        // the core of the sharding determinism contract, at unit scale:
        // identical event streams (bitwise) for 1, 2, and 8 shards
        use rand::{Rng, SeedableRng};
        let run = |num_shards: usize| -> Vec<LocationEvent> {
            let mut cfg = FilterConfig::full_default();
            cfg.particles_per_object = 150;
            cfg.reader_particles = 30;
            cfg.report_delay_epochs = 10;
            cfg.compression.idle_epochs = 6;
            cfg.num_shards = num_shards;
            let mut e = engine(cfg);
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let model = JointModel::new(ModelParams::default_warehouse());
            let mut events = Vec::new();
            // five objects spread along the aisle
            let objs: Vec<(u64, Point3)> = (0..5)
                .map(|i| (i, Point3::new(2.0, 1.0 + i as f64 * 1.5, 0.0)))
                .collect();
            for t in 0..90u64 {
                let y = t as f64 * 0.1;
                let pose = Pose::new(Point3::new(0.0, y, 0.0), 0.0);
                let mut tags = Vec::new();
                for (tag, loc) in &objs {
                    if rng.gen::<f64>() < model.sensor.p_read(&pose, loc) {
                        tags.push(*tag);
                    }
                }
                events.extend(e.process_batch(&batch(t, y, &tags)));
            }
            events.extend(e.finalize(Epoch(90)));
            events
        };
        let one = run(1);
        assert!(!one.is_empty());
        for shards in [2usize, 8] {
            let multi = run(shards);
            assert_eq!(one.len(), multi.len(), "shards={shards}");
            for (a, b) in one.iter().zip(&multi) {
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(a.tag, b.tag);
                assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
                assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());
            }
        }
    }

    #[test]
    fn per_shard_counts_cover_all_objects() {
        let mut cfg = FilterConfig::full_default();
        cfg.particles_per_object = 100;
        cfg.reader_particles = 20;
        cfg.num_shards = 4;
        cfg.compression.idle_epochs = 5;
        let mut e = engine(cfg);
        for t in 0..40u64 {
            let y = t as f64 * 0.1;
            let tags: Vec<u64> = if y < 2.0 { vec![1, 2, 3, 6] } else { vec![] };
            e.process_batch(&batch(t, y, &tags));
        }
        let per_shard = &e.stats().per_shard;
        assert_eq!(per_shard.len(), 4);
        let objects: usize = per_shard.iter().map(|c| c.objects).sum();
        assert_eq!(objects, 4);
        // tags 1, 2, 3, 6 land in shards 1, 2, 3, 2 (mod 4)
        assert_eq!(per_shard[0].objects, 0);
        assert_eq!(per_shard[2].objects, 2);
        let compressed: usize = per_shard.iter().map(|c| c.compressed).sum();
        assert_eq!(compressed, e.num_compressed());
        let cooldown: usize = per_shard.iter().map(|c| c.cooldown_entries).sum();
        assert_eq!(cooldown, e.cooldown_entries());
    }
}
